//! Differential gate for the closed-form analytic fast path.
//!
//! The engine promises that swapping resolved event models for their
//! analytic curves (`SystemConfig::with_analytic`) changes *nothing*
//! observable: response times, per-entity statuses, stop reason,
//! convergence trace, and recorder counter totals are bit-for-bit
//! identical with the fast path forced on and forced off, at every
//! thread count. Only the `analytic_lifts` / `analytic_fallbacks`
//! tallies (zero when disabled), the cache *work* counters
//! (`cache_hits` / `cache_misses` / `curve_evaluations` — the fast
//! path exists precisely to answer queries without recursing through
//! chained caches), and wall-clock observations may differ. Within a
//! leg, every counter remains thread-count invariant.

use std::collections::BTreeMap;

use proptest::prelude::*;

use hem_analysis::Priority;
use hem_autosar_com::{FrameType, TransferProperty};
use hem_can::{CanBusConfig, FrameFormat};
use hem_event_models::{EventModelExt, PeriodicBurstModel, SporadicModel, StandardEventModel};
use hem_obs::{Counter, HistogramData, MemoryRecorder};
use hem_system::{
    analyze_robust, ActivationSpec, AnalysisMode, FrameSpec, RobustAnalysis, SignalSpec,
    SystemConfig, SystemSpec, TaskSpec,
};
use hem_time::Time;

struct Run {
    outcome: Result<RobustAnalysis, hem_system::SystemError>,
    snapshot: hem_obs::MetricsSnapshot,
}

/// Runs the analysis with the analytic fast path explicitly pinned.
fn run(spec: &SystemSpec, mode: AnalysisMode, threads: usize, analytic: bool) -> Run {
    let (recorder, handle) = MemoryRecorder::handle();
    let config = SystemConfig::new(mode)
        .with_recorder(handle)
        .with_threads(threads)
        .with_analytic(Some(analytic));
    let outcome = analyze_robust(spec, &config);
    let snapshot = recorder.snapshot();
    Run { outcome, snapshot }
}

/// Counter totals minus the fast path's own bookkeeping (zero with the
/// path disabled, by design) and the cache work counters (a lifted
/// model answers queries in place instead of recursing through the
/// generic chain — and through any downstream caches on it — so the
/// amount of memoization *work* shrinks while every memoized *value*
/// stays identical).
fn comparable_counters(snapshot: &hem_obs::MetricsSnapshot) -> BTreeMap<&'static str, u64> {
    let excluded = [
        Counter::AnalyticLifts.name(),
        Counter::AnalyticFallbacks.name(),
        Counter::CacheHits.name(),
        Counter::CacheMisses.name(),
        Counter::CurveEvaluations.name(),
    ];
    snapshot
        .counters
        .iter()
        .filter(|(name, _)| !excluded.contains(name))
        .map(|(name, value)| (*name, *value))
        .collect()
}

/// Histograms minus the wall-clock `span_us/*` families.
fn deterministic_histograms(
    snapshot: &hem_obs::MetricsSnapshot,
) -> BTreeMap<&'static str, &HistogramData> {
    snapshot
        .histograms
        .iter()
        .filter(|(name, _)| !name.starts_with("span_us/"))
        .map(|(name, data)| (*name, data))
        .collect()
}

/// Asserts two runs are indistinguishable except for wall-clock and —
/// unless `strict_counters` — the analytic bookkeeping and cache work
/// tallies.
fn assert_identical(on: &Run, off: &Run, strict_counters: bool, context: &str) {
    match (&on.outcome, &off.outcome) {
        (Ok(a), Ok(b)) => {
            let ra = &a.results;
            let rb = &b.results;
            assert_eq!(ra.is_complete(), rb.is_complete(), "{context}");
            assert_eq!(ra.iterations(), rb.iterations(), "{context}");
            assert_eq!(
                ra.tasks().collect::<Vec<_>>(),
                rb.tasks().collect::<Vec<_>>(),
                "{context}: task results"
            );
            assert_eq!(
                ra.frames().collect::<Vec<_>>(),
                rb.frames().collect::<Vec<_>>(),
                "{context}: frame results"
            );
            let da = &a.diagnostics;
            let db = &b.diagnostics;
            assert_eq!(da.stop, db.stop, "{context}: stop reason");
            assert_eq!(da.iterations, db.iterations, "{context}");
            assert_eq!(da.trace, db.trace, "{context}: convergence trace");
            assert_eq!(da.diverging, db.diverging, "{context}");
            assert_eq!(da.last_response_times, db.last_response_times, "{context}");
            assert_eq!(
                da.suspected_bottleneck, db.suspected_bottleneck,
                "{context}"
            );
        }
        (Err(a), Err(b)) => {
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "{context}: error");
        }
        (a, b) => panic!(
            "{context}: outcome kind differs: {:?} vs {:?}",
            a.as_ref().map(|_| "ok"),
            b.as_ref().map(|_| "ok"),
        ),
    }
    if strict_counters {
        assert_eq!(
            on.snapshot.counters, off.snapshot.counters,
            "{context}: counter totals"
        );
    } else {
        assert_eq!(
            comparable_counters(&on.snapshot),
            comparable_counters(&off.snapshot),
            "{context}: counter totals"
        );
    }
    assert_eq!(
        on.snapshot.labeled, off.snapshot.labeled,
        "{context}: labeled counters"
    );
    assert_eq!(
        deterministic_histograms(&on.snapshot),
        deterministic_histograms(&off.snapshot),
        "{context}: histograms"
    );
}

/// The full gate: fast path on vs off at 1, 4, and 8 threads, and the
/// enabled runs also thread-count invariant among themselves.
fn check_on_off(spec: &SystemSpec, mode: AnalysisMode) {
    let reference = run(spec, mode, 1, true);
    for threads in [1usize, 4, 8] {
        let on = run(spec, mode, threads, true);
        let off = run(spec, mode, threads, false);
        assert_identical(&on, &off, false, &format!("{threads} threads on-vs-off"));
        // Within the enabled leg every counter — including the cache
        // work and lift tallies — must stay thread-count invariant.
        assert_identical(
            &on,
            &reference,
            true,
            &format!("{threads} threads vs 1-thread reference"),
        );
    }
}

fn external(model: hem_event_models::ModelRef) -> ActivationSpec {
    ActivationSpec::External(model)
}

fn periodic(p: i64) -> ActivationSpec {
    external(
        StandardEventModel::periodic(Time::new(p))
            .expect("valid")
            .shared(),
    )
}

fn jittered(p: i64, j: i64) -> ActivationSpec {
    external(
        StandardEventModel::periodic_with_jitter(Time::new(p), Time::new(j))
            .expect("valid")
            .shared(),
    )
}

/// The paper's Fig. 2 system — the profile the ≥3x speedup targets.
fn fig2_spec() -> SystemSpec {
    SystemSpec::new()
        .cpu("cpu1")
        .bus("can", CanBusConfig::new(Time::new(1)))
        .frame(FrameSpec {
            name: "F1".into(),
            bus: "can".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 4,
            format: FrameFormat::Standard,
            priority: Priority::new(1),
            signals: vec![
                SignalSpec {
                    name: "s1".into(),
                    transfer: TransferProperty::Triggering,
                    source: periodic(2_500),
                },
                SignalSpec {
                    name: "s2".into(),
                    transfer: TransferProperty::Pending,
                    source: periodic(6_000),
                },
            ],
        })
        .task(TaskSpec {
            name: "T1".into(),
            cpu: "cpu1".into(),
            bcet: Time::new(240),
            wcet: Time::new(240),
            priority: Priority::new(1),
            activation: ActivationSpec::Signal {
                frame: "F1".into(),
                signal: "s1".into(),
            },
        })
        .task(TaskSpec {
            name: "T2".into(),
            cpu: "cpu1".into(),
            bcet: Time::new(400),
            wcet: Time::new(400),
            priority: Priority::new(2),
            activation: ActivationSpec::Signal {
                frame: "F1".into(),
                signal: "s2".into(),
            },
        })
}

#[test]
fn fig2_system_identical_on_and_off() {
    let spec = fig2_spec();
    for mode in [
        AnalysisMode::Flat,
        AnalysisMode::FlatSem,
        AnalysisMode::Hierarchical,
    ] {
        check_on_off(&spec, mode);
    }
}

#[test]
fn fig2_enabled_run_actually_lifts() {
    // Guard against the fast path silently never engaging: the Fig. 2
    // profile is built entirely from liftable shapes.
    let on = run(&fig2_spec(), AnalysisMode::Hierarchical, 1, true);
    let lifts = on.snapshot.counter(Counter::AnalyticLifts);
    assert!(lifts > 0, "expected analytic lifts, got none");
    let off = run(&fig2_spec(), AnalysisMode::Hierarchical, 1, false);
    assert_eq!(off.snapshot.counter(Counter::AnalyticLifts), 0);
    assert_eq!(off.snapshot.counter(Counter::AnalyticFallbacks), 0);
}

/// Gateway chain with sporadic and bursty sources, a pending signal, and
/// a task-output-fed frame — exercises OR-joins, output propagation,
/// pack/unpack, and the burst lift in one topology.
#[test]
fn gateway_chain_identical_on_and_off() {
    let spec = SystemSpec::new()
        .cpu("sensor")
        .cpu("gateway")
        .bus("body", CanBusConfig::new(Time::new(1)))
        .bus("chassis", CanBusConfig::new(Time::new(2)))
        .task(TaskSpec {
            name: "acquire".into(),
            cpu: "sensor".into(),
            bcet: Time::new(40),
            wcet: Time::new(90),
            priority: Priority::new(1),
            activation: external(
                PeriodicBurstModel::new(Time::new(4_000), 3, Time::new(200))
                    .expect("valid")
                    .shared(),
            ),
        })
        .frame(FrameSpec {
            name: "Fin".into(),
            bus: "body".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 6,
            format: FrameFormat::Standard,
            priority: Priority::new(1),
            signals: vec![
                SignalSpec {
                    name: "m".into(),
                    transfer: TransferProperty::Triggering,
                    source: ActivationSpec::TaskOutput("acquire".into()),
                },
                SignalSpec {
                    name: "aux".into(),
                    transfer: TransferProperty::Pending,
                    source: external(SporadicModel::new(Time::new(900)).expect("valid").shared()),
                },
            ],
        })
        .task(TaskSpec {
            name: "route".into(),
            cpu: "gateway".into(),
            bcet: Time::new(30),
            wcet: Time::new(120),
            priority: Priority::new(1),
            activation: ActivationSpec::Signal {
                frame: "Fin".into(),
                signal: "m".into(),
            },
        })
        .frame(FrameSpec {
            name: "Fout".into(),
            bus: "chassis".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 4,
            format: FrameFormat::Standard,
            priority: Priority::new(2),
            signals: vec![SignalSpec {
                name: "fwd".into(),
                transfer: TransferProperty::Triggering,
                source: ActivationSpec::TaskOutput("route".into()),
            }],
        })
        .task(TaskSpec {
            name: "consume".into(),
            cpu: "gateway".into(),
            bcet: Time::new(25),
            wcet: Time::new(60),
            priority: Priority::new(2),
            activation: ActivationSpec::AnyOf(vec![
                ActivationSpec::FrameArrivals("Fout".into()),
                jittered(7_000, 1_500),
            ]),
        });
    check_on_off(&spec, AnalysisMode::Hierarchical);
    check_on_off(&spec, AnalysisMode::Flat);
}

/// Tiny deterministic xorshift used to expand a proptest seed into a
/// concrete random topology (same scheme as `parallel_determinism`).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.0 = x;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x
    }

    fn pick(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Random multi-bus system mixing liftable sources (periodic, jitter,
/// burst, sporadic) with task outputs and pending transfers.
fn build_spec(seed: u64, buses: usize, cpus: usize) -> SystemSpec {
    let mut rng = Rng(seed);
    let mut spec = SystemSpec::new();

    let mut task_names: Vec<String> = Vec::new();
    let mut tasks_on: Vec<Vec<String>> = Vec::new();
    for c in 0..cpus {
        spec = spec.cpu(format!("cpu{c}"));
        let mut on_cpu = Vec::new();
        for t in 0..=rng.pick(2) as usize {
            let name = format!("t{c}_{t}");
            task_names.push(name.clone());
            on_cpu.push(name);
        }
        tasks_on.push(on_cpu);
    }

    let source = |rng: &mut Rng| {
        let p = Time::new(2_000 + rng.pick(3_000) as i64);
        match rng.pick(4) {
            0 => external(
                StandardEventModel::periodic_with_jitter(p, Time::new(rng.pick(4_000) as i64))
                    .expect("valid")
                    .shared(),
            ),
            1 => external(SporadicModel::new(p).expect("valid").shared()),
            2 => external(
                PeriodicBurstModel::new(p * 3, 2 + rng.pick(3), Time::new(50))
                    .expect("valid")
                    .shared(),
            ),
            _ => external(StandardEventModel::periodic(p).expect("valid").shared()),
        }
    };

    let mut frame_signals: Vec<(String, Vec<String>)> = Vec::new();
    for b in 0..buses {
        spec = spec.bus(format!("bus{b}"), CanBusConfig::new(Time::new(1)));
        for f in 0..=rng.pick(2) as usize {
            let name = format!("f{b}_{f}");
            let mut signals = Vec::new();
            let mut signal_names = Vec::new();
            for s in 0..=rng.pick(2) as usize {
                let src = if !task_names.is_empty() && rng.pick(3) == 0 {
                    let t = &task_names[rng.pick(task_names.len() as u64) as usize];
                    ActivationSpec::TaskOutput(t.clone())
                } else {
                    source(&mut rng)
                };
                let sig = format!("s{s}");
                signal_names.push(sig.clone());
                signals.push(SignalSpec {
                    name: sig,
                    transfer: if rng.pick(2) == 0 {
                        TransferProperty::Triggering
                    } else {
                        TransferProperty::Pending
                    },
                    source: src,
                });
            }
            spec = spec.frame(FrameSpec {
                name: name.clone(),
                bus: format!("bus{b}"),
                frame_type: FrameType::Direct,
                payload_bytes: 1 + rng.pick(8) as u8,
                format: FrameFormat::Standard,
                priority: Priority::new(1 + f as u32),
                signals,
            });
            frame_signals.push((name, signal_names));
        }
    }

    for (c, on_cpu) in tasks_on.iter().enumerate() {
        for (t, name) in on_cpu.iter().enumerate() {
            let activation = match rng.pick(4) {
                0 if !frame_signals.is_empty() => {
                    let (frame, sigs) =
                        &frame_signals[rng.pick(frame_signals.len() as u64) as usize];
                    ActivationSpec::Signal {
                        frame: frame.clone(),
                        signal: sigs[rng.pick(sigs.len() as u64) as usize].clone(),
                    }
                }
                1 if !frame_signals.is_empty() => {
                    let (frame, _) = &frame_signals[rng.pick(frame_signals.len() as u64) as usize];
                    ActivationSpec::FrameArrivals(frame.clone())
                }
                2 if t > 0 => {
                    ActivationSpec::TaskOutput(on_cpu[rng.pick(t as u64) as usize].clone())
                }
                _ => source(&mut rng),
            };
            let wcet = Time::new(10 + rng.pick(60) as i64);
            spec = spec.task(TaskSpec {
                name: name.clone(),
                cpu: format!("cpu{c}"),
                bcet: wcet,
                wcet,
                priority: Priority::new(1 + t as u32),
                activation,
            });
        }
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_graphs_identical_on_and_off(
        seed in 0u64..1 << 48,
        buses in 1usize..=2,
        cpus in 1usize..=2,
    ) {
        let spec = build_spec(seed, buses, cpus);
        check_on_off(&spec, AnalysisMode::Hierarchical);
    }
}
