//! Compositional system-level analysis.
//!
//! Couples the local analyses ([`hem_analysis`]) via event streams, as in
//! the SymTA/S methodology the paper builds on (§1): in each *global
//! iteration*, every resource is analysed locally, output event models
//! are derived from the computed response times, and the updated models
//! are propagated to the connected components; the process repeats until
//! the response times reach a fixed point.
//!
//! The system description ([`SystemSpec`]) covers the paper's setting:
//!
//! * **CPUs** scheduled SPP, running [`TaskSpec`]s,
//! * **CAN buses** carrying [`FrameSpec`]s (COM frames packed from
//!   signals),
//! * activation wiring ([`ActivationSpec`]): external sources, task
//!   outputs, and — the paper's contribution — *signals unpacked from
//!   frames*.
//!
//! The [`AnalysisMode`] switch selects how frame-borne activations are
//! modeled and is exactly the paper's Table 3 comparison:
//!
//! * [`AnalysisMode::Flat`] — the baseline: a task activated by a signal
//!   of frame `F` is activated by **every** arrival of `F` (the flat
//!   output stream of the frame; all inner timing is lost),
//! * [`AnalysisMode::Hierarchical`] — the frame is a
//!   [`HierarchicalEventModel`](hem_core::HierarchicalEventModel); after
//!   the bus analysis the inner update function is applied and the
//!   receiving task sees only *its* unpacked signal stream.
//!
//! # Examples
//!
//! See [`examples`](https://docs.rs) in the repository root — the
//! `paper_system` example reproduces the paper's Fig. 2 system end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagnostics;
pub mod dsl;
mod engine;
mod error;
pub mod explore;
pub mod graph;
pub mod path;
mod pool;
pub mod report;
mod result;
pub mod sensitivity;
mod spec;
pub mod warm;

pub use diagnostics::{ConvergenceStatus, Diagnostics, StopReason};
pub use engine::{analyze, analyze_robust, RobustAnalysis};
pub use error::SystemError;
pub use explore::{
    explore, CandidateConfig, CandidateReport, ExploreOutcome, ExploreProblem, Objective, Packing,
    PackingSpace, PeriodChoice, PeriodSite, PrioritySpace, Verdict,
};
pub use result::{SystemConfig, SystemResults};
pub use spec::{
    ActivationSpec, AnalysisMode, BusSpec, CpuSpec, FrameSpec, SignalSpec, SystemSpec, TaskSpec,
};
pub use warm::{analyze_incremental, FallbackReason, IncrementalOutcome, ReuseReport, WarmStart};
