//! Structured diagnostics for non-converged analyses.
//!
//! A compositional analysis that fails to converge still produces
//! information an integrator needs: *which* entity's response time kept
//! growing, what the last iterates looked like, and which resource is
//! the likely culprit. This module captures that as data instead of a
//! bare error, so design-space-exploration loops and interactive tools
//! can react (drop a candidate, relax a budget, highlight a bus)
//! without re-running anything.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::time::Duration;

use hem_analysis::{AnalysisError, ResponseTime};
use hem_obs::ConvergenceTrace;

/// Per-entity convergence status after a (possibly aborted) analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvergenceStatus {
    /// The response time reached a fixed point.
    Converged,
    /// The response time grew strictly for the last `streak` global
    /// iterations without the growth slowing — the signature of a
    /// divergent jitter feedback loop.
    Growing {
        /// Length of the strict-growth streak when the analysis stopped.
        streak: u64,
    },
    /// The response time was still changing (but not monotonically
    /// growing) when the analysis stopped.
    Unsettled,
    /// The local analysis of this entity aborted (busy-window blow-up or
    /// budget exhaustion) before producing a response time.
    Failed,
    /// The entity was never analysed (the run stopped before reaching
    /// it).
    Unknown,
}

impl ConvergenceStatus {
    /// Whether this status denotes a usable (converged) response time.
    #[must_use]
    pub fn is_converged(&self) -> bool {
        matches!(self, ConvergenceStatus::Converged)
    }
}

/// Why the global iteration stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// All response times reached a fixed point.
    Converged,
    /// An entity's response time grew monotonically for the configured
    /// streak — the system is almost certainly unschedulable, so the
    /// engine stopped early instead of burning the full iteration limit.
    DivergenceDetected {
        /// The entity whose growth triggered the early stop.
        entity: String,
        /// Consecutive strictly-growing iterations observed.
        streak: u64,
    },
    /// A local busy-window analysis aborted.
    LocalAnalysisFailed {
        /// The task or frame whose local analysis failed.
        entity: String,
        /// The underlying local error.
        error: AnalysisError,
    },
    /// The wall-clock [`AnalysisBudget`](hem_analysis::AnalysisBudget)
    /// expired between global iterations.
    BudgetExhausted,
    /// `max_global_iterations` elapsed without a fixed point and without
    /// tripping the divergence heuristic.
    IterationLimitReached,
}

/// A structured post-mortem of a global analysis run.
///
/// Produced by [`analyze_robust`](crate::analyze_robust) for every run —
/// converged or not. Response-time vectors use prefixed keys
/// (`task:<name>` / `frame:<name>`) so tasks and frames sharing a name
/// cannot collide.
#[derive(Debug, Clone)]
pub struct Diagnostics {
    /// Why the run stopped.
    pub stop: StopReason,
    /// Completed global iterations.
    pub iterations: u64,
    /// Wall-clock time the run took, converged or not.
    pub elapsed: Duration,
    /// Per-iteration response-time snapshots of the whole run — the
    /// full trajectory towards (or away from) the fixed point, keyed
    /// like [`Diagnostics::last_response_times`].
    pub trace: ConvergenceTrace,
    /// Entities flagged [`ConvergenceStatus::Growing`], longest streak
    /// first.
    pub diverging: Vec<String>,
    /// Response times of the last completed global iteration.
    pub last_response_times: BTreeMap<String, ResponseTime>,
    /// Response times of the iteration before that (empty if fewer than
    /// two iterations completed).
    pub previous_response_times: BTreeMap<String, ResponseTime>,
    /// The resource (`cpu:<name>` / `bus:<name>`) hosting the first
    /// diverging or failed entity — a heuristic pointer, not a proof.
    pub suspected_bottleneck: Option<String>,
}

impl Diagnostics {
    /// Whether the run converged.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.stop == StopReason::Converged
    }

    /// Whether the run was cut short by a wall-clock budget (either
    /// between global iterations or inside a local analysis).
    #[must_use]
    pub fn budget_exhausted(&self) -> bool {
        match &self.stop {
            StopReason::BudgetExhausted => true,
            StopReason::LocalAnalysisFailed { error, .. } => error.is_budget_exhausted(),
            _ => false,
        }
    }

    /// The entity most implicated in the failure, if any: the failing
    /// entity of a local abort, or the longest-streak growing entity.
    #[must_use]
    pub fn prime_suspect(&self) -> Option<&str> {
        match &self.stop {
            StopReason::LocalAnalysisFailed { entity, .. }
            | StopReason::DivergenceDetected { entity, .. } => Some(entity.as_str()),
            _ => self.diverging.first().map(String::as_str),
        }
    }

    /// A human-readable multi-line report.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        match &self.stop {
            StopReason::Converged => {
                let _ = writeln!(out, "converged after {} iteration(s)", self.iterations);
            }
            StopReason::DivergenceDetected { entity, streak } => {
                let _ = writeln!(
                    out,
                    "divergence detected after {} iteration(s): `{entity}` grew for {streak} \
                     consecutive iteration(s)",
                    self.iterations
                );
            }
            StopReason::LocalAnalysisFailed { entity, error } => {
                let _ = writeln!(
                    out,
                    "local analysis of `{entity}` aborted after {} global iteration(s): {error}",
                    self.iterations
                );
            }
            StopReason::BudgetExhausted => {
                let _ = writeln!(
                    out,
                    "wall-clock budget exhausted after {} iteration(s)",
                    self.iterations
                );
            }
            StopReason::IterationLimitReached => {
                let _ = writeln!(
                    out,
                    "no fixed point within {} iteration(s)",
                    self.iterations
                );
            }
        }
        if !self.elapsed.is_zero() {
            let _ = writeln!(out, "elapsed: {:?}", self.elapsed);
        }
        if let Some(resource) = &self.suspected_bottleneck {
            let _ = writeln!(out, "suspected bottleneck: {resource}");
        }
        if !self.diverging.is_empty() {
            let _ = writeln!(out, "diverging entities: {}", self.diverging.join(", "));
        }
        for (key, last) in &self.last_response_times {
            match self.previous_response_times.get(key) {
                Some(prev) if prev != last => {
                    let _ = writeln!(out, "  {key:<24} {prev} -> {last}");
                }
                _ => {
                    let _ = writeln!(out, "  {key:<24} {last}");
                }
            }
        }
        out
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.summary().trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_time::Time;

    fn rt(lo: i64, hi: i64) -> ResponseTime {
        ResponseTime::new(Time::new(lo), Time::new(hi))
    }

    #[test]
    fn summary_names_diverging_entity_and_vectors() {
        let d = Diagnostics {
            stop: StopReason::DivergenceDetected {
                entity: "task:gateway".into(),
                streak: 12,
            },
            iterations: 17,
            elapsed: Duration::from_millis(5),
            trace: ConvergenceTrace::default(),
            diverging: vec!["task:gateway".into()],
            last_response_times: BTreeMap::from([("task:gateway".into(), rt(10, 900))]),
            previous_response_times: BTreeMap::from([("task:gateway".into(), rt(10, 700))]),
            suspected_bottleneck: Some("cpu:ecu1".into()),
        };
        let s = d.summary();
        assert!(s.contains("task:gateway"), "{s}");
        assert!(s.contains("cpu:ecu1"), "{s}");
        assert!(s.contains("[10, 700] -> [10, 900]"), "{s}");
        assert!(!d.converged());
        assert_eq!(d.prime_suspect(), Some("task:gateway"));
    }

    #[test]
    fn budget_exhaustion_detected_through_local_error() {
        let d = Diagnostics {
            stop: StopReason::LocalAnalysisFailed {
                entity: "task:t".into(),
                error: AnalysisError::budget_exhausted("t"),
            },
            iterations: 3,
            elapsed: Duration::ZERO,
            trace: ConvergenceTrace::default(),
            diverging: vec![],
            last_response_times: BTreeMap::new(),
            previous_response_times: BTreeMap::new(),
            suspected_bottleneck: None,
        };
        assert!(d.budget_exhausted());
        assert_eq!(d.prime_suspect(), Some("task:t"));
    }

    #[test]
    fn converged_diagnostics() {
        let d = Diagnostics {
            stop: StopReason::Converged,
            iterations: 4,
            elapsed: Duration::ZERO,
            trace: ConvergenceTrace::default(),
            diverging: vec![],
            last_response_times: BTreeMap::new(),
            previous_response_times: BTreeMap::new(),
            suspected_bottleneck: None,
        };
        assert!(d.converged());
        assert!(!d.budget_exhausted());
        assert_eq!(d.prime_suspect(), None);
        assert!(d.to_string().contains("converged after 4"));
    }
}
