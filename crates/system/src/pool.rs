//! A dependency-free worker pool for per-entity analysis jobs.
//!
//! The workspace's zero-dependency rule leaves no rayon to lean on, so
//! this is the smallest pool that does the job: persistent workers, one
//! shared injector queue behind a mutex + condvar, and an `mpsc` result
//! channel per batch. Analysis jobs are coarse (a whole busy-window
//! fixed point each), so injector contention is irrelevant compared to
//! job runtime — a work-stealing deque would buy nothing here.
//!
//! Determinism does not depend on the pool at all: results are indexed
//! by submission order and re-assembled positionally, so *where* and
//! *when* a job ran never influences what the engine sees.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct Injector {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

#[derive(Default)]
struct Shared {
    injector: Mutex<Injector>,
    available: Condvar,
}

/// A fixed-size pool executing submitted job batches.
///
/// `threads <= 1` spawns no workers: batches then run inline, on the
/// caller's thread, in submission order — the sequential reference
/// behaviour the determinism suite compares against.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool of `threads` workers (none for `threads <= 1`).
    pub(crate) fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared::default());
        let workers = (1..threads.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("hem-analysis-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn analysis worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of threads that execute jobs (workers plus the calling
    /// thread).
    pub(crate) fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs a batch of jobs and returns their outputs **in submission
    /// order**, regardless of execution interleaving.
    ///
    /// The calling thread participates: it drains the injector alongside
    /// the workers, so a pool of `n` threads really applies `n`-way
    /// parallelism (and the `threads == 1` pool degenerates to an
    /// in-order inline loop).
    ///
    /// # Panics
    ///
    /// A panicking job is caught on whichever thread ran it; the batch
    /// still runs to completion (every job executes exactly once, no job
    /// is left dangling in the injector), and then the payload of the
    /// **lowest-index** panicking job is re-thrown — exactly once — on
    /// the calling thread. The pool remains fully usable afterwards:
    /// no lock is ever poisoned (jobs never run under the injector
    /// mutex) and a subsequent `run_batch` on the same pool produces
    /// deterministic results, which the panic-recovery regression tests
    /// lock down.
    pub(crate) fn run_batch<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let n = jobs.len();
        if self.workers.is_empty() {
            // Inline path: the first panicking job (lowest index, since
            // jobs run in submission order) propagates directly.
            return jobs.into_iter().map(|job| job()).collect();
        }
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<T>)>();
        {
            let mut injector = self.shared.injector.lock().expect("injector poisoned");
            for (index, job) in jobs.into_iter().enumerate() {
                let tx = tx.clone();
                injector.jobs.push_back(Box::new(move || {
                    let result = panic::catch_unwind(AssertUnwindSafe(job));
                    // The receiver cannot have gone away before seeing
                    // every result, but stay defensive about sends.
                    let _ = tx.send((index, result));
                }));
            }
        }
        drop(tx);
        self.shared.available.notify_all();

        let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
        // The lowest-index panic payload, re-thrown once after the whole
        // batch has drained — never mid-batch, which would leave queued
        // jobs behind for a later batch to trip over.
        let mut panicked: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        let stash =
            |index: usize,
             result: std::thread::Result<T>,
             slots: &mut Vec<Option<T>>,
             panicked: &mut Option<(usize, Box<dyn std::any::Any + Send>)>| {
                match result {
                    Ok(v) => slots[index] = Some(v),
                    Err(payload) => {
                        if panicked.as_ref().is_none_or(|(i, _)| index < *i) {
                            *panicked = Some((index, payload));
                        }
                    }
                }
            };
        let mut received = 0usize;
        while received < n {
            // Help out: prefer running a queued job over blocking.
            let job = {
                let mut injector = self.shared.injector.lock().expect("injector poisoned");
                injector.jobs.pop_front()
            };
            if let Some(job) = job {
                job();
            }
            // Drain whatever has finished; block only when idle.
            loop {
                match rx.try_recv() {
                    Ok((index, result)) => {
                        stash(index, result, &mut slots, &mut panicked);
                        received += 1;
                    }
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => break,
                }
            }
            if received < n {
                let queue_empty = {
                    let injector = self.shared.injector.lock().expect("injector poisoned");
                    injector.jobs.is_empty()
                };
                if queue_empty {
                    let (index, result) = rx.recv().expect("all senders done before batch end");
                    stash(index, result, &mut slots, &mut panicked);
                    received += 1;
                }
            }
        }
        if let Some((_, payload)) = panicked {
            panic::resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every job reported"))
            .collect()
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut injector = shared.injector.lock().expect("injector poisoned");
            loop {
                if let Some(job) = injector.jobs.pop_front() {
                    break job;
                }
                if injector.shutdown {
                    return;
                }
                injector = shared.available.wait(injector).expect("injector poisoned");
            }
        };
        job();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut injector = self.shared.injector.lock().expect("injector poisoned");
            injector.shutdown = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn batch(n: usize) -> Vec<Box<dyn FnOnce() -> usize + Send + 'static>> {
        (0..n)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect()
    }

    #[test]
    fn sequential_pool_runs_inline_in_order() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.run_batch(batch(5)), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn parallel_pool_preserves_submission_order() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let expected: Vec<usize> = (0..64).map(|i| i * i).collect();
        for _ in 0..8 {
            assert_eq!(pool.run_batch(batch(64)), expected);
        }
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let jobs: Vec<Box<dyn FnOnce() -> () + Send>> = (0..7)
                .map(|_| {
                    let counter = counter.clone();
                    Box::new(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            pool.run_batch(jobs);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 35);
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = WorkerPool::new(2);
        let out: Vec<u8> = pool.run_batch(Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(4);
        let _ = pool.run_batch(batch(8));
        drop(pool); // must not hang
    }

    /// A batch where the jobs at `panic_at` panic with an identifying
    /// message and the rest return `i * i`.
    fn faulty_batch(
        n: usize,
        panic_at: &[usize],
    ) -> Vec<Box<dyn FnOnce() -> usize + Send + 'static>> {
        let panic_at = panic_at.to_vec();
        (0..n)
            .map(|i| {
                let poisoned = panic_at.contains(&i);
                Box::new(move || {
                    if poisoned {
                        panic!("job {i} exploded");
                    }
                    i * i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect()
    }

    fn payload_message(payload: &(dyn std::any::Any + Send)) -> &str {
        payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&'static str>().copied())
            .unwrap_or("<non-string panic payload>")
    }

    #[test]
    fn panic_payload_rethrown_once_and_pool_stays_usable() {
        for threads in [1usize, 4] {
            let pool = WorkerPool::new(threads);
            // Two panicking jobs: the lowest-index payload must win, and
            // it must surface exactly once — as an unwind out of
            // `run_batch`, not as a poisoned mutex on the next batch.
            let err = panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run_batch(faulty_batch(8, &[2, 5]))
            }))
            .expect_err("batch with panicking jobs must unwind");
            assert_eq!(
                payload_message(&*err),
                "job 2 exploded",
                "threads={threads}: lowest-index panic payload must be re-thrown"
            );

            // The same pool must still produce deterministic, in-order
            // results on subsequent fresh batches.
            let expected: Vec<usize> = (0..16).map(|i| i * i).collect();
            for _ in 0..4 {
                assert_eq!(
                    pool.run_batch(batch(16)),
                    expected,
                    "threads={threads}: pool poisoned by earlier panic"
                );
            }
            drop(pool); // workers must still join cleanly
        }
    }

    #[test]
    fn panic_mid_batch_leaves_no_job_behind() {
        // Every non-panicking job in the faulty batch must still have
        // run: nothing may linger in the injector to contaminate the
        // next batch's results.
        let pool = WorkerPool::new(4);
        let ran = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..32)
            .map(|i| {
                let ran = ran.clone();
                Box::new(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    if i == 3 {
                        panic!("boom");
                    }
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        let err = panic::catch_unwind(AssertUnwindSafe(|| pool.run_batch(jobs)))
            .expect_err("batch must unwind");
        assert_eq!(payload_message(&*err), "boom");
        assert_eq!(
            ran.load(Ordering::SeqCst),
            32,
            "all jobs must execute exactly once even when one panics"
        );
        assert!(pool.run_batch(batch(4)) == vec![0, 1, 4, 9]);
    }
}
