//! Human-readable analysis reports.
//!
//! Turns a converged [`SystemResults`] (plus its [`SystemSpec`]) into
//! the text report integrators read: frame responses per bus, task
//! responses per CPU, and end-to-end signal latencies. Binaries and
//! examples share this instead of re-implementing table printing.

use std::fmt::Write as _;

use hem_can::{BusFrame, CanFrameConfig};
use hem_obs::{Counter, MetricsSnapshot};
use hem_time::Time;

use crate::diagnostics::ConvergenceStatus;
use crate::engine::RobustAnalysis;
use crate::path::{analyze_path, signal_paths};
use crate::result::SystemResults;
use crate::spec::SystemSpec;

/// Table suffix for entities that did not converge.
fn status_marker(status: Option<ConvergenceStatus>) -> &'static str {
    match status {
        Some(ConvergenceStatus::Converged) | None => "",
        Some(ConvergenceStatus::Growing { .. }) => "  [DIVERGING]",
        Some(ConvergenceStatus::Unsettled) => "  [unsettled]",
        Some(ConvergenceStatus::Failed) => "  [FAILED]",
        Some(ConvergenceStatus::Unknown) => "  [not analysed]",
    }
}

/// Renders a full analysis report.
///
/// The output is stable, plain text (suitable for snapshot tests and
/// terminal review): sections for each bus, each CPU, and the signal
/// paths. Paths whose latency is unbounded (pending on a rate-less
/// frame) are reported as such rather than omitted.
#[must_use]
pub fn render(spec: &SystemSpec, results: &SystemResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "analysis report ({:?} mode, {} global iterations)",
        results.mode(),
        results.iterations()
    );
    if !results.is_complete() {
        let _ = writeln!(
            out,
            "WARNING: analysis did not converge — response times below are \
             lower bounds, not safe worst cases"
        );
    }

    for bus in &spec.buses {
        let _ = writeln!(out, "\nbus {}:", bus.name);
        let mut bus_frames = Vec::new();
        for f in spec.frames.iter().filter(|f| f.bus == bus.name) {
            if let Some(r) = results.frame(&f.name) {
                let _ = writeln!(
                    out,
                    "  frame {:<12} response {:>18} ({} signals, {} B){}",
                    f.name,
                    r.response.to_string(),
                    f.signals.len(),
                    f.payload_bytes,
                    status_marker(results.frame_convergence(&f.name))
                );
            }
            if let (Some(input), Ok(config)) = (
                results.frame_activation(&f.name),
                CanFrameConfig::new(f.format, f.payload_bytes),
            ) {
                bus_frames.push(BusFrame::new(
                    f.name.clone(),
                    config,
                    f.priority,
                    input.clone(),
                ));
            }
        }
        if !bus_frames.is_empty() {
            let load = hem_can::load::bus_load(&bus_frames, &bus.config, Time::new(1_000_000));
            let _ = writeln!(out, "  load  {:.1} %", 100.0 * load.total);
        }
    }

    for cpu in &spec.cpus {
        let _ = writeln!(out, "\ncpu {}:", cpu.name);
        for t in spec.tasks.iter().filter(|t| t.cpu == cpu.name) {
            if let Some(r) = results.task(&t.name) {
                let _ = writeln!(
                    out,
                    "  task  {:<12} response {:>18} (busy period: {} activation(s)){}",
                    t.name,
                    r.response.to_string(),
                    r.busy_activations,
                    status_marker(results.task_convergence(&t.name))
                );
            }
        }
    }

    let paths = signal_paths(spec);
    if !paths.is_empty() {
        let _ = writeln!(out, "\nsignal paths:");
        for p in paths {
            match analyze_path(spec, results, &p) {
                Ok(lat) => {
                    let _ = writeln!(
                        out,
                        "  {:<24} total {:>8}  (sampling {} + transport {} + reaction {}){}",
                        format!("{}/{} -> {}", p.frame, p.signal, p.task),
                        lat.total().to_string(),
                        lat.sampling,
                        lat.transport,
                        lat.reaction,
                        if lat.guaranteed_delivery {
                            ""
                        } else {
                            "  [freshest value only]"
                        }
                    );
                }
                Err(e) => {
                    let _ = writeln!(
                        out,
                        "  {:<24} {}",
                        format!("{}/{} -> {}", p.frame, p.signal, p.task),
                        e
                    );
                }
            }
        }
    }
    out
}

/// Renders a report for a robust analysis: the (possibly partial)
/// result table followed by the diagnostics post-mortem when the
/// analysis did not converge.
#[must_use]
pub fn render_robust(spec: &SystemSpec, robust: &RobustAnalysis) -> String {
    let mut out = render(spec, &robust.results);
    if !robust.diagnostics.converged() {
        let _ = writeln!(out, "\ndiagnostics:");
        for line in robust.diagnostics.summary().lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    out
}

/// Renders the metrics section of a recorded run: counter totals and
/// histogram summaries collected by a
/// [`MemoryRecorder`](hem_obs::MemoryRecorder) while the analysis ran.
///
/// Zero counters are omitted — an unrecorded run renders as an empty
/// section rather than a wall of zeros.
#[must_use]
pub fn render_metrics(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("metrics:\n");
    for c in Counter::ALL {
        let value = snapshot.counter(c);
        if value > 0 {
            let _ = writeln!(out, "  {:<28} {value:>10}", c.name());
        }
    }
    for (name, h) in &snapshot.histograms {
        let _ = writeln!(
            out,
            "  {name:<28} n={} min={} mean={:.1} max={}",
            h.count,
            h.min,
            h.mean(),
            h.max
        );
    }
    out
}

/// Renders a full profiled report: the robust report, the per-iteration
/// convergence trajectory, and the recorded metrics.
#[must_use]
pub fn render_profiled(
    spec: &SystemSpec,
    robust: &RobustAnalysis,
    snapshot: &MetricsSnapshot,
) -> String {
    let mut out = render_robust(spec, robust);
    if !robust.diagnostics.trace.is_empty() {
        let _ = writeln!(out, "\nconvergence trace (r+ per global iteration):");
        out.push_str(&robust.diagnostics.trace.render_table());
    }
    out.push('\n');
    out.push_str(&render_metrics(snapshot));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyze;
    use crate::result::SystemConfig;
    use crate::spec::{ActivationSpec, AnalysisMode, FrameSpec, SignalSpec, TaskSpec};
    use hem_analysis::Priority;
    use hem_autosar_com::{FrameType, TransferProperty};
    use hem_can::{CanBusConfig, FrameFormat};
    use hem_event_models::{EventModelExt, StandardEventModel};
    use hem_time::Time;

    fn spec() -> SystemSpec {
        SystemSpec::new()
            .cpu("ecu")
            .bus("can", CanBusConfig::new(Time::new(1)))
            .frame(FrameSpec {
                name: "F".into(),
                bus: "can".into(),
                frame_type: FrameType::Direct,
                payload_bytes: 4,
                format: FrameFormat::Standard,
                priority: Priority::new(1),
                signals: vec![SignalSpec {
                    name: "s".into(),
                    transfer: TransferProperty::Triggering,
                    source: ActivationSpec::External(
                        StandardEventModel::periodic(Time::new(2_000))
                            .expect("valid")
                            .shared(),
                    ),
                }],
            })
            .task(TaskSpec {
                name: "rx".into(),
                cpu: "ecu".into(),
                bcet: Time::new(100),
                wcet: Time::new(100),
                priority: Priority::new(1),
                activation: ActivationSpec::Signal {
                    frame: "F".into(),
                    signal: "s".into(),
                },
            })
    }

    #[test]
    fn report_contains_all_sections() {
        let s = spec();
        let results = analyze(&s, &SystemConfig::new(AnalysisMode::Hierarchical)).unwrap();
        let text = render(&s, &results);
        assert!(text.contains("Hierarchical mode"), "{text}");
        assert!(text.contains("bus can:"), "{text}");
        assert!(text.contains("frame F"), "{text}");
        assert!(text.contains("cpu ecu:"), "{text}");
        assert!(text.contains("task  rx"), "{text}");
        assert!(text.contains("signal paths:"), "{text}");
        assert!(text.contains("F/s -> rx"), "{text}");
        // Concrete numbers for this uncontended system.
        assert!(text.contains("[79, 95]"), "{text}");
        assert!(text.contains("total      195"), "{text}");
        // Bus-load line: one 95-bit frame every 2000 ticks ≈ 4.8 %.
        assert!(text.contains("load  4.8 %"), "{text}");
    }

    #[test]
    fn robust_report_marks_partial_results() {
        let s = SystemSpec::new()
            .cpu("ecu")
            .task(TaskSpec {
                name: "hog".into(),
                cpu: "ecu".into(),
                bcet: Time::new(90),
                wcet: Time::new(90),
                priority: Priority::new(1),
                activation: ActivationSpec::External(
                    StandardEventModel::periodic(Time::new(100))
                        .expect("valid")
                        .shared(),
                ),
            })
            .task(TaskSpec {
                name: "victim".into(),
                cpu: "ecu".into(),
                bcet: Time::new(50),
                wcet: Time::new(50),
                priority: Priority::new(2),
                activation: ActivationSpec::External(
                    StandardEventModel::periodic(Time::new(200))
                        .expect("valid")
                        .shared(),
                ),
            });
        let robust =
            crate::analyze_robust(&s, &SystemConfig::new(AnalysisMode::Flat)).expect("well-formed");
        let text = render_robust(&s, &robust);
        assert!(text.contains("WARNING"), "{text}");
        assert!(text.contains("diagnostics:"), "{text}");
        assert!(text.contains("task:victim"), "{text}");
    }

    #[test]
    fn profiled_report_has_trace_and_metrics_sections() {
        use hem_obs::MemoryRecorder;
        let s = spec();
        let (recorder, handle) = MemoryRecorder::handle();
        let config = SystemConfig::new(AnalysisMode::Hierarchical).with_recorder(handle);
        let robust = crate::analyze_robust(&s, &config).expect("well-formed");
        let text = render_profiled(&s, &robust, &recorder.snapshot());
        assert!(text.contains("convergence trace"), "{text}");
        assert!(text.contains("metrics:"), "{text}");
        assert!(text.contains("global_iterations"), "{text}");
        assert!(text.contains("busy_window_iterations"), "{text}");
        assert!(text.contains("span_us/analyze"), "{text}");
        // An unrecorded run renders an empty metrics section, not zeros.
        let empty = render_metrics(&hem_obs::MetricsSnapshot::default());
        assert_eq!(empty, "metrics:\n");
    }

    #[test]
    fn pending_path_marked() {
        let mut s = spec();
        s.frames[0].signals.push(SignalSpec {
            name: "p".into(),
            transfer: TransferProperty::Pending,
            source: ActivationSpec::External(
                StandardEventModel::periodic(Time::new(9_000))
                    .expect("valid")
                    .shared(),
            ),
        });
        s.tasks.push(TaskSpec {
            name: "rx_p".into(),
            cpu: "ecu".into(),
            bcet: Time::new(50),
            wcet: Time::new(50),
            priority: Priority::new(2),
            activation: ActivationSpec::Signal {
                frame: "F".into(),
                signal: "p".into(),
            },
        });
        let results = analyze(&s, &SystemConfig::new(AnalysisMode::Hierarchical)).unwrap();
        let text = render(&s, &results);
        assert!(text.contains("[freshest value only]"), "{text}");
    }
}
