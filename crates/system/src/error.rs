//! Error type for system-level analysis.

use std::error::Error;
use std::fmt;

use hem_analysis::AnalysisError;
use hem_autosar_com::ComError;
use hem_can::CanError;
use hem_event_models::ModelError;

/// Error returned by the global system analysis.
#[derive(Debug)]
pub enum SystemError {
    /// The system description references an unknown entity.
    UnknownReference {
        /// What kind of entity (task, frame, signal, cpu, bus).
        kind: &'static str,
        /// The dangling name.
        name: String,
    },
    /// Duplicate entity names in the description.
    Duplicate {
        /// What kind of entity.
        kind: &'static str,
        /// The colliding name.
        name: String,
    },
    /// The global iteration did not reach a fixed point.
    NoGlobalConvergence {
        /// Iterations performed before giving up.
        iterations: u64,
    },
    /// The wall-clock [`AnalysisBudget`](hem_analysis::AnalysisBudget)
    /// expired before the analysis converged.
    BudgetExhausted {
        /// The entity (`task:<name>` / `frame:<name>`) being analysed
        /// when the budget ran out, or `None` when it expired between
        /// global iterations.
        entity: Option<String>,
    },
    /// Activation wiring forms a dependency cycle that the engine cannot
    /// resolve (e.g. a task activated — possibly through frames — by its
    /// own output).
    DependencyCycle {
        /// An entity on the cycle.
        name: String,
    },
    /// The system description uses a combination the engine does not
    /// support (e.g. a signal sourced directly from another frame's
    /// signal — route it through a gateway task instead).
    UnsupportedSpec(String),
    /// A local analysis failed.
    Analysis(AnalysisError),
    /// COM-frame construction failed.
    Com(ComError),
    /// CAN configuration is invalid.
    Can(CanError),
    /// Event-model construction failed.
    Model(ModelError),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::UnknownReference { kind, name } => {
                write!(f, "unknown {kind} `{name}` referenced by the system")
            }
            SystemError::Duplicate { kind, name } => {
                write!(f, "duplicate {kind} name `{name}`")
            }
            SystemError::NoGlobalConvergence { iterations } => write!(
                f,
                "global analysis did not converge within {iterations} iterations"
            ),
            SystemError::BudgetExhausted { entity } => match entity {
                Some(name) => write!(f, "analysis budget exhausted while analysing `{name}`"),
                None => write!(f, "analysis budget exhausted"),
            },
            SystemError::DependencyCycle { name } => {
                write!(f, "activation dependency cycle involving `{name}`")
            }
            SystemError::UnsupportedSpec(msg) => write!(f, "unsupported system spec: {msg}"),
            SystemError::Analysis(e) => write!(f, "local analysis failed: {e}"),
            SystemError::Com(e) => write!(f, "COM layer error: {e}"),
            SystemError::Can(e) => write!(f, "CAN configuration error: {e}"),
            SystemError::Model(e) => write!(f, "event model error: {e}"),
        }
    }
}

impl Error for SystemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SystemError::Analysis(e) => Some(e),
            SystemError::Com(e) => Some(e),
            SystemError::Can(e) => Some(e),
            SystemError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AnalysisError> for SystemError {
    fn from(e: AnalysisError) -> Self {
        SystemError::Analysis(e)
    }
}

impl From<ComError> for SystemError {
    fn from(e: ComError) -> Self {
        SystemError::Com(e)
    }
}

impl From<CanError> for SystemError {
    fn from(e: CanError) -> Self {
        SystemError::Can(e)
    }
}

impl From<ModelError> for SystemError {
    fn from(e: ModelError) -> Self {
        SystemError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SystemError::UnknownReference {
            kind: "frame",
            name: "F9".into(),
        };
        assert_eq!(e.to_string(), "unknown frame `F9` referenced by the system");
        let e = SystemError::Duplicate {
            kind: "task",
            name: "T1".into(),
        };
        assert!(e.to_string().contains("duplicate task"));
        let e = SystemError::NoGlobalConvergence { iterations: 64 };
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn conversions_preserve_sources() {
        let e: SystemError = AnalysisError::invalid("x").into();
        assert!(e.source().is_some());
        let e: SystemError = ModelError::invalid("y").into();
        assert!(e.source().is_some());
    }
}
