//! Incremental warm-start analysis.
//!
//! Sweep workloads re-run the global fixed point from scratch for every
//! scenario even though neighbouring scenarios differ in a single
//! parameter. This module reuses a converged run instead: a
//! [`WarmStart`] snapshot captures the full per-iteration result
//! trajectory of a converged analysis, a spec diff computes the *damage
//! cone* — the resources transitively reachable from any mutated entity
//! in the [`ResourceGraph`] — and [`analyze_incremental`] re-runs the
//! fixed point replaying every entity outside the cone from the
//! snapshot instead of re-analysing its busy windows.
//!
//! # Why replaying is exact
//!
//! An entity outside the damage cone depends — directly or transitively,
//! in the same or a previous iteration — only on entities outside the
//! cone (the cone is closed under dependents). That sub-system is
//! bit-identical to the snapshot's, so its per-iteration trajectory in a
//! from-scratch run of the mutated spec *equals the recorded
//! trajectory*: iteration `i` replays the snapshot's iteration
//! `min(i, n)` (after its convergence iteration `n` a converged
//! sub-system repeats itself). Replay therefore preserves results,
//! convergence traces, iteration counts, stop reasons, and divergence
//! diagnostics **bit for bit** — the same correctness bar as the
//! parallel engine's, and enforced at every thread count by the
//! `incremental_equivalence` suite. Only *work* counters
//! (busy-window iterations, curve-cache traffic) shrink; see
//! `docs/INCREMENTAL.md` for the exact equality contract.
//!
//! # Fallbacks
//!
//! Reuse is refused — falling back to a full from-scratch run, reported
//! via [`FallbackReason`] and the `full_fallbacks` counter — when there
//! is no usable snapshot, when analysis-shaping configuration changed,
//! when the topology changed structurally (entities added, removed,
//! reordered, or re-hosted), or when the propagation graph has
//! dependency cycles (the cyclic sub-system is analysed by a lazy
//! sequential path whose work cannot be partitioned by resource).

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;

use hem_analysis::TaskResult;
use hem_event_models::CachedModel;
use hem_obs::Counter;
use hem_time::Time;

use crate::engine::{run_with, validate, Capture, EngineWarm, RobustAnalysis, RunOutcome};
use crate::graph::{PropagationLevels, ResourceGraph};
use crate::result::SystemConfig;
use crate::spec::{ActivationSpec, AnalysisMode, SignalSpec, SystemSpec};
use crate::SystemError;

/// A reusable snapshot of a **converged** analysis: the analysed spec,
/// the analysis-shaping configuration, the per-iteration result
/// trajectory, and the shared curve caches of every iteration.
///
/// Produced by [`analyze_incremental`] (the `snapshot` field of its
/// outcome) and fed back into the next call. Snapshots are only taken
/// from converged runs — a stopped run's trajectory is not a fixed
/// point and cannot seed a replay.
#[derive(Debug)]
pub struct WarmStart {
    /// The spec the snapshot was computed from, kept alive so external
    /// event models can be compared by allocation identity (an `Arc`
    /// address can only be trusted while the original is alive).
    spec: SystemSpec,
    mode: AnalysisMode,
    sem_fit_horizon: u64,
    tighten_inner: bool,
    max_busy_window: Time,
    max_activations: u64,
    max_iterations: u64,
    /// `(frame results, task results)` of iterations `1..=n`.
    trajectory: Vec<(BTreeMap<String, TaskResult>, BTreeMap<String, TaskResult>)>,
    /// The keyed shared curve caches of iterations `1..=n` (keys
    /// `act:<task>` / `outer:<frame>`), forked into clean entities of
    /// the next run.
    caches: Vec<BTreeMap<String, Arc<CachedModel>>>,
}

/// The snapshot state replayed for one global iteration.
pub(crate) struct Replay<'w> {
    pub(crate) frames: &'w BTreeMap<String, TaskResult>,
    pub(crate) tasks: &'w BTreeMap<String, TaskResult>,
    pub(crate) caches: &'w BTreeMap<String, Arc<CachedModel>>,
}

impl WarmStart {
    pub(crate) fn assemble(spec: &SystemSpec, config: &SystemConfig, capture: Capture) -> Self {
        WarmStart {
            spec: spec.clone(),
            mode: config.mode,
            sem_fit_horizon: config.sem_fit_horizon,
            tighten_inner: config.tighten_inner,
            max_busy_window: config.local.max_busy_window,
            max_activations: config.local.max_activations,
            max_iterations: config.local.max_iterations,
            trajectory: capture.trajectory,
            caches: capture.caches,
        }
    }

    /// Number of global iterations the snapshot recorded (equals the
    /// captured run's iteration count).
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.trajectory.len() as u64
    }

    /// The recorded state for global iteration `iteration` (1-based),
    /// clamped to the trajectory: past the snapshot's convergence
    /// iteration a converged sub-system repeats its final state.
    pub(crate) fn replay(&self, iteration: u64) -> Replay<'_> {
        let idx = iteration
            .min(self.trajectory.len() as u64)
            .saturating_sub(1) as usize;
        let (frames, tasks) = &self.trajectory[idx];
        Replay {
            frames,
            tasks,
            caches: &self.caches[idx],
        }
    }

    /// Whether the configuration knobs that shape per-entity results
    /// match the snapshot's. Thread count and global stop limits
    /// (`max_global_iterations`, `divergence_streak`) are deliberately
    /// not compared: they never alter the per-iteration trajectory,
    /// only where a run stops — and replay follows the new run's own
    /// stopping logic.
    fn compatible(&self, config: &SystemConfig) -> bool {
        self.mode == config.mode
            && self.sem_fit_horizon == config.sem_fit_horizon
            && self.tighten_inner == config.tighten_inner
            && self.max_busy_window == config.local.max_busy_window
            && self.max_activations == config.local.max_activations
            && self.max_iterations == config.local.max_iterations
    }
}

/// Why an incremental analysis fell back to a full from-scratch run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// No snapshot was supplied (the first run of a chain).
    NoSnapshot,
    /// Analysis-shaping configuration differs from the snapshot's
    /// (mode, SEM fit horizon, inner tightening, or local busy-window
    /// limits).
    ConfigChanged,
    /// The topology changed structurally: entities added, removed,
    /// reordered, or moved to another resource.
    StructuralChange,
    /// The propagation graph has resource-level dependency cycles; the
    /// sequential cycle fallback cannot be partitioned by resource.
    DependencyCycles,
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FallbackReason::NoSnapshot => "no snapshot",
            FallbackReason::ConfigChanged => "configuration changed",
            FallbackReason::StructuralChange => "structural change",
            FallbackReason::DependencyCycles => "dependency cycles",
        })
    }
}

/// How much of a run [`analyze_incremental`] reused.
#[derive(Debug, Clone)]
pub struct ReuseReport {
    /// Whether the run was warm-started (false = full fallback).
    pub warm: bool,
    /// Why reuse was refused, when it was.
    pub fallback: Option<FallbackReason>,
    /// The damage cone: prefixed resource keys (`bus:<b>` / `cpu:<c>`)
    /// that were re-analysed, in sorted order. On a fallback this is
    /// every resource.
    pub dirty_resources: Vec<String>,
    /// Total number of resources in the system.
    pub total_resources: usize,
    /// Per-entity busy-window analyses replayed from the snapshot
    /// across all completed iterations (the `warm_start_hits` counter).
    pub replayed_results: u64,
}

impl ReuseReport {
    /// Fraction of resources inside the damage cone (`1.0` on a full
    /// fallback or for an empty system).
    #[must_use]
    pub fn cone_fraction(&self) -> f64 {
        if self.total_resources == 0 {
            1.0
        } else {
            self.dirty_resources.len() as f64 / self.total_resources as f64
        }
    }
}

/// The outcome of [`analyze_incremental`].
#[derive(Debug)]
pub struct IncrementalOutcome {
    /// Results and diagnostics — bit-for-bit identical to what
    /// [`analyze_robust`](crate::analyze_robust) returns for the same
    /// spec and configuration.
    pub analysis: RobustAnalysis,
    /// A snapshot for the next call in the chain. `None` when the run
    /// did not converge.
    pub snapshot: Option<WarmStart>,
    /// What was reused.
    pub reuse: ReuseReport,
}

/// Runs the global analysis, reusing a previous run's [`WarmStart`]
/// snapshot where the spec diff proves it sound.
///
/// With `warm = None` (or whenever reuse must be refused, see
/// [`FallbackReason`]) this is exactly
/// [`analyze_robust`](crate::analyze_robust) plus a snapshot of the
/// converged run. With a usable snapshot, entities outside the damage
/// cone of the mutation replay their recorded per-iteration results
/// instead of re-running busy-window analyses, and their shared curve
/// caches carry over — the returned results, diagnostics, and
/// convergence traces are **bit-for-bit identical** to a from-scratch
/// run, at every thread count.
///
/// Reuse is visible in the recorder: `warm_start_hits` (replayed
/// per-entity analyses), `cone_size` (resources re-analysed), and
/// `full_fallbacks` (runs that could not reuse anything).
///
/// Spec diffing compares external event models by `Arc` identity:
/// scenario builders must *clone and modify* the previous spec so
/// untouched activations keep their allocations (rebuilding an
/// identical model in a new `Arc` widens the cone — sound, but without
/// reuse).
///
/// # Examples
///
/// ```
/// use hem_system::{analyze_incremental, AnalysisMode, SystemConfig, SystemSpec};
///
/// let spec = SystemSpec::new().cpu("ecu");
/// let config = SystemConfig::new(AnalysisMode::Hierarchical);
/// let first = analyze_incremental(&spec, &config, None)?;
/// // Re-analysing an unchanged spec replays everything.
/// let second = analyze_incremental(&spec, &config, first.snapshot.as_ref())?;
/// assert!(second.reuse.warm);
/// assert!(second.reuse.dirty_resources.is_empty());
/// # Ok::<(), hem_system::SystemError>(())
/// ```
///
/// # Errors
///
/// Exactly the spec errors of [`analyze_robust`](crate::analyze_robust):
/// duplicates, dangling references, unsupported constructs, and invalid
/// CAN/COM/model configurations.
pub fn analyze_incremental(
    spec: &SystemSpec,
    config: &SystemConfig,
    warm: Option<&WarmStart>,
) -> Result<IncrementalOutcome, SystemError> {
    validate(spec)?;
    let recorder = config.local.recorder.clone();
    let graph = ResourceGraph::of(spec);
    let total_resources = graph.len();
    match plan(spec, config, warm, &graph) {
        Ok((clean, dirty)) => {
            recorder.add(Counter::ConeSize, dirty.len() as u64);
            let engine_warm = EngineWarm {
                clean,
                snapshot: warm.expect("a warm plan implies a snapshot"),
            };
            let (outcome, capture, replayed) = run_with(spec, config, Some(&engine_warm), true)?;
            finish(
                spec,
                config,
                outcome,
                capture,
                ReuseReport {
                    warm: true,
                    fallback: None,
                    dirty_resources: dirty,
                    total_resources,
                    replayed_results: replayed,
                },
            )
        }
        Err(reason) => {
            recorder.add(Counter::FullFallbacks, 1);
            recorder.add(Counter::ConeSize, total_resources as u64);
            let (outcome, capture, _) = run_with(spec, config, None, true)?;
            finish(
                spec,
                config,
                outcome,
                capture,
                ReuseReport {
                    warm: false,
                    fallback: Some(reason),
                    dirty_resources: graph.resources().map(String::from).collect(),
                    total_resources,
                    replayed_results: 0,
                },
            )
        }
    }
}

fn finish(
    spec: &SystemSpec,
    config: &SystemConfig,
    outcome: RunOutcome,
    capture: Option<Capture>,
    reuse: ReuseReport,
) -> Result<IncrementalOutcome, SystemError> {
    let snapshot = capture.map(|c| WarmStart::assemble(spec, config, c));
    let analysis = match outcome {
        RunOutcome::Converged {
            results,
            diagnostics,
        } => RobustAnalysis {
            results,
            diagnostics,
        },
        RunOutcome::Stopped {
            partial,
            diagnostics,
        } => RobustAnalysis {
            results: partial,
            diagnostics,
        },
    };
    Ok(IncrementalOutcome {
        analysis,
        snapshot,
        reuse,
    })
}

/// Decides between a warm plan `(clean resources, sorted dirty cone)`
/// and a fallback.
fn plan(
    spec: &SystemSpec,
    config: &SystemConfig,
    warm: Option<&WarmStart>,
    graph: &ResourceGraph,
) -> Result<(HashSet<String>, Vec<String>), FallbackReason> {
    let snapshot = warm.ok_or(FallbackReason::NoSnapshot)?;
    if snapshot.trajectory.is_empty() {
        return Err(FallbackReason::NoSnapshot);
    }
    if !snapshot.compatible(config) {
        return Err(FallbackReason::ConfigChanged);
    }
    let seeds = diff(&snapshot.spec, spec).ok_or(FallbackReason::StructuralChange)?;
    if PropagationLevels::of(spec).has_cycles() {
        return Err(FallbackReason::DependencyCycles);
    }
    let cone = graph.dependents_closure(seeds);
    let clean: HashSet<String> = graph
        .resources()
        .filter(|r| !cone.contains(*r))
        .map(String::from)
        .collect();
    Ok((clean, cone.into_iter().collect()))
}

/// The directly mutated resources between two structurally equal specs
/// (prefixed keys), or `None` when the change is structural — entities
/// added, removed, reordered, or re-hosted — and invalidation at
/// resource granularity no longer applies.
fn diff(old: &SystemSpec, new: &SystemSpec) -> Option<BTreeSet<String>> {
    if old.cpus.len() != new.cpus.len()
        || old.buses.len() != new.buses.len()
        || old.tasks.len() != new.tasks.len()
        || old.frames.len() != new.frames.len()
    {
        return None;
    }
    let mut seeds = BTreeSet::new();
    for (o, n) in old.cpus.iter().zip(&new.cpus) {
        if o.name != n.name {
            return None;
        }
    }
    for (o, n) in old.buses.iter().zip(&new.buses) {
        if o.name != n.name {
            return None;
        }
        if o.config != n.config {
            seeds.insert(format!("bus:{}", n.name));
        }
    }
    for (o, n) in old.tasks.iter().zip(&new.tasks) {
        if o.name != n.name || o.cpu != n.cpu {
            return None;
        }
        if o.bcet != n.bcet
            || o.wcet != n.wcet
            || o.priority != n.priority
            || !same_activation(&o.activation, &n.activation)
        {
            seeds.insert(format!("cpu:{}", n.cpu));
        }
    }
    for (o, n) in old.frames.iter().zip(&new.frames) {
        if o.name != n.name || o.bus != n.bus {
            return None;
        }
        if o.frame_type != n.frame_type
            || o.payload_bytes != n.payload_bytes
            || o.format != n.format
            || o.priority != n.priority
            || !same_signals(&o.signals, &n.signals)
        {
            seeds.insert(format!("bus:{}", n.bus));
        }
    }
    Some(seeds)
}

fn same_signals(old: &[SignalSpec], new: &[SignalSpec]) -> bool {
    old.len() == new.len()
        && old.iter().zip(new).all(|(o, n)| {
            o.name == n.name && o.transfer == n.transfer && same_activation(&o.source, &n.source)
        })
}

/// Structural equality of activation wiring. External event models are
/// opaque trait objects without an equality; the only reliable
/// "unchanged" signal is sharing the same allocation, so they compare
/// by `Arc` address — the input-model fingerprint. A false negative
/// (equal model, fresh allocation) merely widens the cone: sound, just
/// without reuse. The snapshot keeps its spec alive, so a matching
/// address genuinely is the same model.
fn same_activation(a: &ActivationSpec, b: &ActivationSpec) -> bool {
    match (a, b) {
        (ActivationSpec::External(x), ActivationSpec::External(y)) => {
            std::ptr::addr_eq(Arc::as_ptr(x), Arc::as_ptr(y))
        }
        (ActivationSpec::TaskOutput(x), ActivationSpec::TaskOutput(y)) => x == y,
        (
            ActivationSpec::Signal {
                frame: fa,
                signal: sa,
            },
            ActivationSpec::Signal {
                frame: fb,
                signal: sb,
            },
        ) => fa == fb && sa == sb,
        (ActivationSpec::FrameArrivals(x), ActivationSpec::FrameArrivals(y)) => x == y,
        (ActivationSpec::AnyOf(xs), ActivationSpec::AnyOf(ys))
        | (ActivationSpec::AllOf(xs), ActivationSpec::AllOf(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| same_activation(x, y))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FrameSpec, SignalSpec, TaskSpec};
    use hem_analysis::Priority;
    use hem_autosar_com::{FrameType, TransferProperty};
    use hem_can::{CanBusConfig, FrameFormat};
    use hem_event_models::{EventModelExt, ModelRef, StandardEventModel};

    fn periodic(p: i64) -> ModelRef {
        StandardEventModel::periodic(Time::new(p)).unwrap().shared()
    }

    fn task(name: &str, cpu: &str, wcet: i64, act: ActivationSpec) -> TaskSpec {
        TaskSpec {
            name: name.into(),
            cpu: cpu.into(),
            bcet: Time::new(wcet),
            wcet: Time::new(wcet),
            priority: Priority::new(1),
            activation: act,
        }
    }

    /// Two islands: can0+cpu_a (F0 → t0) and can1+cpu_b (F1 → t1).
    fn two_island_spec() -> SystemSpec {
        SystemSpec::new()
            .cpu("cpu_a")
            .cpu("cpu_b")
            .bus("can0", CanBusConfig::new(Time::new(1)))
            .bus("can1", CanBusConfig::new(Time::new(1)))
            .frame(frame("F0", "can0", vec![("s", periodic(500))]))
            .frame(frame("F1", "can1", vec![("s", periodic(700))]))
            .task(task(
                "t0",
                "cpu_a",
                30,
                ActivationSpec::Signal {
                    frame: "F0".into(),
                    signal: "s".into(),
                },
            ))
            .task(task(
                "t1",
                "cpu_b",
                40,
                ActivationSpec::Signal {
                    frame: "F1".into(),
                    signal: "s".into(),
                },
            ))
    }

    fn frame(name: &str, bus: &str, signals: Vec<(&str, ModelRef)>) -> FrameSpec {
        FrameSpec {
            name: name.into(),
            bus: bus.into(),
            frame_type: FrameType::Direct,
            payload_bytes: 4,
            format: FrameFormat::Standard,
            priority: Priority::new(1),
            signals: signals
                .into_iter()
                .map(|(n, m)| SignalSpec {
                    name: n.into(),
                    transfer: TransferProperty::Triggering,
                    source: ActivationSpec::External(m),
                })
                .collect(),
        }
    }

    #[test]
    fn diff_unchanged_clone_is_empty() {
        let spec = two_island_spec();
        let copy = spec.clone();
        assert_eq!(diff(&spec, &copy), Some(BTreeSet::new()));
    }

    #[test]
    fn diff_seeds_mutated_resources() {
        let spec = two_island_spec();
        let mut mutated = spec.clone();
        mutated.tasks[0].wcet = Time::new(35);
        assert_eq!(
            diff(&spec, &mutated),
            Some(BTreeSet::from(["cpu:cpu_a".to_string()]))
        );

        let mut mutated = spec.clone();
        mutated.frames[1].payload_bytes = 8;
        mutated.buses[0].config = CanBusConfig::new(Time::new(2));
        assert_eq!(
            diff(&spec, &mutated),
            Some(BTreeSet::from([
                "bus:can0".to_string(),
                "bus:can1".to_string()
            ]))
        );

        // Replacing an external model — even an equal one — seeds the
        // frame's bus: identity, not value, is the fingerprint.
        let mut mutated = spec.clone();
        mutated.frames[0].signals[0].source = ActivationSpec::External(periodic(500));
        assert_eq!(
            diff(&spec, &mutated),
            Some(BTreeSet::from(["bus:can0".to_string()]))
        );
    }

    #[test]
    fn diff_rejects_structural_changes() {
        let spec = two_island_spec();

        let mutated = spec.clone().cpu("extra");
        assert_eq!(diff(&spec, &mutated), None);

        let mut mutated = spec.clone();
        mutated.tasks[0].cpu = "cpu_b".into();
        assert_eq!(diff(&spec, &mutated), None);

        let mut mutated = spec.clone();
        mutated.frames.swap(0, 1);
        assert_eq!(diff(&spec, &mutated), None);

        let mut mutated = spec.clone();
        mutated.tasks.pop();
        assert_eq!(diff(&spec, &mutated), None);
    }

    #[test]
    fn same_activation_compares_structurally_and_by_arc() {
        let m = periodic(100);
        let a = ActivationSpec::AnyOf(vec![
            ActivationSpec::External(m.clone()),
            ActivationSpec::TaskOutput("t".into()),
        ]);
        let b = ActivationSpec::AnyOf(vec![
            ActivationSpec::External(m),
            ActivationSpec::TaskOutput("t".into()),
        ]);
        assert!(same_activation(&a, &b));
        let c = ActivationSpec::AnyOf(vec![
            ActivationSpec::External(periodic(100)),
            ActivationSpec::TaskOutput("t".into()),
        ]);
        assert!(!same_activation(&a, &c));
        assert!(!same_activation(
            &ActivationSpec::TaskOutput("t".into()),
            &ActivationSpec::FrameArrivals("t".into())
        ));
    }

    #[test]
    fn warm_chain_replays_clean_island() {
        let config = SystemConfig::new(AnalysisMode::Hierarchical);
        let spec = two_island_spec();
        let first = analyze_incremental(&spec, &config, None).unwrap();
        assert!(!first.reuse.warm);
        assert_eq!(first.reuse.fallback, Some(FallbackReason::NoSnapshot));
        assert!((first.reuse.cone_fraction() - 1.0).abs() < f64::EPSILON);
        let snapshot = first.snapshot.as_ref().expect("converged run snapshots");
        assert!(snapshot.iterations() >= 2);

        // Mutate island 0 only: island 1 replays.
        let mut mutated = spec.clone();
        mutated.tasks[0].wcet = Time::new(35);
        let second = analyze_incremental(&mutated, &config, Some(snapshot)).unwrap();
        assert!(second.reuse.warm);
        // t0 consumes F0 but feeds nothing back: only its CPU is dirty.
        assert_eq!(second.reuse.dirty_resources, ["cpu:cpu_a"]);
        assert!(second.reuse.replayed_results > 0);

        // Bit-identical to a from-scratch run of the mutated spec.
        let cold = crate::analyze_robust(&mutated, &config).unwrap();
        assert_eq!(
            second.analysis.results.response_times(),
            cold.results.response_times()
        );
        assert_eq!(
            second.analysis.diagnostics.iterations,
            cold.diagnostics.iterations
        );
        assert_eq!(second.analysis.diagnostics.trace, cold.diagnostics.trace);
    }

    #[test]
    fn config_change_falls_back() {
        let config = SystemConfig::new(AnalysisMode::Hierarchical);
        let spec = two_island_spec();
        let first = analyze_incremental(&spec, &config, None).unwrap();
        let snapshot = first.snapshot.as_ref().unwrap();
        let other = SystemConfig::new(AnalysisMode::Flat);
        let second = analyze_incremental(&spec, &other, Some(snapshot)).unwrap();
        assert!(!second.reuse.warm);
        assert_eq!(second.reuse.fallback, Some(FallbackReason::ConfigChanged));
    }
}
