//! Sensitivity analysis: how far can a parameter degrade before the
//! system stops being analysable?
//!
//! Integrators use CPA not only for verification but for dimensioning:
//! *how much execution-time budget is left for task X?* — *how slow may
//! the bus clock run?* This module answers both by exploiting the
//! monotonicity of busy-window analysis (increasing a WCET or a bit time
//! only increases demand, so feasibility is a monotone predicate and
//! binary search applies).

use hem_time::Time;

use crate::engine::analyze;
use crate::result::SystemConfig;
use crate::spec::SystemSpec;
use crate::SystemError;

/// Upper limit for sensitivity searches (beyond this the parameter is
/// considered unbounded for practical purposes).
const SEARCH_CAP: i64 = 1 << 32;

/// The largest WCET the named task can have while the whole system still
/// converges under `config`, or `None` if even doubling up to the search
/// cap stays feasible (the task is not the bottleneck).
///
/// The task's BCET is clamped to the probed WCET where necessary.
///
/// # Errors
///
/// * [`SystemError::UnknownReference`] if the task does not exist,
/// * any validation error of the base system,
/// * the base system itself not being schedulable is reported as the
///   underlying analysis error.
pub fn max_wcet(
    spec: &SystemSpec,
    task: &str,
    config: &SystemConfig,
) -> Result<Option<Time>, SystemError> {
    let idx = spec
        .tasks
        .iter()
        .position(|t| t.name == task)
        .ok_or_else(|| SystemError::UnknownReference {
            kind: "task",
            name: task.to_string(),
        })?;
    // The base system must be feasible to begin with.
    analyze(spec, config)?;
    let current = spec.tasks[idx].wcet;
    let feasible = |wcet: Time| -> bool {
        let mut probe = spec.clone();
        let t = &mut probe.tasks[idx];
        t.wcet = wcet;
        t.bcet = t.bcet.min(wcet);
        analyze(&probe, config).is_ok()
    };
    binary_search_max(current, feasible)
}

/// The remaining execution-time budget of a task: `max_wcet − wcet`, or
/// `None` when the budget is unbounded within the search cap.
///
/// # Errors
///
/// See [`max_wcet`].
pub fn wcet_slack(
    spec: &SystemSpec,
    task: &str,
    config: &SystemConfig,
) -> Result<Option<Time>, SystemError> {
    let current = spec
        .tasks
        .iter()
        .find(|t| t.name == task)
        .map(|t| t.wcet)
        .ok_or_else(|| SystemError::UnknownReference {
            kind: "task",
            name: task.to_string(),
        })?;
    Ok(max_wcet(spec, task, config)?.map(|m| m - current))
}

/// The largest bit time (slowest clock) the named bus can run at while
/// the system still converges, or `None` if unbounded within the cap.
///
/// # Errors
///
/// * [`SystemError::UnknownReference`] if the bus does not exist,
/// * the base system's own analysis error if it is infeasible already.
pub fn max_bit_time(
    spec: &SystemSpec,
    bus: &str,
    config: &SystemConfig,
) -> Result<Option<Time>, SystemError> {
    let idx = spec
        .buses
        .iter()
        .position(|b| b.name == bus)
        .ok_or_else(|| SystemError::UnknownReference {
            kind: "bus",
            name: bus.to_string(),
        })?;
    analyze(spec, config)?;
    let current = spec.buses[idx].config.bit_time;
    let feasible = |bit_time: Time| -> bool {
        let mut probe = spec.clone();
        probe.buses[idx].config = hem_can::CanBusConfig::new(bit_time);
        analyze(&probe, config).is_ok()
    };
    binary_search_max(current, feasible)
}

/// Largest feasible value ≥ `known_good` of a monotone predicate, or
/// `None` if the predicate holds all the way to [`SEARCH_CAP`].
fn binary_search_max(
    known_good: Time,
    feasible: impl Fn(Time) -> bool,
) -> Result<Option<Time>, SystemError> {
    debug_assert!(feasible(known_good), "base value must be feasible");
    // Exponential climb to bracket the boundary.
    let mut lo = known_good;
    let mut hi = (known_good * 2).max(Time::ONE);
    while feasible(hi) {
        lo = hi;
        hi = hi * 2;
        if hi.ticks() > SEARCH_CAP {
            return Ok(None);
        }
    }
    // Invariant: feasible(lo), !feasible(hi).
    while (hi - lo).ticks() > 1 {
        let mid = lo + (hi - lo) / 2;
        if feasible(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ActivationSpec, AnalysisMode, TaskSpec};
    use hem_analysis::Priority;
    use hem_event_models::{EventModelExt, StandardEventModel};

    fn cpu_only_spec(cets: &[i64], periods: &[i64]) -> SystemSpec {
        let mut spec = SystemSpec::new().cpu("cpu");
        for (i, (&c, &p)) in cets.iter().zip(periods).enumerate() {
            spec = spec.task(TaskSpec {
                name: format!("t{i}"),
                cpu: "cpu".into(),
                bcet: Time::new(c),
                wcet: Time::new(c),
                priority: Priority::new(i as u32),
                activation: ActivationSpec::External(
                    StandardEventModel::periodic(Time::new(p))
                        .expect("valid")
                        .shared(),
                ),
            });
        }
        spec
    }

    #[test]
    fn wcet_slack_of_low_priority_task() {
        // t0: 20/100, t1: 10/100 → t1 can grow until utilization hits 1
        // (minus busy-window integrality).
        let spec = cpu_only_spec(&[20, 10], &[100, 100]);
        let cfg = SystemConfig {
            local: hem_analysis::AnalysisConfig::with_max_busy_window(Time::new(200_000)),
            ..SystemConfig::new(AnalysisMode::Hierarchical)
        };
        let max = max_wcet(&spec, "t1", &cfg).unwrap().expect("bounded");
        // At wcet = 80 utilization is exactly 1 (schedulable boundary);
        // beyond that the busy window diverges.
        assert_eq!(max, Time::new(80));
        let slack = wcet_slack(&spec, "t1", &cfg).unwrap().expect("bounded");
        assert_eq!(slack, Time::new(70));
    }

    #[test]
    fn higher_priority_tasks_constrain_nothing_below_them() {
        // A single task alone can grow to its own period.
        let spec = cpu_only_spec(&[10], &[500]);
        let cfg = SystemConfig {
            local: hem_analysis::AnalysisConfig::with_max_busy_window(Time::new(500_000)),
            ..SystemConfig::new(AnalysisMode::Flat)
        };
        let max = max_wcet(&spec, "t0", &cfg).unwrap().expect("bounded");
        assert_eq!(max, Time::new(500));
    }

    #[test]
    fn unknown_task_rejected() {
        let spec = cpu_only_spec(&[10], &[100]);
        let cfg = SystemConfig::new(AnalysisMode::Flat);
        assert!(matches!(
            max_wcet(&spec, "ghost", &cfg).unwrap_err(),
            SystemError::UnknownReference { kind: "task", .. }
        ));
    }

    #[test]
    fn bus_bit_time_sensitivity() {
        use crate::spec::{FrameSpec, SignalSpec};
        use hem_autosar_com::{FrameType, TransferProperty};
        use hem_can::{CanBusConfig, FrameFormat};
        // One frame every 2000 ticks; 95 bits at bit time b occupy 95·b.
        // The receiver (CET 100, period ample) stays schedulable; the bus
        // saturates when 95·b approaches the frame period.
        let spec = SystemSpec::new()
            .cpu("cpu")
            .bus("can", CanBusConfig::new(Time::new(1)))
            .frame(FrameSpec {
                name: "F".into(),
                bus: "can".into(),
                frame_type: FrameType::Direct,
                payload_bytes: 4,
                format: FrameFormat::Standard,
                priority: Priority::new(1),
                signals: vec![SignalSpec {
                    name: "s".into(),
                    transfer: TransferProperty::Triggering,
                    source: ActivationSpec::External(
                        StandardEventModel::periodic(Time::new(2_000))
                            .expect("valid")
                            .shared(),
                    ),
                }],
            })
            .task(TaskSpec {
                name: "rx".into(),
                cpu: "cpu".into(),
                bcet: Time::new(100),
                wcet: Time::new(100),
                priority: Priority::new(1),
                activation: ActivationSpec::Signal {
                    frame: "F".into(),
                    signal: "s".into(),
                },
            });
        let cfg = SystemConfig {
            local: hem_analysis::AnalysisConfig::with_max_busy_window(Time::new(2_000_000)),
            ..SystemConfig::new(AnalysisMode::Hierarchical)
        };
        let max = max_bit_time(&spec, "can", &cfg).unwrap().expect("bounded");
        // 95 bits · 21 = 1995 ≤ 2000 < 95 · 22.
        assert_eq!(max, Time::new(21));
        assert!(matches!(
            max_bit_time(&spec, "nope", &cfg).unwrap_err(),
            SystemError::UnknownReference { kind: "bus", .. }
        ));
    }
}
