//! The global fixed-point iteration engine.
//!
//! Implements the compositional methodology described in §1 of the
//! paper: in each global iteration, local analysis is performed for each
//! component to derive response times and output event streams, which
//! are then propagated to connected components for the next iteration,
//! until the response times stop changing.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use hem_analysis::{
    spnp, spp, AnalysisConfig, AnalysisError, AnalysisTask, ResponseTime, TaskResult,
};
use hem_autosar_com::{ComFrame, Signal};
use hem_can::{BusFrame, CanFrameConfig};
use hem_core::HierarchicalEventModel;
use hem_event_models::ops::OutputModel;
use hem_event_models::{approx, CachedModel, EventModelExt, ModelRef};
use hem_obs::{BufferedRecorder, ConvergenceTrace, Counter, IterationSnapshot, RtBound};
use hem_time::Time;

use crate::diagnostics::{ConvergenceStatus, Diagnostics, StopReason};
use crate::graph::{Level, PropagationLevels};
use crate::pool::WorkerPool;
use crate::result::{signal_key, SystemConfig, SystemResults};
use crate::spec::{ActivationSpec, AnalysisMode, FrameSpec, SystemSpec, TaskSpec};
use crate::SystemError;

/// Runs the global compositional analysis of a system.
///
/// Iterates local analyses and output-stream propagation until all
/// response times reach a fixed point, then returns the per-task and
/// per-frame results together with the final event models.
///
/// # Errors
///
/// * [`SystemError::Duplicate`] / [`SystemError::UnknownReference`] /
///   [`SystemError::UnsupportedSpec`] for malformed descriptions,
/// * [`SystemError::DependencyCycle`] for unresolvable activation cycles,
/// * [`SystemError::Analysis`] when a local analysis diverges,
/// * [`SystemError::BudgetExhausted`] when the wall-clock budget in
///   `config.local.budget` expires first,
/// * [`SystemError::NoGlobalConvergence`] when response times keep
///   growing (the system is not schedulable) — either detected early by
///   the divergence heuristic (`config.divergence_streak`) or by running
///   out of `config.max_global_iterations`.
///
/// For a non-erroring API that keeps the partial results and explains
/// *what* diverged, use [`analyze_robust`].
pub fn analyze(spec: &SystemSpec, config: &SystemConfig) -> Result<SystemResults, SystemError> {
    match run(spec, config)? {
        RunOutcome::Converged { results, .. } => Ok(results),
        RunOutcome::Stopped { diagnostics, .. } => Err(match diagnostics.stop {
            StopReason::LocalAnalysisFailed { entity, error } => {
                if error.is_budget_exhausted() {
                    SystemError::BudgetExhausted {
                        entity: Some(entity),
                    }
                } else {
                    SystemError::Analysis(error)
                }
            }
            StopReason::BudgetExhausted => SystemError::BudgetExhausted { entity: None },
            _ => SystemError::NoGlobalConvergence {
                iterations: diagnostics.iterations,
            },
        }),
    }
}

/// The outcome of [`analyze_robust`]: results (partial if the analysis
/// did not converge) plus a structured post-mortem.
#[derive(Debug)]
pub struct RobustAnalysis {
    /// Analysis results. [`SystemResults::is_complete`] tells whether
    /// they are a converged fixed point or the salvage of an aborted
    /// run (response times then are lower bounds, not safe worst cases).
    pub results: SystemResults,
    /// Why and where the analysis stopped.
    pub diagnostics: Diagnostics,
}

/// Runs the global analysis, degrading gracefully instead of erroring.
///
/// Unlike [`analyze`], non-convergence — divergence, iteration limit,
/// or an exhausted [`AnalysisBudget`](hem_analysis::AnalysisBudget) —
/// is **not** an error: the work done so far is returned as partial
/// [`SystemResults`] (per-entity convergence status included) together
/// with [`Diagnostics`] naming the diverging entity, the last two
/// response-time vectors, and the suspected bottleneck resource.
///
/// # Errors
///
/// Only genuine spec problems still error: duplicate or dangling
/// references, unsupported constructs, dependency cycles, and invalid
/// CAN/COM/model configurations.
pub fn analyze_robust(
    spec: &SystemSpec,
    config: &SystemConfig,
) -> Result<RobustAnalysis, SystemError> {
    match run(spec, config)? {
        RunOutcome::Converged {
            results,
            diagnostics,
        } => Ok(RobustAnalysis {
            diagnostics,
            results,
        }),
        RunOutcome::Stopped {
            partial,
            diagnostics,
        } => Ok(RobustAnalysis {
            results: partial,
            diagnostics,
        }),
    }
}

pub(crate) enum RunOutcome {
    Converged {
        results: SystemResults,
        diagnostics: Diagnostics,
    },
    Stopped {
        partial: SystemResults,
        diagnostics: Diagnostics,
    },
}

/// Everything a converged run must record to seed a future warm start:
/// the per-iteration result trajectory and the keyed shared curve
/// caches of every iteration. Assembled into a
/// [`WarmStart`](crate::warm::WarmStart) by [`crate::warm`].
pub(crate) struct Capture {
    /// `(frame results, task results)` per completed global iteration.
    pub(crate) trajectory: Vec<(BTreeMap<String, TaskResult>, BTreeMap<String, TaskResult>)>,
    /// Keyed curve caches (`act:<task>` / `outer:<frame>`) per
    /// completed global iteration.
    pub(crate) caches: Vec<BTreeMap<String, Arc<CachedModel>>>,
}

/// The warm-start plan handed to the engine: which resources are
/// outside the damage cone (prefixed keys `bus:<b>` / `cpu:<c>`) and
/// the snapshot whose trajectory they replay.
pub(crate) struct EngineWarm<'w> {
    pub(crate) clean: HashSet<String>,
    pub(crate) snapshot: &'w crate::warm::WarmStart,
}

/// One iteration's view of the warm-start plan: the clean-resource set
/// plus the snapshot state replayed this iteration.
struct WarmIteration<'w> {
    clean: &'w HashSet<String>,
    frames: &'w BTreeMap<String, TaskResult>,
    tasks: &'w BTreeMap<String, TaskResult>,
}

/// Per-entity growth tracking across global iterations, feeding the
/// early divergence heuristic and the per-entity statuses.
#[derive(Debug, Clone, Copy, Default)]
struct Track {
    last: Option<ResponseTime>,
    last_increment: Option<Time>,
    /// Consecutive iterations with strictly growing r⁺ and
    /// non-shrinking increments. Converging propagation grows for a
    /// bounded number of steps with shrinking increments near the fixed
    /// point; sustained non-shrinking growth is the divergence
    /// signature.
    streak: u64,
    changed: bool,
}

impl Track {
    fn update(&mut self, rt: ResponseTime) {
        match self.last {
            Some(prev) if rt.r_plus > prev.r_plus => {
                let inc = rt.r_plus - prev.r_plus;
                if self.last_increment.is_none_or(|p| inc >= p) {
                    self.streak += 1;
                } else {
                    self.streak = 1;
                }
                self.last_increment = Some(inc);
                self.changed = true;
            }
            Some(prev) => {
                self.streak = 0;
                self.last_increment = None;
                self.changed = prev != rt;
            }
            None => {
                self.streak = u64::from(rt.r_plus > Time::ZERO);
                self.last_increment = None;
                self.changed = true;
            }
        }
        self.last = Some(rt);
    }

    fn status(&self, divergence_streak: u64) -> ConvergenceStatus {
        if divergence_streak > 0 && self.streak >= divergence_streak {
            ConvergenceStatus::Growing {
                streak: self.streak,
            }
        } else if self.changed {
            ConvergenceStatus::Unsettled
        } else {
            ConvergenceStatus::Converged
        }
    }
}

fn prefixed_rt(
    tasks: &BTreeMap<String, TaskResult>,
    frames: &BTreeMap<String, TaskResult>,
) -> BTreeMap<String, ResponseTime> {
    frames
        .iter()
        .map(|(k, v)| (format!("frame:{k}"), v.response))
        .chain(tasks.iter().map(|(k, v)| (format!("task:{k}"), v.response)))
        .collect()
}

/// The [`ConvergenceTrace`] snapshot of one completed global iteration.
fn rt_snapshot(iteration: u64, rts: &BTreeMap<String, ResponseTime>) -> IterationSnapshot {
    IterationSnapshot {
        iteration,
        response_times: rts
            .iter()
            .map(|(k, rt)| {
                (
                    k.clone(),
                    RtBound::new(rt.r_minus.ticks(), rt.r_plus.ticks()),
                )
            })
            .collect(),
    }
}

/// The resource hosting a prefixed entity (`task:x` → `cpu:…`,
/// `frame:x` → `bus:…`).
fn hosting_resource(spec: &SystemSpec, entity: &str) -> Option<String> {
    if let Some(task) = entity.strip_prefix("task:") {
        spec.tasks
            .iter()
            .find(|t| t.name == task)
            .map(|t| format!("cpu:{}", t.cpu))
    } else if let Some(frame) = entity.strip_prefix("frame:") {
        spec.frames
            .iter()
            .find(|f| f.name == frame)
            .map(|f| format!("bus:{}", f.bus))
    } else {
        None
    }
}

/// What one global iteration accumulates: per-frame and per-task
/// results, plus the number of per-entity analyses replayed from a
/// warm-start snapshot instead of being re-run.
#[derive(Default)]
struct IterationAccum {
    frames: BTreeMap<String, TaskResult>,
    tasks: BTreeMap<String, TaskResult>,
    replayed: u64,
}

/// One global iteration's local analyses, leveled and parallel.
///
/// Each level of the propagation graph first resolves sequentially
/// (activation models, packings, shared curve caches — always on the
/// calling thread, in spec order), then analyses every entity of the
/// level as an independent job on the pool. Results and recorder
/// signals are merged in canonical submission order, so the outcome is
/// bit-for-bit identical for every thread count.
///
/// With a warm plan, resources outside the damage cone skip Phase 2
/// (their busy-window jobs) and stage the snapshot's recorded results
/// instead; Phase 1 still runs for them, so resolution side effects
/// (packings, activation models, `packing_ops`) are identical to a
/// from-scratch run.
fn run_iteration(
    resolver: &mut Resolver<'_>,
    spec: &SystemSpec,
    config: &SystemConfig,
    levels: &PropagationLevels,
    pool: &WorkerPool,
    warm: Option<&WarmIteration<'_>>,
) -> Result<IterationAccum, IterationError> {
    let mut acc = IterationAccum::default();

    for level in &levels.levels {
        // Deadlines hold inside an iteration too: a warm-started run
        // replaying thousands of clean entities (or a cold run crawling
        // through many levels) polls the budget between levels, so
        // cancellation is cooperative at level granularity, not just
        // between global iterations.
        if config.local.budget.exhausted() {
            return Err(IterationError::Budget);
        }
        run_level(resolver, config, level, pool, warm, &mut acc)?;
    }

    // Resources in a resource-level dependency cycle: the lazy
    // sequential resolver reproduces exactly what the purely sequential
    // engine would report (usually a `DependencyCycle` naming the same
    // entity). Warm starts refuse cyclic systems, so this path never
    // replays.
    for frame in &spec.frames {
        if levels.cyclic_buses.contains(&frame.bus) {
            let result = resolver
                .frame_result(&frame.name)
                .map_err(|e| IterationError::classify(e, "frame"))?;
            acc.frames.insert(frame.name.clone(), result);
        }
    }
    for cpu in &levels.cyclic_cpus {
        let tasks = resolver
            .lower_cpu(cpu)
            .map_err(|e| IterationError::classify(e, "task"))?;
        for result in spp::analyze(&tasks, &config.local)
            .map_err(|e| IterationError::classify(SystemError::Analysis(e), "task"))?
        {
            acc.tasks.insert(result.name.clone(), result);
        }
    }
    Ok(acc)
}

/// A per-entity busy-window job submitted to the pool.
type EntityJob = Box<dyn FnOnce() -> Result<TaskResult, AnalysisError> + Send + 'static>;

/// The local analysis configuration of one job: when the recorder is
/// enabled, signals go to a private [`BufferedRecorder`] (registered in
/// `buffers`, drained in job order after the batch) so the recorder sees
/// the same signal sequence regardless of execution interleaving.
fn job_local(
    config: &SystemConfig,
    buffers: &mut Vec<Option<Arc<BufferedRecorder>>>,
) -> AnalysisConfig {
    let mut local = config.local.clone();
    if local.recorder.enabled() {
        let (buffer, handle) = BufferedRecorder::handle();
        buffers.push(Some(buffer));
        local.recorder = handle;
    } else {
        buffers.push(None);
    }
    local
}

/// Analyses one dependency-free level: sequential resolution, parallel
/// per-entity busy windows, deterministic merge.
fn run_level(
    resolver: &mut Resolver<'_>,
    config: &SystemConfig,
    level: &Level,
    pool: &WorkerPool,
    warm: Option<&WarmIteration<'_>>,
    acc: &mut IterationAccum,
) -> Result<(), IterationError> {
    let is_clean =
        |kind: &str, name: &str| warm.is_some_and(|w| w.clean.contains(&format!("{kind}:{name}")));

    // Phase 1 — sequential resolution. Clean resources resolve too:
    // their packings, activation models, and forked curve caches feed
    // dirty downstream entities, and the resolution side effects
    // (`packing_ops`) stay identical to a from-scratch run.
    let mut bus_sets = Vec::with_capacity(level.buses.len());
    for bus in &level.buses {
        let (names, tasks) = resolver
            .lower_bus(bus)
            .map_err(|e| IterationError::classify(e, "frame"))?;
        let clean = is_clean("bus", bus);
        bus_sets.push((bus.clone(), names, Arc::new(tasks), clean));
    }
    let mut cpu_sets = Vec::with_capacity(level.cpus.len());
    for cpu in &level.cpus {
        let tasks = resolver
            .lower_cpu(cpu)
            .map_err(|e| IterationError::classify(e, "task"))?;
        cpu_sets.push((Arc::new(tasks), is_clean("cpu", cpu)));
    }

    // Phase 2 — one busy-window job per entity, in canonical order:
    // every frame of every bus, then every task of every CPU. Entities
    // on clean resources submit no job — their results replay in
    // Phase 3.
    let mut jobs: Vec<EntityJob> = Vec::new();
    let mut buffers: Vec<Option<Arc<BufferedRecorder>>> = Vec::new();
    let mut kinds: Vec<&'static str> = Vec::new();
    for (_, names, tasks, clean) in &bus_sets {
        if *clean {
            continue;
        }
        for i in 0..names.len() {
            let local = job_local(config, &mut buffers);
            let tasks = tasks.clone();
            kinds.push("frame");
            jobs.push(Box::new(move || spnp::analyze_one(&tasks, i, &local)));
        }
    }
    for (tasks, clean) in &cpu_sets {
        if *clean {
            continue;
        }
        for i in 0..tasks.len() {
            let local = job_local(config, &mut buffers);
            let tasks = tasks.clone();
            kinds.push("task");
            jobs.push(Box::new(move || spp::analyze_one(&tasks, i, &local)));
        }
    }
    let outcomes = pool.run_batch(jobs);

    // Phase 3 — deterministic merge: every job of a started level has
    // completed; recorder signals replay in job order, and the
    // lowest-index failure (if any) is the one reported, independent of
    // which worker hit it first. Clean resources stage the snapshot's
    // recorded results in the same canonical positions.
    for buffer in buffers.iter().flatten() {
        buffer.drain_into(&config.local.recorder);
    }
    let mut results = outcomes.into_iter().zip(kinds);
    let mut first_err: Option<IterationError> = None;
    let record_err = |e: AnalysisError, kind: &'static str, slot: &mut Option<IterationError>| {
        if slot.is_none() {
            *slot = Some(IterationError::classify(SystemError::Analysis(e), kind));
        }
    };
    let mut hits = 0u64;
    let mut staged_buses: Vec<(String, BTreeMap<String, TaskResult>)> = Vec::new();
    for (bus, names, _, clean) in bus_sets {
        let mut map = BTreeMap::new();
        for name in names {
            if clean {
                let replay = warm.expect("clean flags imply a warm plan");
                let result = replay
                    .frames
                    .get(&name)
                    .expect("warm snapshot covers every frame of an unchanged topology");
                map.insert(name, result.clone());
                hits += 1;
                continue;
            }
            match results.next().expect("one outcome per frame job") {
                (Ok(result), _) => {
                    map.insert(name, result);
                }
                (Err(e), kind) => record_err(e, kind, &mut first_err),
            }
        }
        staged_buses.push((bus, map));
    }
    let mut staged_tasks: Vec<TaskResult> = Vec::new();
    for (tasks, clean) in &cpu_sets {
        if *clean {
            let replay = warm.expect("clean flags imply a warm plan");
            for task in tasks.iter() {
                let result = replay
                    .tasks
                    .get(&task.name)
                    .expect("warm snapshot covers every task of an unchanged topology");
                staged_tasks.push(result.clone());
                hits += 1;
            }
            continue;
        }
        for _ in 0..tasks.len() {
            match results.next().expect("one outcome per task job") {
                (Ok(result), _) => staged_tasks.push(result),
                (Err(e), kind) => record_err(e, kind, &mut first_err),
            }
        }
    }
    if hits > 0 {
        config.local.recorder.add(Counter::WarmStartHits, hits);
        acc.replayed += hits;
    }
    if let Some(err) = first_err {
        return Err(err);
    }
    for (bus, map) in staged_buses {
        for (name, result) in &map {
            acc.frames.insert(name.clone(), result.clone());
        }
        resolver.insert_bus_results(bus, map);
    }
    for result in staged_tasks {
        acc.tasks.insert(result.name.clone(), result);
    }
    Ok(())
}

enum IterationError {
    /// A local busy-window analysis aborted (divergence or budget): the
    /// run can degrade gracefully.
    Local {
        entity: String,
        error: AnalysisError,
    },
    /// The wall-clock budget expired between levels of an iteration
    /// (warm-start replays included): degrade gracefully with the last
    /// completed iteration's results.
    Budget,
    /// A hard spec/model error: propagate.
    Hard(SystemError),
}

impl IterationError {
    fn classify(e: SystemError, kind: &str) -> Self {
        match e {
            SystemError::Analysis(
                error @ (AnalysisError::NoConvergence { .. }
                | AnalysisError::BudgetExhausted { .. }),
            ) => {
                let name = match &error {
                    AnalysisError::NoConvergence { task, .. }
                    | AnalysisError::BudgetExhausted { task } => task.clone(),
                    AnalysisError::InvalidTaskSet(_) => unreachable!(),
                };
                IterationError::Local {
                    entity: format!("{kind}:{name}"),
                    error,
                }
            }
            other => IterationError::Hard(other),
        }
    }
}

fn run(spec: &SystemSpec, config: &SystemConfig) -> Result<RunOutcome, SystemError> {
    run_with(spec, config, None, false).map(|(outcome, _, _)| outcome)
}

/// The full engine loop, optionally replaying a warm-start plan and/or
/// capturing the run's trajectory for a future warm start.
///
/// Returns the outcome, the capture (`Some` only when `capture` is set
/// **and** the run converged — a stopped run's trajectory is not a
/// fixed point), and the total number of per-entity analyses replayed
/// from the snapshot.
pub(crate) fn run_with(
    spec: &SystemSpec,
    config: &SystemConfig,
    warm: Option<&EngineWarm<'_>>,
    capture: bool,
) -> Result<(RunOutcome, Option<Capture>, u64), SystemError> {
    validate(spec)?;
    // The propagation graph is a property of the topology, not of the
    // iteration state: level it once, spin the pool up once.
    let levels = PropagationLevels::of(spec);
    let pool = WorkerPool::new(config.resolved_threads());
    let started = Instant::now();
    let recorder = config.local.recorder.clone();
    let _run_span = recorder.span("analyze", "engine");
    let mut trace = ConvergenceTrace::new();
    let mut task_rt: BTreeMap<String, ResponseTime> = BTreeMap::new();
    let mut frame_rt: BTreeMap<String, ResponseTime> = BTreeMap::new();

    // Degradation state: last two completed response-time vectors, last
    // completed per-entity results, growth tracks, salvaged models.
    let mut prev_rt_vec: BTreeMap<String, ResponseTime> = BTreeMap::new();
    let mut last_rt_vec: BTreeMap<String, ResponseTime> = BTreeMap::new();
    let mut last_task_results: BTreeMap<String, TaskResult> = BTreeMap::new();
    let mut last_frame_results: BTreeMap<String, TaskResult> = BTreeMap::new();
    let mut tracks: BTreeMap<String, Track> = BTreeMap::new();
    let mut salvaged_activations: BTreeMap<String, ModelRef> = BTreeMap::new();
    let mut salvaged_frame_inputs: BTreeMap<String, ModelRef> = BTreeMap::new();
    let mut completed = 0u64;
    let mut captured = capture.then(|| Capture {
        trajectory: Vec::new(),
        caches: Vec::new(),
    });
    let mut replayed_total = 0u64;

    let stopped = |stop: StopReason,
                   completed: u64,
                   trace: ConvergenceTrace,
                   tracks: &BTreeMap<String, Track>,
                   last_task_results: BTreeMap<String, TaskResult>,
                   last_frame_results: BTreeMap<String, TaskResult>,
                   last_rt_vec: BTreeMap<String, ResponseTime>,
                   prev_rt_vec: BTreeMap<String, ResponseTime>,
                   salvaged_activations: BTreeMap<String, ModelRef>,
                   salvaged_frame_inputs: BTreeMap<String, ModelRef>| {
        let failed_entity = match &stop {
            StopReason::LocalAnalysisFailed { entity, .. } => Some(entity.clone()),
            _ => None,
        };
        let status_of = |key: &str, name: &str, results: &BTreeMap<String, TaskResult>| {
            if failed_entity.as_deref() == Some(key) {
                ConvergenceStatus::Failed
            } else if let Some(track) = tracks.get(key) {
                track.status(config.divergence_streak)
            } else if results.contains_key(name) {
                ConvergenceStatus::Unsettled
            } else {
                ConvergenceStatus::Unknown
            }
        };
        let task_convergence: BTreeMap<String, ConvergenceStatus> = spec
            .tasks
            .iter()
            .map(|t| {
                let key = format!("task:{}", t.name);
                (t.name.clone(), status_of(&key, &t.name, &last_task_results))
            })
            .collect();
        let frame_convergence: BTreeMap<String, ConvergenceStatus> = spec
            .frames
            .iter()
            .map(|f| {
                let key = format!("frame:{}", f.name);
                (
                    f.name.clone(),
                    status_of(&key, &f.name, &last_frame_results),
                )
            })
            .collect();
        let mut diverging: Vec<(u64, String)> = tracks
            .iter()
            .filter(|(_, t)| config.divergence_streak > 0 && t.streak >= config.divergence_streak)
            .map(|(k, t)| (t.streak, k.clone()))
            .collect();
        diverging.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let diverging: Vec<String> = diverging.into_iter().map(|(_, k)| k).collect();
        let suspect = failed_entity
            .clone()
            .or_else(|| match &stop {
                StopReason::DivergenceDetected { entity, .. } => Some(entity.clone()),
                _ => None,
            })
            .or_else(|| diverging.first().cloned());
        let suspected_bottleneck = suspect.and_then(|e| hosting_resource(spec, &e));
        RunOutcome::Stopped {
            partial: SystemResults {
                mode: config.mode,
                iterations: completed,
                complete: false,
                task_results: last_task_results,
                frame_results: last_frame_results,
                task_convergence,
                frame_convergence,
                task_activations: salvaged_activations,
                frame_inputs: salvaged_frame_inputs,
                frame_outputs: BTreeMap::new(),
                unpacked_signals: BTreeMap::new(),
            },
            diagnostics: Diagnostics {
                stop,
                iterations: completed,
                elapsed: started.elapsed(),
                trace,
                diverging,
                last_response_times: last_rt_vec,
                previous_response_times: prev_rt_vec,
                suspected_bottleneck,
            },
        }
    };

    for iteration in 1..=config.max_global_iterations {
        if config.local.budget.exhausted() {
            return Ok((
                stopped(
                    StopReason::BudgetExhausted,
                    completed,
                    trace,
                    &tracks,
                    last_task_results,
                    last_frame_results,
                    last_rt_vec,
                    prev_rt_vec,
                    salvaged_activations,
                    salvaged_frame_inputs,
                ),
                None,
                replayed_total,
            ));
        }
        let iter_span = recorder.span("global_iteration", "engine");
        let replay = warm.map(|w| (w, w.snapshot.replay(iteration)));
        let mut resolver = Resolver::new(
            spec,
            config,
            &task_rt,
            replay.as_ref().map(|(w, _)| &w.clean),
            replay.as_ref().map(|(_, r)| r.caches),
        );
        let warm_iter = replay.as_ref().map(|(w, r)| WarmIteration {
            clean: &w.clean,
            frames: r.frames,
            tasks: r.tasks,
        });
        let iteration_outcome = run_iteration(
            &mut resolver,
            spec,
            config,
            &levels,
            &pool,
            warm_iter.as_ref(),
        );
        // Flush the shared curve caches' buffered hit/miss counters at a
        // deterministic point, in cache-creation order — never from a
        // worker or a late `Drop`.
        resolver.flush_caches();
        drop(iter_span);
        let acc = match iteration_outcome {
            Ok(acc) => acc,
            Err(IterationError::Hard(e)) => return Err(e),
            Err(IterationError::Budget) => {
                return Ok((
                    stopped(
                        StopReason::BudgetExhausted,
                        completed,
                        trace,
                        &tracks,
                        last_task_results,
                        last_frame_results,
                        last_rt_vec,
                        prev_rt_vec,
                        salvaged_activations,
                        salvaged_frame_inputs,
                    ),
                    None,
                    replayed_total,
                ));
            }
            Err(IterationError::Local { entity, error }) => {
                return Ok((
                    stopped(
                        StopReason::LocalAnalysisFailed { entity, error },
                        completed,
                        trace,
                        &tracks,
                        last_task_results,
                        last_frame_results,
                        last_rt_vec,
                        prev_rt_vec,
                        salvaged_activations,
                        salvaged_frame_inputs,
                    ),
                    None,
                    replayed_total,
                ));
            }
        };
        let IterationAccum {
            frames: new_frame_results,
            tasks: new_task_results,
            replayed,
        } = acc;
        completed = iteration;
        replayed_total += replayed;
        recorder.add(Counter::GlobalIterations, 1);
        if let Some(cap) = captured.as_mut() {
            cap.trajectory
                .push((new_frame_results.clone(), new_task_results.clone()));
            cap.caches.push(resolver.keyed_caches());
        }

        let new_task_rt: BTreeMap<String, ResponseTime> = new_task_results
            .iter()
            .map(|(k, v)| (k.clone(), v.response))
            .collect();
        let new_frame_rt: BTreeMap<String, ResponseTime> = new_frame_results
            .iter()
            .map(|(k, v)| (k.clone(), v.response))
            .collect();

        let new_rt_vec = prefixed_rt(&new_task_results, &new_frame_results);
        trace.push(rt_snapshot(iteration, &new_rt_vec));

        if new_task_rt == task_rt && new_frame_rt == frame_rt {
            // Fixed point: assemble results from the final resolver state.
            let mut task_activations = BTreeMap::new();
            for t in &spec.tasks {
                task_activations.insert(t.name.clone(), resolver.task_activation(&t.name)?);
            }
            let mut frame_inputs = BTreeMap::new();
            let mut frame_outputs = BTreeMap::new();
            let mut unpacked_signals = BTreeMap::new();
            for f in &spec.frames {
                frame_inputs.insert(f.name.clone(), resolver.analysis_outer(&f.name)?);
                frame_outputs.insert(f.name.clone(), resolver.frame_output(&f.name)?);
                if config.mode == AnalysisMode::Hierarchical {
                    let processed = resolver.processed_hem(&f.name)?;
                    for s in &f.signals {
                        if let Some(m) = processed.unpack_by_name(&s.name) {
                            unpacked_signals.insert(signal_key(&f.name, &s.name), m);
                        }
                    }
                }
            }
            // Assembly may have touched caches (e.g. a frame no task
            // consumes): flush again before the results escape.
            resolver.flush_caches();
            let task_convergence = spec
                .tasks
                .iter()
                .map(|t| (t.name.clone(), ConvergenceStatus::Converged))
                .collect();
            let frame_convergence = spec
                .frames
                .iter()
                .map(|f| (f.name.clone(), ConvergenceStatus::Converged))
                .collect();
            let diagnostics = Diagnostics {
                stop: StopReason::Converged,
                iterations: iteration,
                elapsed: started.elapsed(),
                trace,
                diverging: Vec::new(),
                last_response_times: new_rt_vec,
                previous_response_times: last_rt_vec,
                suspected_bottleneck: None,
            };
            return Ok((
                RunOutcome::Converged {
                    results: SystemResults {
                        mode: config.mode,
                        iterations: iteration,
                        complete: true,
                        task_results: new_task_results,
                        frame_results: new_frame_results,
                        task_convergence,
                        frame_convergence,
                        task_activations,
                        frame_inputs,
                        frame_outputs,
                        unpacked_signals,
                    },
                    diagnostics,
                },
                captured,
                replayed_total,
            ));
        }

        // Track growth and detect sustained divergence early.
        for (key, rt) in &new_rt_vec {
            tracks.entry(key.clone()).or_default().update(*rt);
        }
        prev_rt_vec = std::mem::replace(&mut last_rt_vec, new_rt_vec);
        last_task_results = new_task_results;
        last_frame_results = new_frame_results;
        salvaged_activations = resolver
            .task_activation
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        salvaged_frame_inputs = resolver
            .analysis_outer
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        if config.divergence_streak > 0 {
            if let Some((key, track)) = tracks
                .iter()
                .filter(|(_, t)| t.streak >= config.divergence_streak)
                .max_by_key(|(_, t)| t.streak)
            {
                let stop = StopReason::DivergenceDetected {
                    entity: key.clone(),
                    streak: track.streak,
                };
                return Ok((
                    stopped(
                        stop,
                        completed,
                        trace,
                        &tracks,
                        last_task_results,
                        last_frame_results,
                        last_rt_vec,
                        prev_rt_vec,
                        salvaged_activations,
                        salvaged_frame_inputs,
                    ),
                    None,
                    replayed_total,
                ));
            }
        }

        task_rt = new_task_rt;
        frame_rt = new_frame_rt;
    }
    Ok((
        stopped(
            StopReason::IterationLimitReached,
            completed,
            trace,
            &tracks,
            last_task_results,
            last_frame_results,
            last_rt_vec,
            prev_rt_vec,
            salvaged_activations,
            salvaged_frame_inputs,
        ),
        None,
        replayed_total,
    ))
}

/// Per-iteration lazy evaluator with memoization and cycle detection.
struct Resolver<'a> {
    spec: &'a SystemSpec,
    config: &'a SystemConfig,
    prev_task_rt: &'a BTreeMap<String, ResponseTime>,
    tasks: HashMap<&'a str, &'a TaskSpec>,
    frames: HashMap<&'a str, &'a FrameSpec>,
    task_activation: HashMap<String, ModelRef>,
    packed: HashMap<String, HierarchicalEventModel>,
    analysis_outer: HashMap<String, ModelRef>,
    processed: HashMap<String, HierarchicalEventModel>,
    bus_results: HashMap<String, BTreeMap<String, TaskResult>>,
    visiting: HashSet<String>,
    /// Every shared curve cache created this iteration, keyed
    /// (`act:<task>` / `outer:<frame>`), in creation order — the engine
    /// flushes their buffered hit/miss counters at deterministic points
    /// and captures them for warm-start reuse.
    caches: Vec<(String, Arc<CachedModel>)>,
    /// Resources outside the damage cone of a warm-started run.
    warm_clean: Option<&'a HashSet<String>>,
    /// The snapshot's keyed curve caches for this iteration, forked
    /// into clean entities' caches so memoized curve points carry over.
    warm_caches: Option<&'a BTreeMap<String, Arc<CachedModel>>>,
    /// Whether resolved models are swapped for closed-form analytic
    /// curves (resolved once per iteration from the config).
    analytic: bool,
}

impl<'a> Resolver<'a> {
    fn new(
        spec: &'a SystemSpec,
        config: &'a SystemConfig,
        prev_task_rt: &'a BTreeMap<String, ResponseTime>,
        warm_clean: Option<&'a HashSet<String>>,
        warm_caches: Option<&'a BTreeMap<String, Arc<CachedModel>>>,
    ) -> Self {
        Resolver {
            spec,
            config,
            prev_task_rt,
            tasks: spec.tasks.iter().map(|t| (t.name.as_str(), t)).collect(),
            frames: spec.frames.iter().map(|f| (f.name.as_str(), f)).collect(),
            task_activation: HashMap::new(),
            packed: HashMap::new(),
            analysis_outer: HashMap::new(),
            processed: HashMap::new(),
            bus_results: HashMap::new(),
            visiting: HashSet::new(),
            caches: Vec::new(),
            warm_clean,
            warm_caches,
            analytic: config.analytic_enabled(),
        }
    }

    /// Swaps `model` for its closed-form analytic curve when an exact
    /// lift exists (see `docs/CURVES.md`). Results are bit-for-bit
    /// identical either way — the lift only changes how queries are
    /// answered. Runs during sequential resolution, so the lift /
    /// fallback tallies are deterministic at every thread count. The
    /// returned flag says whether the swap happened, so call sites can
    /// skip the memoizing cache wrapper: a curve already answers every
    /// query with an O(1) head lookup, and a hash-and-lock layer on top
    /// of that only costs time.
    fn analytic_lift(&self, model: ModelRef) -> (ModelRef, bool) {
        if !self.analytic {
            return (model, false);
        }
        let recorder = &self.config.local.recorder;
        match model.analytic() {
            Some(curve) => {
                recorder.add(Counter::AnalyticLifts, 1);
                (curve.shared(), true)
            }
            None => {
                recorder.add(Counter::AnalyticFallbacks, 1);
                (model, false)
            }
        }
    }

    /// Registers a shared curve cache for the deterministic counter
    /// flush (and warm-start capture) and returns it as a model.
    fn cache(&mut self, key: String, cached: CachedModel) -> ModelRef {
        let cached = Arc::new(cached);
        self.caches.push((key, cached.clone()));
        cached
    }

    /// The snapshot's cache for `key`, but only when `resource` is
    /// outside the damage cone — a dirty entity's memoized curve points
    /// may describe the wrong model.
    fn retained(&self, key: &str, resource: &str) -> Option<&Arc<CachedModel>> {
        let clean = self.warm_clean?;
        if !clean.contains(resource) {
            return None;
        }
        self.warm_caches?.get(key)
    }

    /// Flushes every curve cache's buffered hit/miss counters to the
    /// recorder, in cache-creation order.
    fn flush_caches(&self) {
        for (_, cache) in &self.caches {
            cache.flush_recorded();
        }
    }

    /// This iteration's curve caches, keyed, for warm-start capture.
    fn keyed_caches(&self) -> BTreeMap<String, Arc<CachedModel>> {
        self.caches.iter().cloned().collect()
    }

    /// The frame-activation stream as the bus analysis sees it: the
    /// packed outer stream, SEM-fitted under [`AnalysisMode::FlatSem`].
    fn analysis_outer(&mut self, name: &str) -> Result<ModelRef, SystemError> {
        if let Some(m) = self.analysis_outer.get(name) {
            return Ok(m.clone());
        }
        let outer = self.packed_hem(name)?.flatten();
        let (outer, lifted) = self.analytic_lift(outer);
        let model = match self.config.mode {
            // Lifted streams skip the cache: every query is already an
            // O(1) lookup. Busy-window iterations hammer the same
            // η⁺/δ⁻ queries on the lazy OR-join: memoize. On a warm
            // start, a clean frame's cache carries the snapshot's
            // memoized curve points over (forked onto this iteration's
            // model so misses evaluate fresh state).
            AnalysisMode::Flat | AnalysisMode::Hierarchical if lifted => outer,
            AnalysisMode::Flat | AnalysisMode::Hierarchical => {
                let recorder = self.config.local.recorder.clone();
                let cache_key = format!("outer:{name}");
                let resource = self
                    .frames
                    .get(name)
                    .map(|f| format!("bus:{}", f.bus))
                    .unwrap_or_default();
                let cached = match self.retained(&cache_key, &resource) {
                    Some(prev) => prev.fork_onto(outer, recorder),
                    None => CachedModel::recorded(outer, recorder),
                };
                self.cache(cache_key, cached)
            }
            AnalysisMode::FlatSem => {
                approx::sem_approximation(outer.as_ref(), self.config.sem_fit_horizon)?.shared()
            }
        };
        self.analysis_outer.insert(name.to_string(), model.clone());
        Ok(model)
    }

    fn prev_rt(&self, task: &str) -> ResponseTime {
        self.prev_task_rt
            .get(task)
            .copied()
            .unwrap_or(ResponseTime::new(Time::ZERO, Time::ZERO))
    }

    fn enter(&mut self, key: String) -> Result<String, SystemError> {
        if !self.visiting.insert(key.clone()) {
            return Err(SystemError::DependencyCycle {
                name: key
                    .split_once(':')
                    .map(|(_, n)| n.to_string())
                    .unwrap_or(key),
            });
        }
        Ok(key)
    }

    fn resolve_source(&mut self, source: &ActivationSpec) -> Result<ModelRef, SystemError> {
        match source {
            ActivationSpec::External(model) => Ok(model.clone()),
            ActivationSpec::TaskOutput(task) => {
                let input = self.task_activation(task)?;
                let rt = self.prev_rt(task);
                Ok(OutputModel::new(input, rt.r_minus, rt.r_plus)?.shared())
            }
            ActivationSpec::Signal { frame, signal } => match self.config.mode {
                AnalysisMode::Hierarchical => {
                    let processed = self.processed_hem(frame)?;
                    let unpacked = processed.unpack_by_name(signal).ok_or_else(|| {
                        SystemError::UnknownReference {
                            kind: "signal",
                            name: signal_key(frame, signal),
                        }
                    })?;
                    Ok(if self.config.tighten_inner {
                        hem_event_models::ops::AdditiveClosure::new(unpacked).shared()
                    } else {
                        unpacked
                    })
                }
                AnalysisMode::Flat | AnalysisMode::FlatSem => self.frame_output(frame),
            },
            ActivationSpec::FrameArrivals(frame) => self.frame_output(frame),
            ActivationSpec::AnyOf(sources) => {
                let models = sources
                    .iter()
                    .map(|s| self.resolve_source(s))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(hem_event_models::ops::OrJoin::new(models)?.shared())
            }
            ActivationSpec::AllOf(sources) => {
                let models = sources
                    .iter()
                    .map(|s| self.resolve_source(s))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(hem_event_models::ops::AndJoin::new(models)?.shared())
            }
        }
    }

    fn task_activation(&mut self, name: &str) -> Result<ModelRef, SystemError> {
        if let Some(m) = self.task_activation.get(name) {
            return Ok(m.clone());
        }
        let task = *self.tasks.get(name).ok_or(SystemError::UnknownReference {
            kind: "task",
            name: name.to_string(),
        })?;
        let key = self.enter(format!("task:{name}"))?;
        let activation = task.activation.clone();
        let resource = format!("cpu:{}", task.cpu);
        // Memoized: CPU busy windows evaluate the activation stream many
        // times per fixed-point iteration. On a warm start, a clean
        // task's cache carries the snapshot's memoized curve points
        // over. Resolution still runs either way — its side effects
        // (packings, `packing_ops`) must match a from-scratch run.
        let resolved = self.resolve_source(&activation)?;
        let (resolved, lifted) = self.analytic_lift(resolved);
        let model = if lifted {
            // O(1) curve queries: a memoizing wrapper would only add
            // hash-and-lock overhead on top of a head lookup.
            resolved
        } else {
            let recorder = self.config.local.recorder.clone();
            let cache_key = format!("act:{name}");
            let cached = match self.retained(&cache_key, &resource) {
                Some(prev) => prev.fork_onto(resolved, recorder),
                None => CachedModel::recorded(resolved, recorder),
            };
            self.cache(cache_key, cached)
        };
        self.visiting.remove(&key);
        self.task_activation.insert(name.to_string(), model.clone());
        Ok(model)
    }

    fn packed_hem(&mut self, name: &str) -> Result<HierarchicalEventModel, SystemError> {
        if let Some(h) = self.packed.get(name) {
            return Ok(h.clone());
        }
        let frame = *self.frames.get(name).ok_or(SystemError::UnknownReference {
            kind: "frame",
            name: name.to_string(),
        })?;
        let key = self.enter(format!("frame:{name}"))?;
        let mut signals = Vec::with_capacity(frame.signals.len());
        for s in &frame.signals {
            let model = self.resolve_source(&s.source)?;
            signals.push(Signal::new(s.name.clone(), model, s.transfer));
        }
        let com = ComFrame::new(
            frame.name.clone(),
            frame.frame_type,
            frame.payload_bytes,
            signals,
        )?;
        let hem = com.packed()?;
        self.config.local.recorder.add(Counter::PackingOps, 1);
        self.visiting.remove(&key);
        self.packed.insert(name.to_string(), hem.clone());
        Ok(hem)
    }

    /// Lowers every frame on `bus` to its generic analysis task (in
    /// spec order), resolving packings and outer streams. Returns the
    /// frame names alongside: `names[i]` describes `tasks[i]`.
    fn lower_bus(&mut self, bus: &str) -> Result<(Vec<String>, Vec<AnalysisTask>), SystemError> {
        let bus_config = self
            .spec
            .buses
            .iter()
            .find(|b| b.name == bus)
            .map(|b| b.config)
            .ok_or_else(|| SystemError::UnknownReference {
                kind: "bus",
                name: bus.to_string(),
            })?;
        let on_bus: Vec<&FrameSpec> = self.spec.frames.iter().filter(|f| f.bus == bus).collect();
        let mut bus_frames = Vec::with_capacity(on_bus.len());
        for f in &on_bus {
            let outer = self.analysis_outer(&f.name)?;
            bus_frames.push(BusFrame::new(
                f.name.clone(),
                CanFrameConfig::new(f.format, f.payload_bytes)?,
                f.priority,
                outer,
            ));
        }
        let names = on_bus.iter().map(|f| f.name.clone()).collect();
        Ok((names, hem_can::bus::lower(&bus_frames, &bus_config)))
    }

    /// Lowers every task on `cpu` to its generic analysis task (in spec
    /// order), resolving activation models.
    fn lower_cpu(&mut self, cpu: &str) -> Result<Vec<AnalysisTask>, SystemError> {
        let on_cpu: Vec<&TaskSpec> = self.spec.tasks.iter().filter(|t| t.cpu == cpu).collect();
        on_cpu
            .iter()
            .map(|t| {
                let input = self.task_activation(&t.name)?;
                Ok(AnalysisTask::new(
                    t.name.clone(),
                    t.bcet,
                    t.wcet,
                    t.priority,
                    input,
                ))
            })
            .collect()
    }

    /// Commits a bus's per-frame results (computed by a level's jobs)
    /// so downstream `frame_result` / `processed_hem` calls see them.
    fn insert_bus_results(&mut self, bus: String, results: BTreeMap<String, TaskResult>) {
        self.bus_results.insert(bus, results);
    }

    /// A frame's bus-analysis result, lazily running the whole bus
    /// sequentially when no level committed it — the fallback path for
    /// resources in a dependency cycle (where it reproduces the purely
    /// sequential engine's behaviour, cycle errors included).
    fn frame_result(&mut self, name: &str) -> Result<TaskResult, SystemError> {
        let bus = self
            .frames
            .get(name)
            .ok_or(SystemError::UnknownReference {
                kind: "frame",
                name: name.to_string(),
            })?
            .bus
            .clone();
        if !self.bus_results.contains_key(&bus) {
            let (_, tasks) = self.lower_bus(&bus)?;
            let results = spnp::analyze(&tasks, &self.config.local)?;
            let map: BTreeMap<String, TaskResult> =
                results.into_iter().map(|r| (r.name.clone(), r)).collect();
            self.bus_results.insert(bus.clone(), map);
        }
        Ok(self.bus_results[&bus][name].clone())
    }

    fn processed_hem(&mut self, name: &str) -> Result<HierarchicalEventModel, SystemError> {
        if let Some(h) = self.processed.get(name) {
            return Ok(h.clone());
        }
        let rt = self.frame_result(name)?.response;
        let hem = self.packed_hem(name)?;
        let processed = hem.process(rt.r_minus, rt.r_plus)?;
        self.processed.insert(name.to_string(), processed.clone());
        Ok(processed)
    }

    fn frame_output(&mut self, name: &str) -> Result<ModelRef, SystemError> {
        match self.config.mode {
            AnalysisMode::Flat | AnalysisMode::Hierarchical => {
                Ok(self.processed_hem(name)?.flatten())
            }
            AnalysisMode::FlatSem => {
                // Propagate the SEM-fitted outer stream through the bus.
                let rt = self.frame_result(name)?.response;
                let outer = self.analysis_outer(name)?;
                Ok(OutputModel::new(outer, rt.r_minus, rt.r_plus)?.shared())
            }
        }
    }
}

pub(crate) fn validate(spec: &SystemSpec) -> Result<(), SystemError> {
    fn check_unique<'n>(
        kind: &'static str,
        names: impl Iterator<Item = &'n str>,
    ) -> Result<(), SystemError> {
        let mut seen = HashSet::new();
        for n in names {
            if !seen.insert(n) {
                return Err(SystemError::Duplicate {
                    kind,
                    name: n.to_string(),
                });
            }
        }
        Ok(())
    }
    check_unique("cpu", spec.cpus.iter().map(|c| c.name.as_str()))?;
    check_unique("bus", spec.buses.iter().map(|b| b.name.as_str()))?;
    check_unique("task", spec.tasks.iter().map(|t| t.name.as_str()))?;
    check_unique("frame", spec.frames.iter().map(|f| f.name.as_str()))?;

    let cpus: HashSet<&str> = spec.cpus.iter().map(|c| c.name.as_str()).collect();
    let buses: HashSet<&str> = spec.buses.iter().map(|b| b.name.as_str()).collect();
    let tasks: HashSet<&str> = spec.tasks.iter().map(|t| t.name.as_str()).collect();
    let frames: HashMap<&str, &FrameSpec> =
        spec.frames.iter().map(|f| (f.name.as_str(), f)).collect();

    fn check_ref_impl(
        source: &ActivationSpec,
        tasks: &HashSet<&str>,
        frames: &HashMap<&str, &FrameSpec>,
    ) -> Result<(), SystemError> {
        match source {
            ActivationSpec::External(_) => Ok(()),
            ActivationSpec::TaskOutput(t) => {
                if tasks.contains(t.as_str()) {
                    Ok(())
                } else {
                    Err(SystemError::UnknownReference {
                        kind: "task",
                        name: t.clone(),
                    })
                }
            }
            ActivationSpec::Signal { frame, signal } => {
                let f =
                    frames
                        .get(frame.as_str())
                        .ok_or_else(|| SystemError::UnknownReference {
                            kind: "frame",
                            name: frame.clone(),
                        })?;
                if f.signals.iter().any(|s| &s.name == signal) {
                    Ok(())
                } else {
                    Err(SystemError::UnknownReference {
                        kind: "signal",
                        name: signal_key(frame, signal),
                    })
                }
            }
            ActivationSpec::FrameArrivals(frame) => {
                if frames.contains_key(frame.as_str()) {
                    Ok(())
                } else {
                    Err(SystemError::UnknownReference {
                        kind: "frame",
                        name: frame.clone(),
                    })
                }
            }
            ActivationSpec::AnyOf(sources) | ActivationSpec::AllOf(sources) => {
                if sources.is_empty() {
                    return Err(SystemError::UnsupportedSpec(
                        "composite activation with no sources".into(),
                    ));
                }
                sources
                    .iter()
                    .try_for_each(|s| check_ref_impl(s, tasks, frames))
            }
        }
    }
    let check_ref = |source: &ActivationSpec| -> Result<(), SystemError> {
        check_ref_impl(source, &tasks, &frames)
    };

    for t in &spec.tasks {
        if !cpus.contains(t.cpu.as_str()) {
            return Err(SystemError::UnknownReference {
                kind: "cpu",
                name: t.cpu.clone(),
            });
        }
        check_ref(&t.activation)?;
    }
    for f in &spec.frames {
        if !buses.contains(f.bus.as_str()) {
            return Err(SystemError::UnknownReference {
                kind: "bus",
                name: f.bus.clone(),
            });
        }
        // Frames must not be packed from other frames directly: route such
        // gateway traffic through a task.
        fn check_signal_source(
            source: &ActivationSpec,
            signal: &str,
            frame: &str,
            tasks: &HashSet<&str>,
        ) -> Result<(), SystemError> {
            match source {
                ActivationSpec::External(_) => Ok(()),
                ActivationSpec::TaskOutput(t) => {
                    if tasks.contains(t.as_str()) {
                        Ok(())
                    } else {
                        Err(SystemError::UnknownReference {
                            kind: "task",
                            name: t.clone(),
                        })
                    }
                }
                ActivationSpec::Signal { .. } | ActivationSpec::FrameArrivals(_) => {
                    Err(SystemError::UnsupportedSpec(format!(
                        "signal `{signal}` of frame `{frame}` is sourced from a frame; \
                         route it through a gateway task"
                    )))
                }
                ActivationSpec::AnyOf(sources) | ActivationSpec::AllOf(sources) => sources
                    .iter()
                    .try_for_each(|s| check_signal_source(s, signal, frame, tasks)),
            }
        }
        for s in &f.signals {
            check_signal_source(&s.source, &s.name, &f.name, &tasks)?;
        }
        // Eagerly validate the wire format.
        CanFrameConfig::new(f.format, f.payload_bytes)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SignalSpec, SystemSpec, TaskSpec};
    use hem_analysis::Priority;
    use hem_autosar_com::{FrameType, TransferProperty};
    use hem_can::{CanBusConfig, FrameFormat};
    use hem_event_models::{EventModel, StandardEventModel};

    fn periodic(p: i64) -> ModelRef {
        StandardEventModel::periodic(Time::new(p)).unwrap().shared()
    }

    fn simple_task(name: &str, cpu: &str, cet: i64, prio: u32, act: ActivationSpec) -> TaskSpec {
        TaskSpec {
            name: name.into(),
            cpu: cpu.into(),
            bcet: Time::new(cet),
            wcet: Time::new(cet),
            priority: Priority::new(prio),
            activation: act,
        }
    }

    /// A minimal distributed system: one source → frame → bus → task.
    fn mini_system() -> SystemSpec {
        SystemSpec::new()
            .cpu("cpu0")
            .bus("can0", CanBusConfig::new(Time::new(1)))
            .frame(FrameSpec {
                name: "F".into(),
                bus: "can0".into(),
                frame_type: FrameType::Direct,
                payload_bytes: 4,
                format: FrameFormat::Standard,
                priority: Priority::new(1),
                signals: vec![SignalSpec {
                    name: "s".into(),
                    transfer: TransferProperty::Triggering,
                    source: ActivationSpec::External(periodic(500)),
                }],
            })
            .task(simple_task(
                "rx",
                "cpu0",
                30,
                1,
                ActivationSpec::Signal {
                    frame: "F".into(),
                    signal: "s".into(),
                },
            ))
    }

    #[test]
    fn mini_system_converges() {
        let r = analyze(
            &mini_system(),
            &SystemConfig::new(AnalysisMode::Hierarchical),
        )
        .unwrap();
        // Frame: sole frame on the bus, 95 bits, no blocking.
        assert_eq!(r.frame("F").unwrap().response.r_plus, Time::new(95));
        assert_eq!(r.frame("F").unwrap().response.r_minus, Time::new(79));
        // Task: single task on the CPU.
        assert_eq!(r.task("rx").unwrap().response.r_plus, Time::new(30));
        assert!(r.iterations() >= 2);
        // The unpacked signal reflects bus jitter: 500 − (95 − 79) = 484.
        let s = r.unpacked_signal("F", "s").unwrap();
        assert_eq!(s.delta_min(2), Time::new(484));
        // Frame output accessor present.
        assert!(r.frame_output("F").is_some());
        assert!(r.task_activation("rx").is_some());
        assert_eq!(r.mode(), AnalysisMode::Hierarchical);
    }

    #[test]
    fn flat_mode_uses_frame_arrivals() {
        let spec = SystemSpec::new()
            .cpu("cpu0")
            .bus("can0", CanBusConfig::new(Time::new(1)))
            .frame(FrameSpec {
                name: "F".into(),
                bus: "can0".into(),
                frame_type: FrameType::Direct,
                payload_bytes: 4,
                format: FrameFormat::Standard,
                priority: Priority::new(1),
                signals: vec![
                    SignalSpec {
                        name: "a".into(),
                        transfer: TransferProperty::Triggering,
                        source: ActivationSpec::External(periodic(500)),
                    },
                    SignalSpec {
                        name: "b".into(),
                        transfer: TransferProperty::Triggering,
                        source: ActivationSpec::External(periodic(700)),
                    },
                ],
            })
            .task(simple_task(
                "rx_a",
                "cpu0",
                30,
                1,
                ActivationSpec::Signal {
                    frame: "F".into(),
                    signal: "a".into(),
                },
            ));
        let flat = analyze(&spec, &SystemConfig::new(AnalysisMode::Flat)).unwrap();
        let hier = analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).unwrap();
        // Under flat analysis rx_a sees both a- and b-triggered frames.
        let flat_act = flat.task_activation("rx_a").unwrap();
        let hier_act = hier.task_activation("rx_a").unwrap();
        assert!(flat_act.eta_plus(Time::new(3000)) > hier_act.eta_plus(Time::new(3000)));
        // No unpacked signals stored in flat mode.
        assert!(flat.unpacked_signal("F", "a").is_none());
    }

    #[test]
    fn flatsem_is_most_pessimistic_mode() {
        // Two triggering signals of incommensurate periods: the SEM fit
        // of the frame stream must over-approximate, ordering the three
        // modes Hierarchical ≤ Flat ≤ FlatSem for the receiver.
        let spec = SystemSpec::new()
            .cpu("cpu0")
            .bus("can0", CanBusConfig::new(Time::new(1)))
            .frame(FrameSpec {
                name: "F".into(),
                bus: "can0".into(),
                frame_type: FrameType::Direct,
                payload_bytes: 4,
                format: FrameFormat::Standard,
                priority: Priority::new(1),
                signals: vec![
                    SignalSpec {
                        name: "a".into(),
                        transfer: TransferProperty::Triggering,
                        source: ActivationSpec::External(periodic(2500)),
                    },
                    SignalSpec {
                        name: "b".into(),
                        transfer: TransferProperty::Triggering,
                        source: ActivationSpec::External(periodic(4500)),
                    },
                ],
            })
            .task(simple_task(
                "rx",
                "cpu0",
                300,
                1,
                ActivationSpec::Signal {
                    frame: "F".into(),
                    signal: "a".into(),
                },
            ))
            .task(simple_task(
                "bg",
                "cpu0",
                400,
                2,
                ActivationSpec::External(periodic(3000)),
            ));
        let r = |mode: AnalysisMode| {
            analyze(&spec, &SystemConfig::new(mode))
                .expect("converges")
                .task("bg")
                .expect("present")
                .response
                .r_plus
        };
        let hier = r(AnalysisMode::Hierarchical);
        let flat = r(AnalysisMode::Flat);
        let flatsem = r(AnalysisMode::FlatSem);
        assert!(hier <= flat, "hier {hier} ≤ flat {flat}");
        assert!(flat <= flatsem, "flat {flat} ≤ flatsem {flatsem}");
    }

    #[test]
    fn flatsem_stores_no_unpacked_signals_and_sem_outputs() {
        let spec = mini_system();
        let r = analyze(&spec, &SystemConfig::new(AnalysisMode::FlatSem)).expect("converges");
        assert!(r.unpacked_signal("F", "s").is_none());
        // Frame activation and output exist and behave like streams.
        let act = r.frame_activation("F").expect("stored");
        let out = r.frame_output("F").expect("stored");
        assert!(act.delta_min(2) > Time::ZERO);
        assert!(out.delta_min(2) <= act.delta_min(2));
    }

    #[test]
    fn tighten_inner_never_loosens() {
        let spec = mini_system();
        let plain = analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).unwrap();
        let tight = analyze(
            &spec,
            &SystemConfig {
                tighten_inner: true,
                ..SystemConfig::new(AnalysisMode::Hierarchical)
            },
        )
        .unwrap();
        assert!(
            tight.task("rx").unwrap().response.r_plus <= plain.task("rx").unwrap().response.r_plus
        );
    }

    #[test]
    fn task_output_chain_propagates_jitter() {
        // src → t1 (adds jitter) → t2 activated by t1's output.
        let spec = SystemSpec::new()
            .cpu("cpu0")
            .cpu("cpu1")
            .task(simple_task(
                "t1",
                "cpu0",
                10,
                1,
                ActivationSpec::External(periodic(100)),
            ))
            .task(TaskSpec {
                name: "t2".into(),
                cpu: "cpu1".into(),
                bcet: Time::new(5),
                wcet: Time::new(20),
                priority: Priority::new(1),
                activation: ActivationSpec::TaskOutput("t1".into()),
            });
        let r = analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).unwrap();
        assert_eq!(r.task("t1").unwrap().response.r_plus, Time::new(10));
        assert_eq!(r.task("t2").unwrap().response.r_plus, Time::new(20));
        // t2's activation carries t1's response jitter 0 (bcet = wcet).
        let act = r.task_activation("t2").unwrap();
        assert_eq!(act.delta_min(2), Time::new(100));
    }

    #[test]
    fn validation_catches_dangling_references() {
        let spec = SystemSpec::new().cpu("cpu0").task(simple_task(
            "t",
            "cpu0",
            10,
            1,
            ActivationSpec::TaskOutput("ghost".into()),
        ));
        assert!(matches!(
            analyze(&spec, &SystemConfig::new(AnalysisMode::Flat)).unwrap_err(),
            SystemError::UnknownReference { kind: "task", .. }
        ));

        let spec = SystemSpec::new().task(simple_task(
            "t",
            "nocpu",
            10,
            1,
            ActivationSpec::External(periodic(100)),
        ));
        assert!(matches!(
            analyze(&spec, &SystemConfig::new(AnalysisMode::Flat)).unwrap_err(),
            SystemError::UnknownReference { kind: "cpu", .. }
        ));
    }

    #[test]
    fn validation_catches_duplicates() {
        let spec = SystemSpec::new().cpu("x").cpu("x");
        assert!(matches!(
            analyze(&spec, &SystemConfig::new(AnalysisMode::Flat)).unwrap_err(),
            SystemError::Duplicate { kind: "cpu", .. }
        ));
    }

    #[test]
    fn dependency_cycle_detected() {
        let spec = SystemSpec::new()
            .cpu("cpu0")
            .task(simple_task(
                "a",
                "cpu0",
                10,
                1,
                ActivationSpec::TaskOutput("b".into()),
            ))
            .task(simple_task(
                "b",
                "cpu0",
                10,
                2,
                ActivationSpec::TaskOutput("a".into()),
            ));
        assert!(matches!(
            analyze(&spec, &SystemConfig::new(AnalysisMode::Flat)).unwrap_err(),
            SystemError::DependencyCycle { .. }
        ));
    }

    #[test]
    fn composite_activations_resolve() {
        // A task OR-activated by two signals of one frame, and another
        // AND-activated by a signal plus a local timer.
        let spec = SystemSpec::new()
            .cpu("cpu0")
            .bus("can0", CanBusConfig::new(Time::new(1)))
            .frame(FrameSpec {
                name: "F".into(),
                bus: "can0".into(),
                frame_type: FrameType::Direct,
                payload_bytes: 4,
                format: FrameFormat::Standard,
                priority: Priority::new(1),
                signals: vec![
                    SignalSpec {
                        name: "a".into(),
                        transfer: TransferProperty::Triggering,
                        source: ActivationSpec::External(periodic(3_000)),
                    },
                    SignalSpec {
                        name: "b".into(),
                        transfer: TransferProperty::Triggering,
                        source: ActivationSpec::External(periodic(4_000)),
                    },
                ],
            })
            .task(simple_task(
                "either",
                "cpu0",
                100,
                1,
                ActivationSpec::AnyOf(vec![
                    ActivationSpec::Signal {
                        frame: "F".into(),
                        signal: "a".into(),
                    },
                    ActivationSpec::Signal {
                        frame: "F".into(),
                        signal: "b".into(),
                    },
                ]),
            ))
            .task(simple_task(
                "both",
                "cpu0",
                100,
                2,
                ActivationSpec::AllOf(vec![
                    ActivationSpec::Signal {
                        frame: "F".into(),
                        signal: "a".into(),
                    },
                    ActivationSpec::External(periodic(10_000)),
                ]),
            ));
        let r = analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical))
            .expect("composite system converges");
        // OR sees both signal rates.
        let either = r.task_activation("either").unwrap();
        assert_eq!(either.eta_plus(Time::new(12_001)), 5 + 4);
        // AND is limited by the slow timer.
        let both = r.task_activation("both").unwrap();
        assert!(both.delta_min(2) >= Time::new(10_000));
        // Empty composite rejected.
        let bad = SystemSpec::new().cpu("c").task(simple_task(
            "t",
            "c",
            10,
            1,
            ActivationSpec::AnyOf(vec![]),
        ));
        assert!(matches!(
            analyze(&bad, &SystemConfig::new(AnalysisMode::Flat)).unwrap_err(),
            SystemError::UnsupportedSpec(_)
        ));
    }

    /// A 1-CPU system at utilization > 1: the local busy window of the
    /// lowest-priority task grows without bound.
    fn overloaded_system() -> SystemSpec {
        SystemSpec::new()
            .cpu("cpu0")
            .task(simple_task(
                "hog",
                "cpu0",
                90,
                1,
                ActivationSpec::External(periodic(100)),
            ))
            .task(simple_task(
                "victim",
                "cpu0",
                50,
                2,
                ActivationSpec::External(periodic(200)),
            ))
    }

    #[test]
    fn overload_degrades_gracefully() {
        let config = SystemConfig::new(AnalysisMode::Flat);
        let r = analyze_robust(&overloaded_system(), &config).expect("spec is well-formed");
        assert!(!r.results.is_complete());
        assert!(!r.diagnostics.converged());
        // The local analysis of the overloaded CPU aborts naming `victim`.
        assert!(matches!(
            &r.diagnostics.stop,
            StopReason::LocalAnalysisFailed { entity, .. } if entity == "task:victim"
        ));
        assert_eq!(r.diagnostics.prime_suspect(), Some("task:victim"));
        assert_eq!(
            r.diagnostics.suspected_bottleneck.as_deref(),
            Some("cpu:cpu0")
        );
        assert_eq!(
            r.results.task_convergence("victim"),
            Some(ConvergenceStatus::Failed)
        );
        // And the strict API reports the same condition as an error.
        let err = analyze(&overloaded_system(), &config).unwrap_err();
        assert!(matches!(err, SystemError::Analysis(_)));
    }

    #[test]
    fn budget_exhaustion_returns_partial_results() {
        let config = SystemConfig::new(AnalysisMode::Flat).with_budget(
            hem_analysis::AnalysisBudget::within(std::time::Duration::ZERO),
        );
        let r = analyze_robust(&overloaded_system(), &config).expect("spec is well-formed");
        assert!(r.diagnostics.budget_exhausted());
        assert!(!r.results.is_complete());
        assert_eq!(r.results.iterations(), 0);
        let err = analyze(&overloaded_system(), &config).unwrap_err();
        assert!(matches!(err, SystemError::BudgetExhausted { .. }));
    }

    #[test]
    fn robust_analysis_of_converging_system_is_complete() {
        let r = analyze_robust(
            &mini_system(),
            &SystemConfig::new(AnalysisMode::Hierarchical),
        )
        .expect("converges");
        assert!(r.results.is_complete());
        assert!(r.diagnostics.converged());
        assert_eq!(r.diagnostics.prime_suspect(), None);
        assert_eq!(
            r.results.task_convergence("rx"),
            Some(ConvergenceStatus::Converged)
        );
        assert_eq!(
            r.results.frame_convergence("F"),
            Some(ConvergenceStatus::Converged)
        );
        // Same numbers as the strict API.
        let strict = analyze(
            &mini_system(),
            &SystemConfig::new(AnalysisMode::Hierarchical),
        )
        .unwrap();
        assert_eq!(
            r.results.frame("F").unwrap().response,
            strict.frame("F").unwrap().response
        );
        // Diagnostics carry the converged response-time vector.
        assert_eq!(
            r.diagnostics
                .last_response_times
                .get("frame:F")
                .map(|rt| rt.r_plus),
            Some(Time::new(95))
        );
    }

    #[test]
    fn divergence_detection_stops_before_iteration_limit() {
        // Force pure global divergence (local analyses converge each
        // iteration, but the response-time vector keeps growing) by
        // giving the local analysis generous limits while feeding back
        // jitter growth through a task chain… a cyclic jitter feedback
        // cannot be expressed (cycles are rejected), so emulate with the
        // iteration-limit path instead: a tiny max_global_iterations
        // budget on a converging-but-slow system must stop cleanly.
        let mut config = SystemConfig::new(AnalysisMode::Hierarchical);
        config.max_global_iterations = 1;
        let r = analyze_robust(&mini_system(), &config).expect("well-formed");
        assert!(!r.results.is_complete());
        assert!(matches!(
            r.diagnostics.stop,
            StopReason::IterationLimitReached
        ));
        // Partial results still carry the first iteration's numbers.
        assert!(r.results.frame("F").is_some());
        assert_eq!(r.results.iterations(), 1);
        // Statuses are reported as unsettled, not converged.
        assert_eq!(
            r.results.frame_convergence("F"),
            Some(ConvergenceStatus::Unsettled)
        );
    }

    #[test]
    fn malformed_spec_still_errors_in_robust_mode() {
        let spec = SystemSpec::new().cpu("x").cpu("x");
        assert!(matches!(
            analyze_robust(&spec, &SystemConfig::new(AnalysisMode::Flat)).unwrap_err(),
            SystemError::Duplicate { kind: "cpu", .. }
        ));
    }

    #[test]
    fn frame_sourced_signal_rejected() {
        let spec = SystemSpec::new()
            .bus("can0", CanBusConfig::new(Time::new(1)))
            .frame(FrameSpec {
                name: "F".into(),
                bus: "can0".into(),
                frame_type: FrameType::Direct,
                payload_bytes: 1,
                format: FrameFormat::Standard,
                priority: Priority::new(1),
                signals: vec![SignalSpec {
                    name: "s".into(),
                    transfer: TransferProperty::Triggering,
                    source: ActivationSpec::FrameArrivals("F".into()),
                }],
            });
        assert!(matches!(
            analyze(&spec, &SystemConfig::new(AnalysisMode::Flat)).unwrap_err(),
            SystemError::UnsupportedSpec(_)
        ));
    }
}
