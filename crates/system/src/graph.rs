//! The propagation dependency graph and its topological leveling.
//!
//! Within **one** global iteration, data flows in a single direction:
//! task outputs are derived from *previous-iteration* response times
//! (see `Resolver::prev_rt`), so the only same-iteration dependencies
//! are the ones flowing **into bus analyses** — packing a frame
//! resolves its signal sources, and a source that (transitively)
//! unpacks a signal of another frame needs that frame's bus analysed
//! first. CPUs consume bus outputs but nothing consumes a CPU's results
//! until the next iteration.
//!
//! This module derives the resulting resource-level dependency graph
//! from a [`SystemSpec`] — edges `bus → resource`, including the HEM
//! pack/unpack edges — and levels it topologically. Resources within a
//! level are mutually independent, which is what the parallel engine's
//! per-level job batches rely on. Resources caught in a resource-level
//! cycle are set aside: the engine analyses them through the lazy
//! sequential resolver, which reports [`SystemError::DependencyCycle`]
//! with the exact entity the purely sequential engine would name.
//!
//! [`SystemError::DependencyCycle`]: crate::SystemError::DependencyCycle

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::spec::{ActivationSpec, FrameSpec, SystemSpec, TaskSpec};

/// One dependency-free group of resources: every bus and CPU in a level
/// can be analysed concurrently once all earlier levels are done.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Level {
    /// Buses of this level, in spec order.
    pub buses: Vec<String>,
    /// CPUs of this level, in spec order.
    pub cpus: Vec<String>,
}

impl Level {
    /// Whether the level holds no resources.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buses.is_empty() && self.cpus.is_empty()
    }
}

/// The topologically leveled propagation graph of a system.
///
/// # Examples
///
/// ```
/// use hem_system::graph::PropagationLevels;
/// use hem_system::SystemSpec;
///
/// let levels = PropagationLevels::of(&SystemSpec::new().cpu("ecu"));
/// assert_eq!(levels.levels.len(), 1);
/// assert_eq!(levels.levels[0].cpus, ["ecu"]);
/// assert!(levels.cyclic_buses.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropagationLevels {
    /// Dependency-free resource groups, in execution order.
    pub levels: Vec<Level>,
    /// Buses caught in a resource-level dependency cycle (including
    /// self-loops such as two frames of one bus feeding each other),
    /// in spec order. Analysed sequentially after all levels.
    pub cyclic_buses: Vec<String>,
    /// CPUs depending on a cyclic bus, in spec order.
    pub cyclic_cpus: Vec<String>,
}

/// Shared lookup tables during graph construction.
struct Ctx<'a> {
    tasks: HashMap<&'a str, &'a TaskSpec>,
    frames: HashMap<&'a str, &'a FrameSpec>,
}

impl<'a> Ctx<'a> {
    /// Adds every bus the given activation source depends on — within
    /// the same global iteration — to `out`.
    ///
    /// `TaskOutput` recurses into the producing task's own activation
    /// (its output *model* is previous-iteration data, but building it
    /// still resolves the activation chain); `Signal`/`FrameArrivals`
    /// add the transporting frame's bus and recurse into the frame's
    /// packing (its signal sources are resolved when the frame is
    /// packed). Dangling references are ignored here — `validate`
    /// rejects them before the graph is ever built.
    fn source_deps(
        &self,
        source: &'a ActivationSpec,
        seen_tasks: &mut HashSet<&'a str>,
        seen_frames: &mut HashSet<&'a str>,
        out: &mut BTreeSet<&'a str>,
    ) {
        match source {
            ActivationSpec::External(_) => {}
            ActivationSpec::TaskOutput(task) => {
                if let Some(t) = self.tasks.get(task.as_str()) {
                    if seen_tasks.insert(task.as_str()) {
                        self.source_deps(&t.activation, seen_tasks, seen_frames, out);
                    }
                }
            }
            ActivationSpec::Signal { frame, .. } | ActivationSpec::FrameArrivals(frame) => {
                if let Some(f) = self.frames.get(frame.as_str()) {
                    out.insert(f.bus.as_str());
                    self.frame_deps(f, seen_tasks, seen_frames, out);
                }
            }
            ActivationSpec::AnyOf(sources) | ActivationSpec::AllOf(sources) => {
                for s in sources {
                    self.source_deps(s, seen_tasks, seen_frames, out);
                }
            }
        }
    }

    /// Adds the buses packing `frame` depends on to `out`.
    fn frame_deps(
        &self,
        frame: &'a FrameSpec,
        seen_tasks: &mut HashSet<&'a str>,
        seen_frames: &mut HashSet<&'a str>,
        out: &mut BTreeSet<&'a str>,
    ) {
        if !seen_frames.insert(frame.name.as_str()) {
            return;
        }
        for s in &frame.signals {
            self.source_deps(&s.source, seen_tasks, seen_frames, out);
        }
    }
}

impl PropagationLevels {
    /// Derives and levels the propagation graph of `spec`.
    ///
    /// Expects a spec that passes the engine's validation; dangling
    /// references are ignored rather than reported (validation owns
    /// that diagnosis).
    #[must_use]
    pub fn of(spec: &SystemSpec) -> Self {
        let ctx = Ctx {
            tasks: spec.tasks.iter().map(|t| (t.name.as_str(), t)).collect(),
            frames: spec.frames.iter().map(|f| (f.name.as_str(), f)).collect(),
        };

        // Same-iteration bus dependencies of every resource.
        let bus_deps: Vec<(&str, BTreeSet<&str>)> = spec
            .buses
            .iter()
            .map(|b| {
                let mut out = BTreeSet::new();
                let (mut st, mut sf) = (HashSet::new(), HashSet::new());
                for f in spec.frames.iter().filter(|f| f.bus == b.name) {
                    ctx.frame_deps(f, &mut st, &mut sf, &mut out);
                }
                (b.name.as_str(), out)
            })
            .collect();
        let cpu_deps: Vec<(&str, BTreeSet<&str>)> = spec
            .cpus
            .iter()
            .map(|c| {
                let mut out = BTreeSet::new();
                let (mut st, mut sf) = (HashSet::new(), HashSet::new());
                for t in spec.tasks.iter().filter(|t| t.cpu == c.name) {
                    ctx.source_deps(&t.activation, &mut st, &mut sf, &mut out);
                }
                (c.name.as_str(), out)
            })
            .collect();

        // Longest-path leveling of the bus subgraph (Kahn-style:
        // repeatedly place every bus whose dependencies are all placed).
        // Leftovers are cycle participants or downstream of one.
        let mut bus_level: HashMap<&str, usize> = HashMap::new();
        loop {
            let mut progressed = false;
            for (bus, deps) in &bus_deps {
                if bus_level.contains_key(bus) || deps.contains(bus) {
                    continue;
                }
                if let Some(level) = deps
                    .iter()
                    .try_fold(0usize, |acc, d| Some(acc.max(bus_level.get(d)? + 1)))
                {
                    bus_level.insert(bus, level);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        let cyclic_buses: Vec<String> = bus_deps
            .iter()
            .filter(|(b, _)| !bus_level.contains_key(b))
            .map(|(b, _)| (*b).to_string())
            .collect();

        // A CPU sits one level after the last bus it reads from; CPUs
        // reading from a cyclic bus join the sequential fallback.
        let mut cpu_level: Vec<(&str, Option<usize>)> = Vec::with_capacity(cpu_deps.len());
        for (cpu, deps) in &cpu_deps {
            let level = deps
                .iter()
                .try_fold(0usize, |acc, d| Some(acc.max(bus_level.get(d)? + 1)));
            cpu_level.push((cpu, level));
        }
        let cyclic_cpus: Vec<String> = cpu_level
            .iter()
            .filter(|(_, l)| l.is_none())
            .map(|(c, _)| (*c).to_string())
            .collect();

        let depth = bus_level
            .values()
            .copied()
            .chain(cpu_level.iter().filter_map(|(_, l)| *l))
            .max()
            .map_or(0, |m| m + 1);
        let mut levels = vec![Level::default(); depth];
        for (bus, _) in &bus_deps {
            if let Some(&l) = bus_level.get(bus) {
                levels[l].buses.push((*bus).to_string());
            }
        }
        for (cpu, level) in &cpu_level {
            if let Some(l) = level {
                levels[*l].cpus.push((*cpu).to_string());
            }
        }
        PropagationLevels {
            levels,
            cyclic_buses,
            cyclic_cpus,
        }
    }

    /// Whether any resource needs the sequential fallback.
    #[must_use]
    pub fn has_cycles(&self) -> bool {
        !self.cyclic_buses.is_empty() || !self.cyclic_cpus.is_empty()
    }

    /// Total number of leveled resources (diagnostic).
    #[must_use]
    pub fn leveled_resources(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.buses.len() + l.cpus.len())
            .sum()
    }
}

/// The resource-level dependency graph **including cross-iteration
/// edges**, the basis of the incremental engine's damage-cone
/// computation (see `docs/INCREMENTAL.md`).
///
/// [`PropagationLevels`] deliberately drops task-output edges: a
/// consumer reads the producer's *previous-iteration* response time, so
/// no same-iteration ordering is needed. For invalidation the direction
/// of data flow matters regardless of which iteration it crosses — if a
/// producer's results change, every consumer's trajectory changes one
/// iteration later. This graph therefore keeps both kinds of edges:
///
/// * `bus:<b> ∈ deps(R)` when an entity on `R` consumes a signal or the
///   arrival stream of a frame on `b` (same-iteration),
/// * `cpu:<c> ∈ deps(R)` when an entity on `R` consumes the output of a
///   task hosted on `c` (cross-iteration).
///
/// Nodes are prefixed resource keys (`bus:<name>` / `cpu:<name>`), the
/// same convention `Diagnostics` uses for entities. Only *direct* edges
/// are stored; [`ResourceGraph::dependents_closure`] transitively closes
/// over them.
///
/// # Examples
///
/// ```
/// use hem_system::graph::ResourceGraph;
/// use hem_system::SystemSpec;
///
/// let graph = ResourceGraph::of(&SystemSpec::new().cpu("ecu"));
/// assert_eq!(graph.len(), 1);
/// assert_eq!(
///     graph.dependents_closure(["cpu:ecu".to_string()]),
///     ["cpu:ecu".to_string()].into_iter().collect()
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceGraph {
    /// Direct dependencies of every resource, keyed by prefixed name.
    deps: std::collections::BTreeMap<String, BTreeSet<String>>,
}

impl ResourceGraph {
    /// Derives the resource dependency graph of `spec`.
    ///
    /// Like [`PropagationLevels::of`], expects a spec that passes the
    /// engine's validation; dangling references are ignored.
    #[must_use]
    pub fn of(spec: &SystemSpec) -> Self {
        let tasks: HashMap<&str, &TaskSpec> =
            spec.tasks.iter().map(|t| (t.name.as_str(), t)).collect();
        let frames: HashMap<&str, &FrameSpec> =
            spec.frames.iter().map(|f| (f.name.as_str(), f)).collect();
        // Direct edges only: a `TaskOutput` consumer depends on the
        // producer's CPU, a `Signal`/`FrameArrivals` consumer on the
        // transporting frame's bus. The producer's own inputs are that
        // resource's edges; `dependents_closure` chains them.
        fn source_deps(
            source: &ActivationSpec,
            tasks: &HashMap<&str, &TaskSpec>,
            frames: &HashMap<&str, &FrameSpec>,
            out: &mut BTreeSet<String>,
        ) {
            match source {
                ActivationSpec::External(_) => {}
                ActivationSpec::TaskOutput(task) => {
                    if let Some(t) = tasks.get(task.as_str()) {
                        out.insert(format!("cpu:{}", t.cpu));
                    }
                }
                ActivationSpec::Signal { frame, .. } | ActivationSpec::FrameArrivals(frame) => {
                    if let Some(f) = frames.get(frame.as_str()) {
                        out.insert(format!("bus:{}", f.bus));
                    }
                }
                ActivationSpec::AnyOf(sources) | ActivationSpec::AllOf(sources) => {
                    for s in sources {
                        source_deps(s, tasks, frames, out);
                    }
                }
            }
        }
        let mut deps = std::collections::BTreeMap::new();
        for b in &spec.buses {
            let mut out = BTreeSet::new();
            for f in spec.frames.iter().filter(|f| f.bus == b.name) {
                for s in &f.signals {
                    source_deps(&s.source, &tasks, &frames, &mut out);
                }
            }
            deps.insert(format!("bus:{}", b.name), out);
        }
        for c in &spec.cpus {
            let mut out = BTreeSet::new();
            for t in spec.tasks.iter().filter(|t| t.cpu == c.name) {
                source_deps(&t.activation, &tasks, &frames, &mut out);
            }
            deps.insert(format!("cpu:{}", c.name), out);
        }
        ResourceGraph { deps }
    }

    /// Every resource of the graph, as prefixed keys in sorted order.
    pub fn resources(&self) -> impl Iterator<Item = &str> {
        self.deps.keys().map(String::as_str)
    }

    /// Number of resources.
    #[must_use]
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Whether the graph holds no resources.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// The *damage cone* of a set of directly mutated resources: every
    /// resource whose analysis trajectory can be affected by the
    /// mutation — the seeds plus all transitive dependents, following
    /// edges forward through both same- and cross-iteration
    /// dependencies. Seeds that are not resources of this graph are
    /// ignored.
    #[must_use]
    pub fn dependents_closure(&self, seeds: impl IntoIterator<Item = String>) -> BTreeSet<String> {
        let mut dependents: HashMap<&str, Vec<&str>> = HashMap::new();
        for (resource, deps) in &self.deps {
            for dep in deps {
                dependents.entry(dep).or_default().push(resource);
            }
        }
        let mut cone: BTreeSet<String> = seeds
            .into_iter()
            .filter(|s| self.deps.contains_key(s))
            .collect();
        let mut frontier: Vec<String> = cone.iter().cloned().collect();
        while let Some(resource) = frontier.pop() {
            for &dependent in dependents.get(resource.as_str()).into_iter().flatten() {
                if cone.insert(dependent.to_string()) {
                    frontier.push(dependent.to_string());
                }
            }
        }
        cone
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SignalSpec, TaskSpec};
    use hem_analysis::Priority;
    use hem_autosar_com::{FrameType, TransferProperty};
    use hem_can::{CanBusConfig, FrameFormat};
    use hem_event_models::{EventModelExt, StandardEventModel};
    use hem_time::Time;

    fn periodic(p: i64) -> ActivationSpec {
        ActivationSpec::External(StandardEventModel::periodic(Time::new(p)).unwrap().shared())
    }

    fn task(name: &str, cpu: &str, act: ActivationSpec) -> TaskSpec {
        TaskSpec {
            name: name.into(),
            cpu: cpu.into(),
            bcet: Time::new(10),
            wcet: Time::new(10),
            priority: Priority::new(1),
            activation: act,
        }
    }

    fn frame(name: &str, bus: &str, prio: u32, signals: Vec<(&str, ActivationSpec)>) -> FrameSpec {
        FrameSpec {
            name: name.into(),
            bus: bus.into(),
            frame_type: FrameType::Direct,
            payload_bytes: 4,
            format: FrameFormat::Standard,
            priority: Priority::new(prio),
            signals: signals
                .into_iter()
                .map(|(n, source)| SignalSpec {
                    name: n.into(),
                    transfer: TransferProperty::Triggering,
                    source,
                })
                .collect(),
        }
    }

    fn signal(frame: &str, signal: &str) -> ActivationSpec {
        ActivationSpec::Signal {
            frame: frame.into(),
            signal: signal.into(),
        }
    }

    #[test]
    fn fig2_shape_levels_bus_before_cpu() {
        // Externally-fed frames on one bus; tasks unpack its signals.
        let spec = SystemSpec::new()
            .cpu("cpu1")
            .bus("can", CanBusConfig::new(Time::new(1)))
            .frame(frame("F1", "can", 1, vec![("s1", periodic(250))]))
            .task(task("T1", "cpu1", signal("F1", "s1")));
        let levels = PropagationLevels::of(&spec);
        assert!(!levels.has_cycles());
        assert_eq!(levels.levels.len(), 2);
        assert_eq!(levels.levels[0].buses, ["can"]);
        assert!(levels.levels[0].cpus.is_empty());
        assert_eq!(levels.levels[1].cpus, ["cpu1"]);
        assert_eq!(levels.leveled_resources(), 2);
    }

    #[test]
    fn independent_resources_share_a_level() {
        let spec = SystemSpec::new()
            .cpu("a")
            .cpu("b")
            .bus("can0", CanBusConfig::new(Time::new(1)))
            .bus("can1", CanBusConfig::new(Time::new(1)))
            .frame(frame("F0", "can0", 1, vec![("s", periodic(100))]))
            .frame(frame("F1", "can1", 1, vec![("s", periodic(100))]))
            .task(task("t0", "a", periodic(100)))
            .task(task("t1", "b", periodic(100)));
        let levels = PropagationLevels::of(&spec);
        assert_eq!(levels.levels.len(), 1);
        assert_eq!(levels.levels[0].buses, ["can0", "can1"]);
        assert_eq!(levels.levels[0].cpus, ["a", "b"]);
    }

    #[test]
    fn gateway_chains_level_buses_in_order() {
        // can0's frame is external; a gateway task unpacks it and feeds
        // can1's frame; a final CPU reads can1. Three levels.
        let spec = SystemSpec::new()
            .cpu("gw")
            .cpu("sink")
            .bus("can0", CanBusConfig::new(Time::new(1)))
            .bus("can1", CanBusConfig::new(Time::new(1)))
            .frame(frame("F0", "can0", 1, vec![("s", periodic(500))]))
            .frame(frame(
                "F1",
                "can1",
                1,
                vec![("g", ActivationSpec::TaskOutput("relay".into()))],
            ))
            .task(task("relay", "gw", signal("F0", "s")))
            .task(task("rx", "sink", signal("F1", "g")));
        let levels = PropagationLevels::of(&spec);
        assert!(!levels.has_cycles());
        assert_eq!(levels.levels.len(), 3);
        assert_eq!(levels.levels[0].buses, ["can0"]);
        // The gateway CPU reads can0 only; it levels right after can0,
        // concurrently with can1 (whose packing depends on can0 too).
        assert_eq!(levels.levels[1].cpus, ["gw"]);
        assert_eq!(levels.levels[1].buses, ["can1"]);
        assert_eq!(levels.levels[2].cpus, ["sink"]);
    }

    #[test]
    fn mutually_dependent_buses_fall_back_to_sequential() {
        // B0's frame packs a signal gated through a task reading B1 and
        // vice versa: a resource-level cycle.
        let spec = SystemSpec::new()
            .cpu("gw")
            .bus("b0", CanBusConfig::new(Time::new(1)))
            .bus("b1", CanBusConfig::new(Time::new(1)))
            .frame(frame(
                "F0",
                "b0",
                1,
                vec![("x", ActivationSpec::TaskOutput("t1".into()))],
            ))
            .frame(frame(
                "F1",
                "b1",
                1,
                vec![("y", ActivationSpec::TaskOutput("t0".into()))],
            ))
            .task(task("t0", "gw", signal("F0", "x")))
            .task(task("t1", "gw", signal("F1", "y")));
        let levels = PropagationLevels::of(&spec);
        assert_eq!(levels.cyclic_buses, ["b0", "b1"]);
        assert_eq!(levels.cyclic_cpus, ["gw"]);
        assert!(levels.has_cycles());
        assert_eq!(levels.leveled_resources(), 0);
    }

    #[test]
    fn intra_bus_frame_coupling_is_a_self_loop() {
        // F2 packs a signal produced by a task that unpacks F1 — both
        // frames on the same bus: the bus depends on itself.
        let spec = SystemSpec::new()
            .cpu("c")
            .bus("can", CanBusConfig::new(Time::new(1)))
            .frame(frame("F1", "can", 1, vec![("s", periodic(200))]))
            .frame(frame(
                "F2",
                "can",
                2,
                vec![("t", ActivationSpec::TaskOutput("echo".into()))],
            ))
            .task(task("echo", "c", signal("F1", "s")));
        let levels = PropagationLevels::of(&spec);
        assert_eq!(levels.cyclic_buses, ["can"]);
        assert_eq!(levels.cyclic_cpus, ["c"]);
    }

    #[test]
    fn composite_and_chained_activations_collect_all_deps() {
        let spec = SystemSpec::new()
            .cpu("c")
            .bus("b0", CanBusConfig::new(Time::new(1)))
            .bus("b1", CanBusConfig::new(Time::new(1)))
            .frame(frame("F0", "b0", 1, vec![("s", periodic(100))]))
            .frame(frame("F1", "b1", 1, vec![("s", periodic(100))]))
            .task(task("up", "c", signal("F0", "s")))
            .task(task(
                "both",
                "c",
                ActivationSpec::AnyOf(vec![
                    ActivationSpec::TaskOutput("up".into()),
                    ActivationSpec::FrameArrivals("F1".into()),
                ]),
            ));
        let levels = PropagationLevels::of(&spec);
        assert_eq!(levels.levels[0].buses, ["b0", "b1"]);
        // The CPU reads both buses (one via the task-output chain).
        assert_eq!(levels.levels[1].cpus, ["c"]);
    }

    fn keys(set: &BTreeSet<String>) -> Vec<&str> {
        set.iter().map(String::as_str).collect()
    }

    #[test]
    fn resource_graph_includes_cross_iteration_edges() {
        // src → F0 on can0 → relay on gw → F1 on can1 → rx on sink.
        // `PropagationLevels` has no edge gw → can1 within an iteration,
        // but the damage cone must carry a gw mutation into can1.
        let spec = SystemSpec::new()
            .cpu("gw")
            .cpu("sink")
            .bus("can0", CanBusConfig::new(Time::new(1)))
            .bus("can1", CanBusConfig::new(Time::new(1)))
            .frame(frame("F0", "can0", 1, vec![("s", periodic(500))]))
            .frame(frame(
                "F1",
                "can1",
                1,
                vec![("g", ActivationSpec::TaskOutput("relay".into()))],
            ))
            .task(task("relay", "gw", signal("F0", "s")))
            .task(task("rx", "sink", signal("F1", "g")));
        let graph = ResourceGraph::of(&spec);
        assert_eq!(graph.len(), 4);
        assert!(!graph.is_empty());
        assert_eq!(
            graph.resources().collect::<Vec<_>>(),
            ["bus:can0", "bus:can1", "cpu:gw", "cpu:sink"]
        );
        // A mutation on can0 dirties everything downstream.
        let cone = graph.dependents_closure(["bus:can0".to_string()]);
        assert_eq!(keys(&cone), ["bus:can0", "bus:can1", "cpu:gw", "cpu:sink"]);
        // A mutation on the gateway CPU reaches can1 and sink, not can0.
        let cone = graph.dependents_closure(["cpu:gw".to_string()]);
        assert_eq!(keys(&cone), ["bus:can1", "cpu:gw", "cpu:sink"]);
        // The sink is a leaf.
        let cone = graph.dependents_closure(["cpu:sink".to_string()]);
        assert_eq!(keys(&cone), ["cpu:sink"]);
        // Unknown seeds are ignored.
        assert!(graph
            .dependents_closure(["bus:ghost".to_string()])
            .is_empty());
    }

    #[test]
    fn resource_graph_isolates_independent_islands() {
        let spec = SystemSpec::new()
            .cpu("a")
            .cpu("b")
            .bus("can0", CanBusConfig::new(Time::new(1)))
            .bus("can1", CanBusConfig::new(Time::new(1)))
            .frame(frame("F0", "can0", 1, vec![("s", periodic(100))]))
            .frame(frame("F1", "can1", 1, vec![("s", periodic(100))]))
            .task(task("t0", "a", signal("F0", "s")))
            .task(task("t1", "b", signal("F1", "s")));
        let graph = ResourceGraph::of(&spec);
        let cone = graph.dependents_closure(["bus:can0".to_string()]);
        assert_eq!(keys(&cone), ["bus:can0", "cpu:a"]);
    }

    #[test]
    fn resource_graph_closes_over_cycles() {
        // The mutually-dependent-buses topology: the cone from either
        // bus covers the whole strongly connected component.
        let spec = SystemSpec::new()
            .cpu("gw")
            .bus("b0", CanBusConfig::new(Time::new(1)))
            .bus("b1", CanBusConfig::new(Time::new(1)))
            .frame(frame(
                "F0",
                "b0",
                1,
                vec![("x", ActivationSpec::TaskOutput("t1".into()))],
            ))
            .frame(frame(
                "F1",
                "b1",
                1,
                vec![("y", ActivationSpec::TaskOutput("t0".into()))],
            ))
            .task(task("t0", "gw", signal("F0", "x")))
            .task(task("t1", "gw", signal("F1", "y")));
        let graph = ResourceGraph::of(&spec);
        let cone = graph.dependents_closure(["bus:b0".to_string()]);
        assert_eq!(keys(&cone), ["bus:b0", "bus:b1", "cpu:gw"]);
    }

    #[test]
    fn empty_and_cpu_only_systems() {
        let empty = PropagationLevels::of(&SystemSpec::new());
        assert!(empty.levels.is_empty());
        assert!(!empty.has_cycles());

        let cpu_only = PropagationLevels::of(&SystemSpec::new().cpu("a").task(task(
            "t",
            "a",
            periodic(10),
        )));
        assert_eq!(cpu_only.levels.len(), 1);
        assert_eq!(cpu_only.levels[0].cpus, ["a"]);
        assert!(cpu_only.levels[0].buses.is_empty());
        assert!(!cpu_only.levels[0].is_empty());
    }
}
