//! End-to-end path latency analysis.
//!
//! The AUTOSAR COM layer exists to "handle different signal latency
//! requirements" (paper §4): what ultimately matters to the integrator
//! is how long a *signal* takes from the moment its producer writes it
//! until the consumer task finishes reacting. A [`SignalPath`] names
//! that route — source signal, transporting frame, receiving task — and
//! [`analyze_path`] bounds its worst-case latency from a converged
//! [`SystemResults`]:
//!
//! ```text
//! latency ≤ sampling + R⁺(frame) + R⁺(task)
//! ```
//!
//! where `sampling` is zero for a *triggering* signal (its write is the
//! frame activation) and, for a *pending* signal, the worst wait for the
//! next frame transmission — the maximum frame distance `δ_F⁺(2)` of the
//! frame-activation stream (the value may also be overwritten and never
//! arrive: pending paths bound only the freshness of *delivered* values;
//! see [`PathLatency::guaranteed_delivery`]).

use hem_autosar_com::TransferProperty;
use hem_event_models::EventModel;
use hem_time::{Time, TimeBound};

use crate::result::SystemResults;
use crate::spec::{ActivationSpec, SystemSpec};
use crate::SystemError;

/// A named signal route through the system: producer write → frame →
/// receiving task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalPath {
    /// The transporting frame.
    pub frame: String,
    /// The signal within the frame.
    pub signal: String,
    /// The receiving task (must be activated by this signal or by the
    /// frame's arrivals).
    pub task: String,
}

/// The latency decomposition of one signal path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathLatency {
    /// Worst-case wait from the signal write until its frame is queued
    /// (zero for triggering signals).
    pub sampling: Time,
    /// Worst-case frame response on the bus.
    pub transport: Time,
    /// Worst-case response of the receiving task.
    pub reaction: Time,
    /// Whether every written value is guaranteed to be delivered
    /// (`false` for pending signals, whose register may be overwritten).
    pub guaranteed_delivery: bool,
}

impl PathLatency {
    /// The total worst-case end-to-end latency bound.
    #[must_use]
    pub fn total(&self) -> Time {
        self.sampling + self.transport + self.reaction
    }
}

/// Bounds the worst-case end-to-end latency of a signal path.
///
/// Must be called with the [`SystemResults`] of a converged analysis of
/// `spec` (any mode; the frame/task response times of that mode are
/// used).
///
/// # Errors
///
/// Returns [`SystemError::UnknownReference`] when the path names a
/// frame, signal or task that does not exist in `spec` or was not
/// analysed in `results`.
pub fn analyze_path(
    spec: &SystemSpec,
    results: &SystemResults,
    path: &SignalPath,
) -> Result<PathLatency, SystemError> {
    let frame = spec
        .frames
        .iter()
        .find(|f| f.name == path.frame)
        .ok_or_else(|| SystemError::UnknownReference {
            kind: "frame",
            name: path.frame.clone(),
        })?;
    let signal = frame
        .signals
        .iter()
        .find(|s| s.name == path.signal)
        .ok_or_else(|| SystemError::UnknownReference {
            kind: "signal",
            name: format!("{}/{}", path.frame, path.signal),
        })?;
    let frame_result = results
        .frame(&path.frame)
        .ok_or_else(|| SystemError::UnknownReference {
            kind: "frame",
            name: path.frame.clone(),
        })?;
    let task_result = results
        .task(&path.task)
        .ok_or_else(|| SystemError::UnknownReference {
            kind: "task",
            name: path.task.clone(),
        })?;

    // Sampling delay: a pending value written right after a frame left
    // waits up to the maximum frame distance for the next one. The frame
    // *output* stream's δ⁺(2) conservatively includes the bus jitter.
    let (sampling, guaranteed_delivery) = match signal.transfer {
        TransferProperty::Triggering => (Time::ZERO, true),
        TransferProperty::Pending => {
            let frame_stream =
                results
                    .frame_output(&path.frame)
                    .ok_or_else(|| SystemError::UnknownReference {
                        kind: "frame",
                        name: path.frame.clone(),
                    })?;
            let gap = match frame_stream.delta_plus(2) {
                TimeBound::Finite(g) => g,
                // A frame with no minimum rate gives a pending value no
                // latency bound at all; report the (infinite) situation
                // as an unsupported path rather than inventing a number.
                TimeBound::Infinite => {
                    return Err(SystemError::UnsupportedSpec(format!(
                        "pending signal `{}` rides frame `{}` with unbounded distance: \
                         no finite latency exists",
                        path.signal, path.frame
                    )));
                }
            };
            (gap, false)
        }
    };
    Ok(PathLatency {
        sampling,
        transport: frame_result.response.r_plus,
        reaction: task_result.response.r_plus,
        guaranteed_delivery,
    })
}

/// Enumerates the natural signal paths of a system: every task activated
/// by a signal yields one path.
#[must_use]
pub fn signal_paths(spec: &SystemSpec) -> Vec<SignalPath> {
    spec.tasks
        .iter()
        .filter_map(|t| match &t.activation {
            ActivationSpec::Signal { frame, signal } => Some(SignalPath {
                frame: frame.clone(),
                signal: signal.clone(),
                task: t.name.clone(),
            }),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyze;
    use crate::result::SystemConfig;
    use crate::spec::{AnalysisMode, FrameSpec, SignalSpec, TaskSpec};
    use hem_analysis::Priority;
    use hem_autosar_com::FrameType;
    use hem_can::{CanBusConfig, FrameFormat};
    use hem_event_models::{EventModelExt, StandardEventModel};

    fn two_signal_spec() -> SystemSpec {
        let src = |p: i64| {
            ActivationSpec::External(
                StandardEventModel::periodic(Time::new(p))
                    .expect("valid")
                    .shared(),
            )
        };
        SystemSpec::new()
            .cpu("cpu")
            .bus("can", CanBusConfig::new(Time::new(1)))
            .frame(FrameSpec {
                name: "F".into(),
                bus: "can".into(),
                frame_type: FrameType::Direct,
                payload_bytes: 4,
                format: FrameFormat::Standard,
                priority: Priority::new(1),
                signals: vec![
                    SignalSpec {
                        name: "trig".into(),
                        transfer: TransferProperty::Triggering,
                        source: src(2_000),
                    },
                    SignalSpec {
                        name: "pend".into(),
                        transfer: TransferProperty::Pending,
                        source: src(5_000),
                    },
                ],
            })
            .task(TaskSpec {
                name: "rx_trig".into(),
                cpu: "cpu".into(),
                bcet: Time::new(100),
                wcet: Time::new(100),
                priority: Priority::new(1),
                activation: ActivationSpec::Signal {
                    frame: "F".into(),
                    signal: "trig".into(),
                },
            })
            .task(TaskSpec {
                name: "rx_pend".into(),
                cpu: "cpu".into(),
                bcet: Time::new(200),
                wcet: Time::new(200),
                priority: Priority::new(2),
                activation: ActivationSpec::Signal {
                    frame: "F".into(),
                    signal: "pend".into(),
                },
            })
    }

    #[test]
    fn triggering_path_has_no_sampling_delay() {
        let spec = two_signal_spec();
        let results = analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).unwrap();
        let lat = analyze_path(
            &spec,
            &results,
            &SignalPath {
                frame: "F".into(),
                signal: "trig".into(),
                task: "rx_trig".into(),
            },
        )
        .unwrap();
        assert_eq!(lat.sampling, Time::ZERO);
        assert!(lat.guaranteed_delivery);
        // Uncontended: 95-bit frame + 100-tick task.
        assert_eq!(lat.transport, Time::new(95));
        assert_eq!(lat.reaction, Time::new(100));
        assert_eq!(lat.total(), Time::new(195));
    }

    #[test]
    fn pending_path_pays_a_frame_gap() {
        let spec = two_signal_spec();
        let results = analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).unwrap();
        let lat = analyze_path(
            &spec,
            &results,
            &SignalPath {
                frame: "F".into(),
                signal: "pend".into(),
                task: "rx_pend".into(),
            },
        )
        .unwrap();
        assert!(!lat.guaranteed_delivery);
        // Sampling: the trig stream is periodic 2000, frame output δ⁺(2)
        // includes bus jitter 95 − 79 = 16.
        assert_eq!(lat.sampling, Time::new(2_016));
        assert_eq!(lat.total(), Time::new(2_016 + 95 + 200 + 100));
    }

    #[test]
    fn paths_enumeration() {
        let spec = two_signal_spec();
        let paths = signal_paths(&spec);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].task, "rx_trig");
        assert_eq!(paths[1].signal, "pend");
    }

    #[test]
    fn dangling_path_rejected() {
        let spec = two_signal_spec();
        let results = analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).unwrap();
        let bad = analyze_path(
            &spec,
            &results,
            &SignalPath {
                frame: "F".into(),
                signal: "ghost".into(),
                task: "rx_trig".into(),
            },
        );
        assert!(matches!(
            bad.unwrap_err(),
            SystemError::UnknownReference { kind: "signal", .. }
        ));
    }
}
