//! Global analysis configuration and results.

use std::collections::BTreeMap;

use hem_analysis::{AnalysisBudget, AnalysisConfig, TaskResult};
use hem_event_models::ModelRef;
use hem_obs::RecorderHandle;

use crate::diagnostics::ConvergenceStatus;
use crate::spec::AnalysisMode;

/// Configuration of the global system analysis.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Flat baseline or hierarchical event models.
    pub mode: AnalysisMode,
    /// Limits for each local busy-window analysis.
    pub local: AnalysisConfig,
    /// Maximum number of global fixed-point iterations.
    pub max_global_iterations: u64,
    /// Event-count horizon for the SEM fit used by
    /// [`AnalysisMode::FlatSem`] (larger = tighter baseline).
    pub sem_fit_horizon: u64,
    /// Apply the additive-closure refinement
    /// ([`AdditiveClosure`](hem_event_models::ops::AdditiveClosure)) to
    /// unpacked inner streams before they activate receivers. Off by
    /// default (paper-faithful Def. 9); switching it on can only tighten
    /// results.
    pub tighten_inner: bool,
    /// Stop early (reporting divergence) once some entity's worst-case
    /// response time has grown strictly — with non-shrinking increments —
    /// for this many consecutive global iterations. `0` disables the
    /// heuristic. Converging propagation chains grow for at most about
    /// as many iterations as the chain is deep and with shrinking
    /// increments near the fixed point, so the default of 12 is
    /// conservative for realistic topologies; raise it for unusually
    /// deep task chains.
    pub divergence_streak: u64,
    /// Number of analysis threads. `0` (the default) resolves from the
    /// `HEM_THREADS` environment variable, falling back to `1`
    /// (sequential). The engine is bit-for-bit deterministic in this
    /// value: every thread count produces identical results,
    /// diagnostics, and recorder counters (see `docs/PARALLELISM.md`).
    pub threads: usize,
    /// Replace resolved event models with closed-form
    /// [`AnalyticCurve`](hem_event_models::AnalyticCurve) fast paths
    /// where an exact lift exists (see `docs/CURVES.md`). `None` (the
    /// default) resolves from the `HEM_ANALYTIC` environment variable,
    /// falling back to enabled. Results are bit-for-bit identical either
    /// way; the flag only trades query speed, so it does not participate
    /// in warm-start compatibility.
    pub analytic: Option<bool>,
}

impl SystemConfig {
    /// A configuration with default limits for the given mode.
    #[must_use]
    pub fn new(mode: AnalysisMode) -> Self {
        SystemConfig {
            mode,
            local: AnalysisConfig::default(),
            max_global_iterations: 64,
            sem_fit_horizon: 64,
            tighten_inner: false,
            divergence_streak: 12,
            threads: 0,
            analytic: None,
        }
    }

    /// This configuration using the given number of analysis threads
    /// (`0` = resolve from `HEM_THREADS`, default `1`).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The effective thread count: `threads` when non-zero, otherwise
    /// the `HEM_THREADS` environment variable, otherwise `1`.
    #[must_use]
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::env::var("HEM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    }

    /// This configuration with the analytic fast path pinned on or off
    /// (`None` = resolve from `HEM_ANALYTIC`, default enabled).
    #[must_use]
    pub fn with_analytic(mut self, analytic: Option<bool>) -> Self {
        self.analytic = analytic;
        self
    }

    /// Whether the analytic fast path is in effect: the explicit
    /// `analytic` setting when present, otherwise the `HEM_ANALYTIC`
    /// environment variable (`0` / `false` / `off` disable), otherwise
    /// enabled.
    #[must_use]
    pub fn analytic_enabled(&self) -> bool {
        if let Some(flag) = self.analytic {
            return flag;
        }
        match std::env::var("HEM_ANALYTIC") {
            Ok(v) => !matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "0" | "false" | "off"
            ),
            Err(_) => true,
        }
    }

    /// This configuration with the given wall-clock budget applied to
    /// the whole analysis (global iterations and every local busy
    /// window).
    #[must_use]
    pub fn with_budget(mut self, budget: AnalysisBudget) -> Self {
        self.local.budget = budget;
        self
    }

    /// This configuration reporting to the given recorder (global
    /// iterations, every local busy window, and every event-model
    /// cache).
    #[must_use]
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        self.local.recorder = recorder;
        self
    }
}

/// The outcome of a global analysis.
///
/// Besides the response times that the paper's Table 3 reports, the
/// result keeps the final event models — frame output streams and
/// unpacked per-signal streams — which is what Figure 4 plots.
///
/// A result can be **partial**: [`analyze_robust`](crate::analyze_robust)
/// returns the work done so far even when the analysis did not converge.
/// [`SystemResults::is_complete`] distinguishes the cases, and
/// [`SystemResults::task_convergence`] /
/// [`SystemResults::frame_convergence`] report each entity's status.
/// Response times in a partial result are **lower bounds on the true
/// worst case**, not safe bounds — they must never be used to certify
/// deadlines.
#[derive(Debug)]
pub struct SystemResults {
    pub(crate) mode: AnalysisMode,
    pub(crate) iterations: u64,
    pub(crate) complete: bool,
    pub(crate) task_results: BTreeMap<String, TaskResult>,
    pub(crate) frame_results: BTreeMap<String, TaskResult>,
    pub(crate) task_convergence: BTreeMap<String, ConvergenceStatus>,
    pub(crate) frame_convergence: BTreeMap<String, ConvergenceStatus>,
    pub(crate) task_activations: BTreeMap<String, ModelRef>,
    pub(crate) frame_inputs: BTreeMap<String, ModelRef>,
    pub(crate) frame_outputs: BTreeMap<String, ModelRef>,
    pub(crate) unpacked_signals: BTreeMap<String, ModelRef>,
}

impl SystemResults {
    /// The analysis mode these results were computed under.
    #[must_use]
    pub fn mode(&self) -> AnalysisMode {
        self.mode
    }

    /// Whether the analysis converged. Response times of an incomplete
    /// result are lower bounds on the truth, not safe worst cases.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Convergence status of a task (see [`ConvergenceStatus`]).
    #[must_use]
    pub fn task_convergence(&self, name: &str) -> Option<ConvergenceStatus> {
        self.task_convergence.get(name).copied()
    }

    /// Convergence status of a frame (see [`ConvergenceStatus`]).
    #[must_use]
    pub fn frame_convergence(&self, name: &str) -> Option<ConvergenceStatus> {
        self.frame_convergence.get(name).copied()
    }

    /// Number of global iterations until the fixed point.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Response-time result of a task, if it exists.
    #[must_use]
    pub fn task(&self, name: &str) -> Option<&TaskResult> {
        self.task_results.get(name)
    }

    /// Response-time result of a frame, if it exists.
    #[must_use]
    pub fn frame(&self, name: &str) -> Option<&TaskResult> {
        self.frame_results.get(name)
    }

    /// All task results, ordered by name.
    pub fn tasks(&self) -> impl Iterator<Item = (&str, &TaskResult)> {
        self.task_results.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All frame results, ordered by name.
    pub fn frames(&self) -> impl Iterator<Item = (&str, &TaskResult)> {
        self.frame_results.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The final activation event model of a task (what its local
    /// analysis saw in the last iteration).
    #[must_use]
    pub fn task_activation(&self, name: &str) -> Option<&ModelRef> {
        self.task_activations.get(name)
    }

    /// The frame-activation stream the bus analysis consumed (the outer
    /// stream before transport; the SEM fit under `FlatSem`).
    #[must_use]
    pub fn frame_activation(&self, name: &str) -> Option<&ModelRef> {
        self.frame_inputs.get(name)
    }

    /// The output stream of a frame after bus transport (the flat /
    /// outer view) — the black-dotted curve of the paper's Figure 4.
    #[must_use]
    pub fn frame_output(&self, name: &str) -> Option<&ModelRef> {
        self.frame_outputs.get(name)
    }

    /// The unpacked stream of `signal` transported by `frame` after bus
    /// transport — the per-task curves of Figure 4. Present only under
    /// [`AnalysisMode::Hierarchical`].
    #[must_use]
    pub fn unpacked_signal(&self, frame: &str, signal: &str) -> Option<&ModelRef> {
        self.unpacked_signals.get(&signal_key(frame, signal))
    }

    /// Every response time, keyed by prefixed entity (`task:<name>` /
    /// `frame:<name>`) — a convenient flattened view for diffing two
    /// runs, e.g. asserting incremental results equal from-scratch ones.
    #[must_use]
    pub fn response_times(&self) -> BTreeMap<String, hem_analysis::ResponseTime> {
        self.frame_results
            .iter()
            .map(|(k, v)| (format!("frame:{k}"), v.response))
            .chain(
                self.task_results
                    .iter()
                    .map(|(k, v)| (format!("task:{k}"), v.response)),
            )
            .collect()
    }
}

pub(crate) fn signal_key(frame: &str, signal: &str) -> String {
    format!("{frame}/{signal}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults() {
        let c = SystemConfig::new(AnalysisMode::Hierarchical);
        assert_eq!(c.mode, AnalysisMode::Hierarchical);
        assert!(c.max_global_iterations >= 8);
    }

    #[test]
    fn explicit_threads_win_over_env() {
        let c = SystemConfig::new(AnalysisMode::Hierarchical).with_threads(4);
        assert_eq!(c.resolved_threads(), 4);
    }

    #[test]
    fn key_format() {
        assert_eq!(signal_key("F1", "s2"), "F1/s2");
    }
}
