//! Design-space exploration: search over priority orders, signal
//! packings, and period mutations (`hem explore`).
//!
//! The paper frames hierarchical analysis as a *design* tool — "which
//! packing and priority order meets the deadlines?" — and this module
//! turns the single-shot analysis into that search. An
//! [`ExploreProblem`] describes a candidate space around a base
//! [`SystemSpec`]:
//!
//! * **packings** — restricted-growth-string partitions of one bus's
//!   signals into direct frames ([`PackingSpace::Partitions`]),
//! * **priority orders** — per-resource permutations seeded by the
//!   declared order, Audsley's OPA, deadline-monotonic, and
//!   seed-deterministic shuffles ([`PrioritySpace`]),
//! * **period mutations** — per-signal alternative source periods
//!   ([`PeriodChoice`]).
//!
//! [`explore`] enumerates candidates in a deterministic neighborhood
//! order — packings outermost (a packing change is structural and
//! invalidates warm starts), then period combinations, then priority
//! orders — so that adjacent candidates differ only in priorities or a
//! single source and the damage cone of
//! [`analyze_incremental`](crate::analyze_incremental()) stays small.
//! Every candidate first faces the cheap **necessary tests** of
//! [`hem_analysis::necessary`] (utilization bound, η⁺ burst load, EDF
//! demand bound); only admitted candidates pay for a full fixed point,
//! chained through per-packing [`WarmStart`] snapshots.
//!
//! # Determinism
//!
//! For a fixed problem (including its `seed`), the outcome —
//! candidate visit order, per-candidate verdicts, prune counts, best
//! index, and the `CandidatesVisited` / `CandidatesPruned` /
//! `ExploreWarmHits` counters — is bit-for-bit identical at every
//! thread count. Packings are evaluated in parallel, but candidates
//! within a packing run sequentially on one worker, and all
//! aggregation happens in enumeration order.
//!
//! See `docs/EXPLORATION.md` for the full contract and CLI usage.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hem_analysis::assignment::{audsley, deadline_monotonic, DeadlineTask, Scheduling};
use hem_analysis::necessary::{rejection, LoadTask, ResourceLoad};
use hem_analysis::Priority;
use hem_autosar_com::{FrameType, TransferProperty};
use hem_can::CanFrameConfig;
use hem_core::PendingInner;
use hem_event_models::ops::OrJoin;
use hem_event_models::{EventModelExt, ModelRef, StandardEventModel};
use hem_obs::Counter;
use hem_time::Time;

use crate::dsl::{Scenario, SourceDecl};
use crate::path::{analyze_path, signal_paths};
use crate::spec::{ActivationSpec, FrameSpec, SystemSpec, TaskSpec};
use crate::warm::{analyze_incremental, WarmStart};
use crate::{SystemConfig, SystemError};

/// Horizon over which the utilization necessary test lower-bounds
/// long-run rates (ticks).
const NECESSARY_HORIZON: i64 = 1_000_000;

/// Deadline stand-in for tasks without one when seeding OPA (far
/// beyond any realistic response; effectively "unconstrained").
const FAR_DEADLINE: i64 = i64::MAX / 8;

/// Where a period mutation applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeriodSite {
    /// The external source of `signal` carried by `frame` (names per
    /// the **base** spec).
    Signal {
        /// Carrying frame in the base spec.
        frame: String,
        /// Signal name.
        signal: String,
    },
    /// The external activation of a task.
    Task(String),
}

impl PeriodSite {
    fn label(&self) -> String {
        match self {
            PeriodSite::Signal { frame, signal } => format!("{frame}/{signal}"),
            PeriodSite::Task(task) => format!("task:{task}"),
        }
    }
}

/// One period-mutation axis: the site's external source takes each of
/// `periods` in turn. The first entry is the baseline and keeps the
/// original event model (jitter included); later entries substitute a
/// plain periodic source with that period.
#[derive(Debug, Clone)]
pub struct PeriodChoice {
    /// Mutated source site.
    pub site: PeriodSite,
    /// Candidate periods; index 0 is the baseline.
    pub periods: Vec<Time>,
}

/// The packing axis of the candidate space.
#[derive(Debug, Clone)]
pub enum PackingSpace {
    /// Keep the base spec's frames untouched.
    Fixed,
    /// Enumerate all restricted-growth partitions of `bus`'s signals
    /// (taken in declaration order across its frames) into direct
    /// frames. The partition equal to the base grouping reuses the
    /// base frames verbatim, so the default configuration is always
    /// among the candidates.
    Partitions {
        /// The repacked bus.
        bus: String,
        /// Payload bytes contributed by each signal (flatten order).
        /// `None` derives `max(1, payload / signal_count)` from each
        /// signal's original frame.
        widths: Option<Vec<u8>>,
    },
}

/// The priority axis: how many orders to try per resource and which
/// seeds to include.
#[derive(Debug, Clone)]
pub struct PrioritySpace {
    /// Cap on priority orders per resource (≥ 1; the declared order is
    /// always first).
    pub max_orders_per_resource: usize,
    /// Seed with Audsley's optimal priority assignment where every
    /// task of the resource admits a deadline (missing deadlines are
    /// treated as unconstrained).
    pub opa_seed: bool,
    /// Seed with the deadline-monotonic order when the resource has
    /// deadline-annotated tasks.
    pub dm_seed: bool,
    /// Additional seed-deterministic random shuffles to append.
    pub random_orders: usize,
}

impl Default for PrioritySpace {
    fn default() -> Self {
        PrioritySpace {
            max_orders_per_resource: 4,
            opa_seed: true,
            dm_seed: true,
            random_orders: 2,
        }
    }
}

impl PrioritySpace {
    /// The space containing only the declared priority order.
    #[must_use]
    pub fn declared_only() -> Self {
        PrioritySpace {
            max_orders_per_resource: 1,
            opa_seed: false,
            dm_seed: false,
            random_orders: 0,
        }
    }
}

/// What "best" means among feasible candidates (minimized).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Largest task worst-case response time, restricted to
    /// deadline-annotated tasks when any exist.
    WorstTaskResponse,
    /// Largest end-to-end signal-path latency
    /// ([`analyze_path`](crate::path::analyze_path()) over every signal
    /// path); falls back to [`Objective::WorstTaskResponse`] when the
    /// spec has no signal paths.
    WorstPathLatency,
}

/// A candidate space around a base spec.
#[derive(Debug, Clone)]
pub struct ExploreProblem {
    /// The base system; the default configuration is this spec
    /// verbatim.
    pub base: SystemSpec,
    /// Relative deadlines per task name. Feasibility = the analysis
    /// converges **and** every annotated task has `r⁺ ≤ deadline`.
    /// Deadlines are fixed inputs: period mutations do not rescale
    /// them.
    pub deadlines: BTreeMap<String, Time>,
    /// Packing axis.
    pub packing: PackingSpace,
    /// Priority axis.
    pub priorities: PrioritySpace,
    /// Period-mutation axes (cartesian product).
    pub period_choices: Vec<PeriodChoice>,
    /// Ranking objective among feasible candidates.
    pub objective: Objective,
    /// Seed for the random priority shuffles.
    pub seed: u64,
    /// Hard cap on enumerated candidates; enumeration stops once
    /// reached (deterministically, in visit order).
    pub max_candidates: usize,
    /// Run the cheap necessary tests before each fixed point. Turning
    /// this off forces an exhaustive search (used by the soundness
    /// property tests).
    pub use_necessary_tests: bool,
}

impl ExploreProblem {
    /// A problem with an empty candidate space around `base`: fixed
    /// packing, declared priorities only, no period mutations.
    #[must_use]
    pub fn new(base: SystemSpec) -> Self {
        ExploreProblem {
            base,
            deadlines: BTreeMap::new(),
            packing: PackingSpace::Fixed,
            priorities: PrioritySpace::declared_only(),
            period_choices: Vec::new(),
            objective: Objective::WorstTaskResponse,
            seed: 0,
            max_candidates: 4096,
            use_necessary_tests: true,
        }
    }

    /// Derives a problem from a parsed scenario file, the way the
    /// `run_scenario explore` verb does:
    ///
    /// * deadlines come from explicit `deadline=` annotations, else
    ///   implicitly from the period of the task's (transitively
    ///   resolved) periodic activation source;
    /// * the first bus whose frames are all direct — and that no task
    ///   observes via `frame:` arrivals — becomes the packing axis;
    /// * priorities use [`PrioritySpace::default`].
    #[must_use]
    pub fn from_scenario(scenario: &Scenario, seed: u64) -> Self {
        let base = scenario.to_spec();
        let mut deadlines = BTreeMap::new();
        for task in &scenario.tasks {
            let deadline = task
                .deadline
                .or_else(|| implicit_deadline(scenario, &task.activation, 0));
            if let Some(d) = deadline {
                deadlines.insert(task.name.clone(), Time::new(d));
            }
        }
        let packing = scenario
            .buses
            .iter()
            .find(|bus| {
                let frames: Vec<_> = scenario
                    .frames
                    .iter()
                    .filter(|f| f.bus == bus.name)
                    .collect();
                let signals: usize = frames.iter().map(|f| f.signals.len()).sum();
                !frames.is_empty()
                    && (2..=8).contains(&signals)
                    && frames.iter().all(|f| f.frame_type == FrameType::Direct)
                    && !scenario.tasks.iter().any(|t| {
                        matches!(&t.activation, SourceDecl::FrameArrivals(f)
                            if frames.iter().any(|fr| &fr.name == f))
                    })
            })
            .map_or(PackingSpace::Fixed, |bus| PackingSpace::Partitions {
                bus: bus.name.clone(),
                widths: None,
            });
        ExploreProblem {
            deadlines,
            packing,
            priorities: PrioritySpace::default(),
            max_candidates: 1024,
            seed,
            ..ExploreProblem::new(base)
        }
    }
}

/// Follows a scenario activation to a periodic source and returns its
/// period, if one is reachable within a few hops.
fn implicit_deadline(scenario: &Scenario, source: &SourceDecl, depth: usize) -> Option<i64> {
    if depth > 8 {
        return None;
    }
    match source {
        SourceDecl::Periodic { period, .. } => Some(*period),
        SourceDecl::TaskOutput(task) => {
            let task = scenario.tasks.iter().find(|t| &t.name == task)?;
            implicit_deadline(scenario, &task.activation, depth + 1)
        }
        SourceDecl::Signal { frame, signal } => {
            let frame = scenario.frames.iter().find(|f| &f.name == frame)?;
            let signal = frame.signals.iter().find(|s| &s.name == signal)?;
            implicit_deadline(scenario, &signal.source, depth + 1)
        }
        SourceDecl::FrameArrivals(_) => None,
    }
}

/// A concrete signal-to-frame partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packing {
    /// The repacked bus.
    pub bus: String,
    /// Restricted-growth assignment: `assignment[i]` is the frame
    /// group of the i-th signal in flatten order.
    pub assignment: Vec<usize>,
    /// Signal names per group, in group order.
    pub groups: Vec<Vec<String>>,
}

impl Packing {
    /// Human-readable label, e.g. `{s1,s2} {s3}`.
    #[must_use]
    pub fn label(&self) -> String {
        self.groups
            .iter()
            .map(|g| format!("{{{}}}", g.join(",")))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// One fully specified candidate configuration.
#[derive(Debug, Clone)]
pub struct CandidateConfig {
    /// Chosen packing (`None` under [`PackingSpace::Fixed`]).
    pub packing: Option<Packing>,
    /// Chosen period per mutation site (site label → period).
    pub periods: Vec<(String, Time)>,
    /// Priority orders per resource (`cpu:<name>` / `bus:<name>` →
    /// entity names, highest priority first).
    pub orders: BTreeMap<String, Vec<String>>,
    /// Whether this candidate reproduces the base spec exactly (base
    /// grouping, baseline periods, declared orders).
    pub is_default: bool,
}

/// The verdict on one candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The packing cannot work at all (e.g. a direct frame whose
    /// signals are all pending never sends); no spec was analyzed.
    InvalidPacking(String),
    /// Rejected by the named necessary test; the full analysis never
    /// ran.
    Pruned(&'static str),
    /// Fully analyzed and not feasible.
    Infeasible {
        /// Whether the fixed point converged (a diverging candidate is
        /// infeasible by definition).
        converged: bool,
        /// First deadline miss (`task`, `r⁺`, `deadline`) when the
        /// analysis converged.
        miss: Option<(String, Time, Time)>,
    },
    /// Converged with every deadline met.
    Feasible {
        /// Objective value (smaller is better).
        score: Time,
    },
}

/// Everything recorded about one visited candidate.
#[derive(Debug, Clone)]
pub struct CandidateReport {
    /// The candidate configuration.
    pub config: CandidateConfig,
    /// Its verdict.
    pub verdict: Verdict,
    /// Largest task `r⁺` (analyzed candidates only).
    pub worst_task_response: Option<Time>,
    /// Flattened response times (analyzed candidates only), as in
    /// [`SystemResults::response_times`](crate::SystemResults::response_times).
    pub response_times: Option<BTreeMap<String, hem_analysis::ResponseTime>>,
    /// Whether the fixed point reused the previous candidate's warm
    /// snapshot.
    pub warm: bool,
    /// Fraction of resources re-analyzed (analyzed candidates only).
    pub cone_fraction: Option<f64>,
}

/// The outcome of an exploration run.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// One report per visited candidate, in deterministic visit order.
    pub reports: Vec<CandidateReport>,
    /// Index of the best feasible candidate (lowest objective score,
    /// earliest visit on ties).
    pub best: Option<usize>,
    /// Index of the candidate reproducing the base configuration, when
    /// it was visited.
    pub default_index: Option<usize>,
    /// Candidates enumerated (= `reports.len()`, mirrored in the
    /// `CandidatesVisited` counter).
    pub visited: u64,
    /// Candidates rejected by necessary tests (`CandidatesPruned`).
    pub pruned: u64,
    /// Candidates with a [`Verdict::Feasible`] verdict.
    pub feasible: u64,
    /// Analyzed candidates that reused a warm snapshot
    /// (`ExploreWarmHits`).
    pub warm_hits: u64,
    /// Mean damage-cone fraction over analyzed candidates (0 when none
    /// ran).
    pub mean_cone_fraction: f64,
}

impl ExploreOutcome {
    /// Percentage of visited candidates eliminated before any fixed
    /// point ran (pruned or invalid).
    #[must_use]
    pub fn pruned_pct(&self) -> f64 {
        if self.visited == 0 {
            return 0.0;
        }
        self.pruned as f64 * 100.0 / self.visited as f64
    }

    /// The best feasible candidate's report, if any.
    #[must_use]
    pub fn best_report(&self) -> Option<&CandidateReport> {
        self.best.map(|i| &self.reports[i])
    }
}

// ---------------------------------------------------------------------------
// Deterministic RNG (splitmix64) for priority shuffles.

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

fn salt(name: &str) -> u64 {
    // FNV-1a, so per-resource streams decorrelate deterministically.
    name.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01B3)
    })
}

// ---------------------------------------------------------------------------
// Restricted-growth-string partition enumeration.

/// All partitions of `n` items as restricted-growth strings, in
/// lexicographic order (`[0,0,..,0]` first).
#[must_use]
pub fn partitions(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = vec![0usize; n];
    grow(&mut out, &mut current, 1, n);
    out
}

fn grow(out: &mut Vec<Vec<usize>>, current: &mut Vec<usize>, index: usize, n: usize) {
    if index == n {
        out.push(current.clone());
        return;
    }
    let max = current[..index].iter().copied().max().unwrap_or(0);
    for group in 0..=max + 1 {
        current[index] = group;
        grow(out, current, index + 1, n);
    }
}

// ---------------------------------------------------------------------------
// Source-level lowering for the necessary tests.

/// Optimistic source components of an activation: streams whose `η`
/// curves are pointwise ≤ the activation the analysis derives. An
/// OR-join yields several components (rates add); an AND-join yields
/// none (sound under-approximation).
fn source_components(
    spec: &SystemSpec,
    activation: &ActivationSpec,
    in_progress: &mut BTreeSet<String>,
) -> Vec<ModelRef> {
    match activation {
        ActivationSpec::External(model) => vec![model.clone()],
        ActivationSpec::TaskOutput(task) => {
            if !in_progress.insert(task.clone()) {
                return Vec::new();
            }
            let out = spec
                .tasks
                .iter()
                .find(|t| &t.name == task)
                .map(|t| source_components(spec, &t.activation, in_progress))
                .unwrap_or_default();
            in_progress.remove(task);
            out
        }
        ActivationSpec::Signal { frame, signal } => {
            let Some(frame) = spec.frames.iter().find(|f| &f.name == frame) else {
                return Vec::new();
            };
            let Some(signal) = frame.signals.iter().find(|s| &s.name == signal) else {
                return Vec::new();
            };
            match signal.transfer {
                // A triggering signal's deliveries mirror its own
                // source events one-to-one.
                TransferProperty::Triggering => {
                    source_components(spec, &signal.source, in_progress)
                }
                // A pending signal is resampled by the frame's sends
                // (paper eqs. (7),(8)): its η⁻ is zero (values can be
                // overwritten before transmission), so the only sound
                // optimistic model is `PendingInner` over the two
                // source-level unions — NOT the raw frame rate, which
                // would over-estimate demand and prune feasible
                // packings.
                TransferProperty::Pending => {
                    let sig = source_components(spec, &signal.source, in_progress);
                    let frames = frame_components(spec, frame, in_progress);
                    pending_component(sig, frames).into_iter().collect()
                }
            }
        }
        ActivationSpec::FrameArrivals(frame) => spec
            .frames
            .iter()
            .find(|f| &f.name == frame)
            .map(|f| frame_components(spec, f, in_progress))
            .unwrap_or_default(),
        ActivationSpec::AnyOf(parts) => parts
            .iter()
            .flat_map(|p| source_components(spec, p, in_progress))
            .collect(),
        ActivationSpec::AllOf(_) => Vec::new(),
    }
}

/// A sound optimistic model of a pending signal's deliveries: the
/// signal resampled by the frame's send stream. `PendingInner`'s δ⁻ is
/// monotone in both arguments — sparser source events and a
/// jitter-free frame stream both push δ⁻ up — so with optimistic
/// unions on both sides its η⁺ is pointwise ≤ the delivery stream the
/// full analysis derives.
fn pending_component(sig: Vec<ModelRef>, frames: Vec<ModelRef>) -> Option<ModelRef> {
    let sig = OrJoin::new(sig).ok()?.shared();
    let frames = OrJoin::new(frames).ok()?.shared();
    Some(PendingInner::new(sig, frames).shared())
}

/// Optimistic components of a frame's send stream.
fn frame_components(
    spec: &SystemSpec,
    frame: &FrameSpec,
    in_progress: &mut BTreeSet<String>,
) -> Vec<ModelRef> {
    let mut parts = Vec::new();
    match frame.frame_type {
        FrameType::Periodic(period) | FrameType::Mixed(period) => {
            if let Ok(model) = StandardEventModel::periodic(period) {
                parts.push(model.shared());
            }
        }
        FrameType::Direct => {}
    }
    if !matches!(frame.frame_type, FrameType::Periodic(_)) {
        for signal in &frame.signals {
            if signal.transfer == TransferProperty::Triggering {
                parts.extend(source_components(spec, &signal.source, in_progress));
            }
        }
    }
    parts
}

/// The per-resource candidate loads of a spec, for the necessary
/// tests.
fn lower_loads(
    spec: &SystemSpec,
    deadlines: &BTreeMap<String, Time>,
) -> Vec<(String, Scheduling, Vec<LoadTask>)> {
    let mut loads = Vec::new();
    for cpu in &spec.cpus {
        let mut tasks = Vec::new();
        for task in spec.tasks.iter().filter(|t| t.cpu == cpu.name) {
            let mut guard = BTreeSet::new();
            for input in source_components(spec, &task.activation, &mut guard) {
                tasks.push(LoadTask {
                    name: task.name.clone(),
                    wcet: task.wcet,
                    deadline: deadlines.get(&task.name).copied(),
                    input,
                });
            }
        }
        loads.push((format!("cpu:{}", cpu.name), Scheduling::Preemptive, tasks));
    }
    for bus in &spec.buses {
        let mut frames = Vec::new();
        for frame in spec.frames.iter().filter(|f| f.bus == bus.name) {
            let Ok(config) = CanFrameConfig::new(frame.format, frame.payload_bytes) else {
                continue;
            };
            let wcet = bus.config.transmission_time(&config).r_plus;
            let mut guard = BTreeSet::new();
            for input in frame_components(spec, frame, &mut guard) {
                frames.push(LoadTask {
                    name: frame.name.clone(),
                    wcet,
                    deadline: None,
                    input,
                });
            }
        }
        loads.push((
            format!("bus:{}", bus.name),
            Scheduling::NonPreemptive,
            frames,
        ));
    }
    loads
}

/// Runs the necessary-test battery over every resource of `spec`;
/// returns the first rejecting test's name.
fn prune_reason(
    spec: &SystemSpec,
    deadlines: &BTreeMap<String, Time>,
    analysis: &hem_analysis::AnalysisConfig,
) -> Option<&'static str> {
    for (resource, scheduling, tasks) in lower_loads(spec, deadlines) {
        let load = ResourceLoad {
            resource: &resource,
            scheduling,
            tasks: &tasks,
            config: analysis,
            horizon: Time::new(NECESSARY_HORIZON),
        };
        if let Some(test) = rejection(&load) {
            return Some(test);
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Candidate enumeration.

/// One signal site of the repacked bus.
#[derive(Debug, Clone)]
struct PackSite {
    /// Original carrying frame (base spec).
    frame: String,
    signal: crate::spec::SignalSpec,
    width: u8,
    format: hem_can::FrameFormat,
}

struct Chunk {
    packing: Option<Packing>,
    invalid: Option<String>,
    /// Spec with the packing applied, priorities and periods still at
    /// their base values.
    spec: SystemSpec,
    /// Base-spec `(frame, signal)` → repacked frame name.
    site_map: SiteMap,
    candidates: Vec<CandidateConfig>,
}

fn flatten_sites(spec: &SystemSpec, bus: &str, widths: Option<&[u8]>) -> Vec<PackSite> {
    let mut sites = Vec::new();
    for frame in spec.frames.iter().filter(|f| f.bus == bus) {
        let derived = (frame.payload_bytes / frame.signals.len().max(1) as u8).max(1);
        for signal in &frame.signals {
            sites.push(PackSite {
                frame: frame.name.clone(),
                signal: signal.clone(),
                width: derived,
                format: frame.format,
            });
        }
    }
    if let Some(widths) = widths {
        for (site, w) in sites.iter_mut().zip(widths) {
            site.width = *w;
        }
    }
    sites
}

/// The base spec's grouping as a restricted-growth string over the
/// flatten order, used to detect the default packing.
fn base_assignment(spec: &SystemSpec, bus: &str) -> Vec<usize> {
    let mut assignment = Vec::new();
    for (index, frame) in spec.frames.iter().filter(|f| f.bus == bus).enumerate() {
        assignment.extend(std::iter::repeat_n(index, frame.signals.len()));
    }
    assignment
}

/// Where each repacked signal landed: `(original frame, signal)` →
/// new carrier frame.
type SiteMap = BTreeMap<(String, String), String>;

/// Applies a partition to the base spec: the repacked bus's frames are
/// replaced by one direct frame per group (priority = group order) and
/// signal-activated receivers are re-pointed at their new carrier.
fn apply_packing(
    base: &SystemSpec,
    bus: &str,
    sites: &[PackSite],
    packing: &Packing,
) -> Result<(SystemSpec, SiteMap), String> {
    let groups = packing
        .assignment
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m + 1);
    let mut spec = base.clone();
    let mut site_map = BTreeMap::new();
    let mut new_frames: Vec<FrameSpec> = Vec::new();
    for g in 0..groups {
        let members: Vec<&PackSite> = sites
            .iter()
            .zip(&packing.assignment)
            .filter(|&(_, a)| *a == g)
            .map(|(s, _)| s)
            .collect();
        if members
            .iter()
            .all(|m| m.signal.transfer == TransferProperty::Pending)
        {
            return Err(format!(
                "group {} carries only pending signals and never sends",
                packing.groups[g].join(",")
            ));
        }
        let payload: u16 = members.iter().map(|m| u16::from(m.width)).sum();
        if payload > 8 {
            return Err(format!(
                "group {} needs {payload} payload bytes (max 8)",
                packing.groups[g].join(",")
            ));
        }
        let name = format!("{bus}_g{g}");
        for m in &members {
            site_map.insert((m.frame.clone(), m.signal.name.clone()), name.clone());
        }
        new_frames.push(FrameSpec {
            name,
            bus: bus.to_string(),
            frame_type: FrameType::Direct,
            payload_bytes: payload as u8,
            format: members[0].format,
            priority: Priority::new(g as u32 + 1),
            signals: members.iter().map(|m| m.signal.clone()).collect(),
        });
    }
    spec.frames.retain(|f| f.bus != bus);
    spec.frames.extend(new_frames);
    for task in &mut spec.tasks {
        retarget(&mut task.activation, &site_map);
    }
    Ok((spec, site_map))
}

fn retarget(activation: &mut ActivationSpec, site_map: &SiteMap) {
    match activation {
        ActivationSpec::Signal { frame, signal } => {
            if let Some(new_frame) = site_map.get(&(frame.clone(), signal.clone())) {
                *frame = new_frame.clone();
            }
        }
        ActivationSpec::AnyOf(parts) | ActivationSpec::AllOf(parts) => {
            for part in parts {
                retarget(part, site_map);
            }
        }
        _ => {}
    }
}

/// Priority-order variants for one resource: declared, then OPA, then
/// deadline-monotonic, then seeded shuffles — deduplicated and capped.
fn order_variants(
    declared: Vec<String>,
    deadline_tasks: &[DeadlineTask],
    scheduling: Scheduling,
    any_deadline: bool,
    problem: &ExploreProblem,
    resource: &str,
    analysis: &hem_analysis::AnalysisConfig,
) -> Vec<Vec<String>> {
    let space = &problem.priorities;
    let mut variants = vec![declared.clone()];
    if declared.len() > 1 {
        if space.opa_seed && any_deadline {
            if let Ok(Some(order)) = audsley(deadline_tasks, scheduling, analysis) {
                variants.push(order);
            }
        }
        if space.dm_seed && any_deadline {
            variants.push(deadline_monotonic(deadline_tasks));
        }
        let mut rng = Rng(problem.seed ^ salt(resource));
        for _ in 0..space.random_orders {
            let mut shuffled = declared.clone();
            rng.shuffle(&mut shuffled);
            variants.push(shuffled);
        }
    }
    let mut seen = Vec::new();
    variants.retain(|v| {
        if seen.contains(v) {
            false
        } else {
            seen.push(v.clone());
            true
        }
    });
    variants.truncate(space.max_orders_per_resource.max(1));
    variants
}

/// Entity names of a resource in declared priority order (highest
/// first, declaration order breaking ties).
fn declared_order<'a>(items: impl Iterator<Item = (&'a str, Priority)>) -> Vec<String> {
    let mut named: Vec<(String, Priority, usize)> = items
        .enumerate()
        .map(|(i, (name, prio))| (name.to_string(), prio, i))
        .collect();
    named.sort_by_key(|&(_, prio, index)| (prio, index));
    named.into_iter().map(|(name, _, _)| name).collect()
}

// ---------------------------------------------------------------------------
// The search itself.

/// Explores the candidate space and returns every verdict plus the
/// best feasible configuration. See the module docs for the
/// determinism contract.
///
/// # Errors
///
/// Returns the first [`SystemError`] (in visit order) raised by a
/// candidate's spec validation; analysis divergence is a verdict, not
/// an error.
pub fn explore(
    problem: &ExploreProblem,
    config: &SystemConfig,
) -> Result<ExploreOutcome, SystemError> {
    let recorder = config.local.recorder.clone();
    let chunks = enumerate(problem, config)?;
    let threads = config.resolved_threads();
    // Candidates inside a chunk share warm snapshots sequentially;
    // chunks are independent, so they fan out over the worker pool.
    // Inner analyses run single-threaded: parallelism across
    // candidates composes better and keeps thread counts from
    // oversubscribing.
    let inner = config.clone().with_threads(1);
    let chunk_results = run_chunks(chunks, threads, |chunk| evaluate(problem, &inner, chunk));

    let mut reports = Vec::new();
    for result in chunk_results {
        reports.extend(result?);
    }

    let mut outcome = ExploreOutcome {
        best: None,
        default_index: None,
        visited: reports.len() as u64,
        pruned: 0,
        feasible: 0,
        warm_hits: 0,
        mean_cone_fraction: 0.0,
        reports,
    };
    let mut cone_sum = 0.0;
    let mut analyzed = 0u64;
    let mut best: Option<(Time, usize)> = None;
    for (index, report) in outcome.reports.iter().enumerate() {
        if report.config.is_default {
            outcome.default_index = Some(index);
        }
        if report.warm {
            outcome.warm_hits += 1;
        }
        if let Some(cone) = report.cone_fraction {
            cone_sum += cone;
            analyzed += 1;
        }
        match report.verdict {
            Verdict::Pruned(_) => outcome.pruned += 1,
            Verdict::Feasible { score } => {
                outcome.feasible += 1;
                if best.is_none_or(|(b, _)| score < b) {
                    best = Some((score, index));
                }
            }
            _ => {}
        }
    }
    outcome.best = best.map(|(_, index)| index);
    if analyzed > 0 {
        outcome.mean_cone_fraction = cone_sum / analyzed as f64;
    }
    recorder.add(Counter::CandidatesVisited, outcome.visited);
    recorder.add(Counter::CandidatesPruned, outcome.pruned);
    recorder.add(Counter::ExploreWarmHits, outcome.warm_hits);
    Ok(outcome)
}

fn enumerate(problem: &ExploreProblem, config: &SystemConfig) -> Result<Vec<Chunk>, SystemError> {
    let base = &problem.base;
    // Packing chunks.
    let mut chunks: Vec<Chunk> = Vec::new();
    match &problem.packing {
        PackingSpace::Fixed => chunks.push(Chunk {
            packing: None,
            invalid: None,
            spec: base.clone(),
            site_map: BTreeMap::new(),
            candidates: Vec::new(),
        }),
        PackingSpace::Partitions { bus, widths } => {
            let sites = flatten_sites(base, bus, widths.as_deref());
            if sites.is_empty() {
                return Err(SystemError::UnknownReference {
                    kind: "bus",
                    name: bus.clone(),
                });
            }
            let default = base_assignment(base, bus);
            for assignment in partitions(sites.len()) {
                let groups_n = assignment.iter().copied().max().unwrap_or(0) + 1;
                let mut groups = vec![Vec::new(); groups_n];
                for (site, &g) in sites.iter().zip(&assignment) {
                    groups[g].push(site.signal.name.clone());
                }
                let packing = Packing {
                    bus: bus.clone(),
                    assignment: assignment.clone(),
                    groups,
                };
                let (spec, site_map, invalid) = if assignment == default {
                    // The base grouping keeps the base frames verbatim
                    // (names, payloads, priorities), so the default
                    // configuration is searched exactly as declared.
                    (base.clone(), BTreeMap::new(), None)
                } else {
                    match apply_packing(base, bus, &sites, &packing) {
                        Ok((spec, map)) => (spec, map, None),
                        Err(reason) => (base.clone(), BTreeMap::new(), Some(reason)),
                    }
                };
                chunks.push(Chunk {
                    packing: Some(packing),
                    invalid,
                    spec,
                    site_map,
                    candidates: Vec::new(),
                });
            }
        }
    }

    // Period combinations (cartesian, baseline-first).
    let mut period_combos: Vec<Vec<usize>> = vec![Vec::new()];
    for choice in &problem.period_choices {
        let mut next = Vec::new();
        for combo in &period_combos {
            for index in 0..choice.periods.len().max(1) {
                let mut c = combo.clone();
                c.push(index);
                next.push(c);
            }
        }
        period_combos = next;
    }

    let mut total = 0usize;
    'chunks: for chunk in &mut chunks {
        if chunk.invalid.is_some() {
            // One report stands in for the whole packing.
            chunk.candidates.push(CandidateConfig {
                packing: chunk.packing.clone(),
                periods: Vec::new(),
                orders: BTreeMap::new(),
                is_default: false,
            });
            total += 1;
            if total >= problem.max_candidates {
                break 'chunks;
            }
            continue;
        }
        let default_packing = chunk
            .packing
            .as_ref()
            .is_none_or(|p| p.assignment == base_assignment(base, &p.bus));

        // Priority variants per resource, on the chunk's spec (the
        // repacked bus has different frames per chunk).
        let mut resources: Vec<(String, Vec<Vec<String>>)> = Vec::new();
        for cpu in &chunk.spec.cpus {
            let tasks: Vec<&TaskSpec> = chunk
                .spec
                .tasks
                .iter()
                .filter(|t| t.cpu == cpu.name)
                .collect();
            if tasks.is_empty() {
                continue;
            }
            let declared = declared_order(tasks.iter().map(|t| (t.name.as_str(), t.priority)));
            let deadline_tasks: Vec<DeadlineTask> = tasks
                .iter()
                .map(|t| {
                    let mut guard = BTreeSet::new();
                    let input = source_components(&chunk.spec, &t.activation, &mut guard)
                        .into_iter()
                        .next()
                        .unwrap_or_else(far_periodic);
                    DeadlineTask::new(
                        &t.name,
                        t.bcet,
                        t.wcet,
                        problem
                            .deadlines
                            .get(&t.name)
                            .copied()
                            .unwrap_or(Time::new(FAR_DEADLINE)),
                        input,
                    )
                })
                .collect();
            let any_deadline = tasks
                .iter()
                .any(|t| problem.deadlines.contains_key(&t.name));
            let variants = order_variants(
                declared,
                &deadline_tasks,
                Scheduling::Preemptive,
                any_deadline,
                problem,
                &format!("cpu:{}", cpu.name),
                &config.local,
            );
            resources.push((format!("cpu:{}", cpu.name), variants));
        }
        for bus in &chunk.spec.buses {
            let frames: Vec<&FrameSpec> = chunk
                .spec
                .frames
                .iter()
                .filter(|f| f.bus == bus.name)
                .collect();
            if frames.is_empty() {
                continue;
            }
            let declared = declared_order(frames.iter().map(|f| (f.name.as_str(), f.priority)));
            let variants = order_variants(
                declared,
                &[],
                Scheduling::NonPreemptive,
                false,
                problem,
                &format!("bus:{}", bus.name),
                &config.local,
            );
            resources.push((format!("bus:{}", bus.name), variants));
        }

        // Cartesian product of order variants, declared-first.
        let mut order_combos: Vec<Vec<usize>> = vec![Vec::new()];
        for (_, variants) in &resources {
            let mut next = Vec::new();
            for combo in &order_combos {
                for index in 0..variants.len() {
                    let mut c = combo.clone();
                    c.push(index);
                    next.push(c);
                }
            }
            order_combos = next;
        }

        for period_combo in &period_combos {
            for order_combo in &order_combos {
                let periods: Vec<(String, Time)> = problem
                    .period_choices
                    .iter()
                    .zip(period_combo)
                    .map(|(choice, &i)| (choice.site.label(), choice.periods[i]))
                    .collect();
                let orders: BTreeMap<String, Vec<String>> = resources
                    .iter()
                    .zip(order_combo)
                    .map(|((name, variants), &i)| (name.clone(), variants[i].clone()))
                    .collect();
                let is_default = default_packing
                    && period_combo.iter().all(|&i| i == 0)
                    && order_combo.iter().all(|&i| i == 0);
                chunk.candidates.push(CandidateConfig {
                    packing: chunk.packing.clone(),
                    periods,
                    orders,
                    is_default,
                });
                total += 1;
                if total >= problem.max_candidates {
                    break 'chunks;
                }
            }
        }
    }
    chunks.retain(|c| !c.candidates.is_empty());
    Ok(chunks)
}

fn far_periodic() -> ModelRef {
    StandardEventModel::periodic(Time::new(FAR_DEADLINE))
        .expect("constant far period is valid")
        .shared()
}

/// Builds the concrete spec of one candidate from its chunk's spec.
fn candidate_spec(
    problem: &ExploreProblem,
    chunk: &Chunk,
    candidate: &CandidateConfig,
) -> SystemSpec {
    let mut spec = chunk.spec.clone();
    // Period mutations: baseline keeps the original model (and its Arc
    // identity, so the warm-start diff sees no change).
    for (choice, (_, period)) in problem.period_choices.iter().zip(&candidate.periods) {
        let baseline = choice.periods.first().is_some_and(|p| p == period);
        if baseline {
            continue;
        }
        let model = StandardEventModel::periodic(*period)
            .expect("candidate periods are positive")
            .shared();
        match &choice.site {
            PeriodSite::Task(task) => {
                if let Some(task) = spec.tasks.iter_mut().find(|t| &t.name == task) {
                    if matches!(task.activation, ActivationSpec::External(_)) {
                        task.activation = ActivationSpec::External(model.clone());
                    }
                }
            }
            PeriodSite::Signal { frame, signal } => {
                let target = chunk
                    .site_map
                    .get(&(frame.clone(), signal.clone()))
                    .cloned()
                    .unwrap_or_else(|| frame.clone());
                if let Some(signal) = spec
                    .frames
                    .iter_mut()
                    .filter(|f| f.name == target)
                    .flat_map(|f| f.signals.iter_mut())
                    .find(|s| &s.name == signal)
                {
                    if matches!(signal.source, ActivationSpec::External(_)) {
                        signal.source = ActivationSpec::External(model.clone());
                    }
                }
            }
        }
    }
    // Priority orders: position in the order list becomes the
    // priority value.
    for (resource, order) in &candidate.orders {
        if let Some(cpu) = resource.strip_prefix("cpu:") {
            for task in spec.tasks.iter_mut().filter(|t| t.cpu == cpu) {
                if let Some(pos) = order.iter().position(|n| n == &task.name) {
                    task.priority = Priority::new(pos as u32 + 1);
                }
            }
        } else if let Some(bus) = resource.strip_prefix("bus:") {
            for frame in spec.frames.iter_mut().filter(|f| f.bus == bus) {
                if let Some(pos) = order.iter().position(|n| n == &frame.name) {
                    frame.priority = Priority::new(pos as u32 + 1);
                }
            }
        }
    }
    spec
}

/// Evaluates one chunk sequentially, chaining warm snapshots.
fn evaluate(
    problem: &ExploreProblem,
    config: &SystemConfig,
    chunk: Chunk,
) -> Result<Vec<CandidateReport>, SystemError> {
    let mut reports = Vec::new();
    if let Some(reason) = &chunk.invalid {
        for candidate in &chunk.candidates {
            reports.push(CandidateReport {
                config: candidate.clone(),
                verdict: Verdict::InvalidPacking(reason.clone()),
                worst_task_response: None,
                response_times: None,
                warm: false,
                cone_fraction: None,
            });
        }
        return Ok(reports);
    }
    let mut chain: Option<WarmStart> = None;
    for candidate in &chunk.candidates {
        let spec = candidate_spec(problem, &chunk, candidate);
        if problem.use_necessary_tests {
            if let Some(test) = prune_reason(&spec, &problem.deadlines, &config.local) {
                reports.push(CandidateReport {
                    config: candidate.clone(),
                    verdict: Verdict::Pruned(test),
                    worst_task_response: None,
                    response_times: None,
                    warm: false,
                    cone_fraction: None,
                });
                continue;
            }
        }
        let outcome = analyze_incremental(&spec, config, chain.as_ref())?;
        let warm = outcome.reuse.warm;
        let cone = outcome.reuse.cone_fraction();
        if let Some(snapshot) = outcome.snapshot {
            chain = Some(snapshot);
        }
        let results = outcome.analysis.results;
        let worst = results
            .tasks()
            .map(|(_, r)| r.response.r_plus)
            .max()
            .unwrap_or(Time::ZERO);
        let miss = problem
            .deadlines
            .iter()
            .filter_map(|(task, &deadline)| {
                let r = results.task(task)?.response.r_plus;
                (r > deadline).then(|| (task.clone(), r, deadline))
            })
            .next();
        let verdict = if !results.is_complete() {
            Verdict::Infeasible {
                converged: false,
                miss: None,
            }
        } else if let Some(miss) = miss {
            Verdict::Infeasible {
                converged: true,
                miss: Some(miss),
            }
        } else {
            Verdict::Feasible {
                score: score(problem, &spec, &results, worst),
            }
        };
        reports.push(CandidateReport {
            config: candidate.clone(),
            verdict,
            worst_task_response: Some(worst),
            response_times: Some(results.response_times()),
            warm,
            cone_fraction: Some(cone),
        });
    }
    Ok(reports)
}

fn score(
    problem: &ExploreProblem,
    spec: &SystemSpec,
    results: &crate::SystemResults,
    worst_task: Time,
) -> Time {
    match problem.objective {
        Objective::WorstTaskResponse => {
            if problem.deadlines.is_empty() {
                worst_task
            } else {
                problem
                    .deadlines
                    .keys()
                    .filter_map(|task| Some(results.task(task)?.response.r_plus))
                    .max()
                    .unwrap_or(worst_task)
            }
        }
        Objective::WorstPathLatency => signal_paths(spec)
            .iter()
            .filter_map(|path| analyze_path(spec, results, path).ok())
            .map(|latency| latency.total())
            .max()
            .unwrap_or(worst_task),
    }
}

/// One chunk's evaluation result (the reports of all its candidates).
type ChunkResult = Result<Vec<CandidateReport>, SystemError>;

/// Order-deterministic parallel map over chunks (same idiom as
/// `hem_bench::parallel::parallel_map`, local to avoid a dependency
/// cycle): slot `i` always holds chunk `i`'s result.
fn run_chunks<F>(chunks: Vec<Chunk>, threads: usize, f: F) -> Vec<ChunkResult>
where
    F: Fn(Chunk) -> ChunkResult + Sync,
{
    let threads = threads.max(1).min(chunks.len().max(1));
    if threads == 1 {
        return chunks.into_iter().map(f).collect();
    }
    let n = chunks.len();
    let work: Vec<Mutex<Option<Chunk>>> = chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let slots: Vec<Mutex<Option<ChunkResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let chunk = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("chunk claimed once");
                let result = f(chunk);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every chunk computed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::AnalysisMode;

    use super::*;

    #[test]
    fn partition_enumeration_is_lexicographic_and_complete() {
        let p = partitions(4);
        assert_eq!(p.len(), 15, "Bell(4) = 15");
        assert_eq!(p[0], vec![0, 0, 0, 0]);
        assert_eq!(p[14], vec![0, 1, 2, 3]);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn paper_scenario_derives_implicit_deadlines_and_a_packing_axis() {
        let text = "\
cpu cpu1
bus can bit_time=1

frame F1 bus=can type=direct payload=4 format=standard prio=1
  signal s1 triggering periodic:250
  signal s2 triggering periodic:450
  signal s3 pending periodic:600
frame F2 bus=can type=direct payload=2 format=standard prio=2
  signal s4 triggering periodic:400

task T1 cpu=cpu1 cet=24 prio=1 activation=F1/s1
task T2 cpu=cpu1 cet=32 prio=2 activation=F1/s2
task T3 cpu=cpu1 cet=40 prio=3 activation=F1/s3
";
        let scenario = crate::dsl::parse_scenario(text).expect("parses");
        let problem = ExploreProblem::from_scenario(&scenario, 7);
        assert_eq!(problem.deadlines.get("T1"), Some(&Time::new(250)));
        assert_eq!(problem.deadlines.get("T3"), Some(&Time::new(600)));
        match &problem.packing {
            PackingSpace::Partitions { bus, .. } => assert_eq!(bus, "can"),
            other => panic!("expected a packing axis, got {other:?}"),
        }
    }

    #[test]
    fn a_single_candidate_space_finds_the_default_feasible() {
        let text = "\
cpu c
task a cpu=c cet=10 prio=1 deadline=100 activation=periodic:100
task b cpu=c cet=10 prio=2 deadline=200 activation=periodic:200
";
        let scenario = crate::dsl::parse_scenario(text).expect("parses");
        let mut problem = ExploreProblem::from_scenario(&scenario, 0);
        problem.priorities = PrioritySpace::declared_only();
        let outcome = explore(
            &problem,
            &SystemConfig::new(AnalysisMode::Hierarchical).with_threads(1),
        )
        .expect("explores");
        assert_eq!(outcome.visited, 1);
        assert_eq!(outcome.default_index, Some(0));
        assert_eq!(outcome.best, Some(0));
        assert_eq!(outcome.feasible, 1);
        assert!(outcome.reports[0].config.is_default);
    }

    #[test]
    fn overloaded_period_mutations_are_pruned() {
        let text = "\
cpu c
task a cpu=c cet=50 prio=1 deadline=100 activation=periodic:100
task b cpu=c cet=40 prio=2 deadline=200 activation=periodic:200
";
        let scenario = crate::dsl::parse_scenario(text).expect("parses");
        let mut problem = ExploreProblem::from_scenario(&scenario, 0);
        problem.priorities = PrioritySpace::declared_only();
        problem.period_choices = vec![PeriodChoice {
            site: PeriodSite::Task("a".into()),
            periods: vec![Time::new(100), Time::new(40)],
        }];
        let outcome = explore(
            &problem,
            &SystemConfig::new(AnalysisMode::Hierarchical).with_threads(1),
        )
        .expect("explores");
        assert_eq!(outcome.visited, 2);
        assert_eq!(outcome.pruned, 1);
        assert!(matches!(
            outcome.reports[1].verdict,
            Verdict::Pruned("utilization_bound")
        ));
        assert_eq!(outcome.pruned_pct(), 50.0);
    }
}
