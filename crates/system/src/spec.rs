//! System description types.

use hem_analysis::Priority;
use hem_autosar_com::{FrameType, TransferProperty};
use hem_can::{CanBusConfig, FrameFormat};
use hem_event_models::ModelRef;
use hem_time::Time;

/// Whether frame-borne activations keep the stream hierarchy.
///
/// This is the comparison axis of the paper's Table 3 (plus the
/// fully-parameterized historical baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalysisMode {
    /// Flat event streams with exact curves: a signal receiver is
    /// activated by the total frame-arrival stream, but the combined
    /// frame stream itself is represented exactly.
    Flat,
    /// Flat event streams with standard-event-model parameterization
    /// everywhere, as in classic SymTA/S: the frame-activation stream is
    /// conservatively fitted into a `(P, J, d_min)` model before bus
    /// analysis, and receivers are activated by the (SEM) total frame
    /// stream. Strictly more pessimistic than [`AnalysisMode::Flat`].
    FlatSem,
    /// Hierarchical event models: receivers are activated by unpacked
    /// per-signal streams (pack → inner update → unpack).
    Hierarchical,
}

/// Where an event stream comes from.
#[derive(Debug, Clone)]
pub enum ActivationSpec {
    /// An external source with a fixed event model (the paper's S1–S4).
    External(ModelRef),
    /// The output stream of another task (after its response-time
    /// jitter).
    TaskOutput(String),
    /// A signal transported by a frame: the receiver is activated per
    /// reception. Under [`AnalysisMode::Hierarchical`] this resolves to
    /// the unpacked inner stream; under [`AnalysisMode::Flat`] to the
    /// frame's total output stream.
    Signal {
        /// Name of the transporting frame.
        frame: String,
        /// Name of the signal within the frame.
        signal: String,
    },
    /// Every arrival of the given frame, regardless of content
    /// (explicitly flat, in both analysis modes).
    FrameArrivals(String),
    /// OR-activation by several sources: any event activates the task
    /// (paper §3, eqs. (3),(4); the stream-constructor decomposition of
    /// multi-input tasks).
    AnyOf(Vec<ActivationSpec>),
    /// AND-activation by several sources: the task waits for one event
    /// on every source before activating.
    AllOf(Vec<ActivationSpec>),
}

/// A task on a CPU.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Unique task name.
    pub name: String,
    /// Hosting CPU (must match a [`CpuSpec`]).
    pub cpu: String,
    /// Best-case execution time.
    pub bcet: Time,
    /// Worst-case execution time.
    pub wcet: Time,
    /// Priority on the CPU (smaller = higher).
    pub priority: Priority,
    /// What activates the task.
    pub activation: ActivationSpec,
}

/// One signal carried by a frame.
#[derive(Debug, Clone)]
pub struct SignalSpec {
    /// Signal name (unique within the frame).
    pub name: String,
    /// COM transfer property.
    pub transfer: TransferProperty,
    /// The stream of writes into the signal's register: an external
    /// source or a task output.
    pub source: ActivationSpec,
}

/// A COM frame on a bus.
#[derive(Debug, Clone)]
pub struct FrameSpec {
    /// Unique frame name.
    pub name: String,
    /// Hosting bus (must match a [`BusSpec`]).
    pub bus: String,
    /// Transmission rule (periodic / direct / mixed).
    pub frame_type: FrameType,
    /// Payload size in bytes (≤ 8 for classic CAN).
    pub payload_bytes: u8,
    /// CAN identifier format (standard or extended).
    pub format: FrameFormat,
    /// Arbitration priority (unique per bus).
    pub priority: Priority,
    /// The signals packed into the frame.
    pub signals: Vec<SignalSpec>,
}

/// A CPU resource (SPP-scheduled).
#[derive(Debug, Clone)]
pub struct CpuSpec {
    /// Unique CPU name.
    pub name: String,
}

/// A CAN bus resource (SPNP arbitration).
#[derive(Debug, Clone)]
pub struct BusSpec {
    /// Unique bus name.
    pub name: String,
    /// Wire timing.
    pub config: CanBusConfig,
}

/// A complete distributed system description.
#[derive(Debug, Clone, Default)]
pub struct SystemSpec {
    /// CPU resources.
    pub cpus: Vec<CpuSpec>,
    /// Bus resources.
    pub buses: Vec<BusSpec>,
    /// Tasks, across all CPUs.
    pub tasks: Vec<TaskSpec>,
    /// Frames, across all buses.
    pub frames: Vec<FrameSpec>,
}

impl SystemSpec {
    /// Creates an empty system.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a CPU; returns `self` for chaining.
    #[must_use]
    pub fn cpu(mut self, name: impl Into<String>) -> Self {
        self.cpus.push(CpuSpec { name: name.into() });
        self
    }

    /// Adds a CAN bus; returns `self` for chaining.
    #[must_use]
    pub fn bus(mut self, name: impl Into<String>, config: CanBusConfig) -> Self {
        self.buses.push(BusSpec {
            name: name.into(),
            config,
        });
        self
    }

    /// Adds a task; returns `self` for chaining.
    #[must_use]
    pub fn task(mut self, task: TaskSpec) -> Self {
        self.tasks.push(task);
        self
    }

    /// Adds a frame; returns `self` for chaining.
    #[must_use]
    pub fn frame(mut self, frame: FrameSpec) -> Self {
        self.frames.push(frame);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_event_models::{EventModelExt, StandardEventModel};

    #[test]
    fn builder_chains() {
        let src = StandardEventModel::periodic(Time::new(100))
            .unwrap()
            .shared();
        let spec = SystemSpec::new()
            .cpu("cpu0")
            .bus("can0", CanBusConfig::new(Time::new(1)))
            .task(TaskSpec {
                name: "t".into(),
                cpu: "cpu0".into(),
                bcet: Time::new(5),
                wcet: Time::new(10),
                priority: Priority::new(1),
                activation: ActivationSpec::External(src),
            });
        assert_eq!(spec.cpus.len(), 1);
        assert_eq!(spec.buses.len(), 1);
        assert_eq!(spec.tasks.len(), 1);
        assert!(spec.frames.is_empty());
    }
}
