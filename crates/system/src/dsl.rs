//! A small textual scenario language for system descriptions.
//!
//! Lets users describe a system in a plain text file and analyse it
//! without writing Rust — the moral equivalent of pyCPA's loaders. The
//! format is line-based:
//!
//! ```text
//! # The paper's Fig. 2 system (scale 10).
//! cpu cpu1
//! bus can bit_time=1
//!
//! frame F1 bus=can type=direct payload=4 prio=1
//!   signal s1 triggering periodic:2500
//!   signal s2 triggering periodic:4500
//!   signal s3 pending periodic:6000
//!
//! frame F2 bus=can type=direct payload=2 prio=2
//!   signal s4 triggering periodic:4000
//!
//! task T1 cpu=cpu1 cet=240 prio=1 activation=F1/s1
//! task T2 cpu=cpu1 cet=320 prio=2 activation=F1/s2
//! task T3 cpu=cpu1 cet=400 prio=3 activation=F1/s3
//! ```
//!
//! Grammar summary:
//!
//! * `cpu <name>`
//! * `bus <name> bit_time=<ticks>`
//! * `frame <name> bus=<bus> type=direct|periodic:<P>|mixed:<P>
//!   payload=<bytes> [format=standard|extended] prio=<n>` followed by
//!   indented `signal` lines:
//!   `signal <name> triggering|pending <source>`
//! * `task <name> cpu=<cpu> cet=<c>` (or `bcet=<c> wcet=<c>`)
//!   `prio=<n> [deadline=<d>] activation=<source>` — the optional
//!   relative deadline is an annotation for design-space exploration
//!   (see `docs/EXPLORATION.md`); the analysis itself never reads it
//! * sources: `periodic:<P>` / `periodic:<P>:<J>` (external, with
//!   optional jitter), `output:<task>` (a task's output stream),
//!   `<frame>/<signal>` (a transported signal; tasks only),
//!   `frame:<name>` (every frame arrival; tasks only)
//! * `#` starts a comment; blank lines are ignored.
//!
//! Parsing yields a [`Scenario`] AST, which converts to a
//! [`SystemSpec`] (`Scenario::to_spec`) and renders back to canonical
//! text (`Scenario::render`) — `parse ∘ render` is the identity, so
//! scenarios are a faithful storage format.

use hem_analysis::Priority;
use hem_autosar_com::{FrameType, TransferProperty};
use hem_can::{CanBusConfig, FrameFormat};
use hem_event_models::{EventModelExt, StandardEventModel};
use hem_time::Time;

use crate::spec::{ActivationSpec, FrameSpec, SignalSpec, SystemSpec, TaskSpec};

/// A parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// An event source as written in a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceDecl {
    /// An external periodic(+jitter) source.
    Periodic {
        /// Period in ticks (≥ 1).
        period: i64,
        /// Jitter in ticks (≥ 0).
        jitter: i64,
    },
    /// The output stream of a task.
    TaskOutput(String),
    /// A signal transported by a frame (task activations only).
    Signal {
        /// Transporting frame.
        frame: String,
        /// Signal name.
        signal: String,
    },
    /// Every arrival of a frame (task activations only).
    FrameArrivals(String),
}

/// A signal declaration inside a frame block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalDecl {
    /// Signal name.
    pub name: String,
    /// Transfer property.
    pub transfer: TransferProperty,
    /// Write-event source.
    pub source: SourceDecl,
}

/// A frame declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameDecl {
    /// Frame name.
    pub name: String,
    /// Hosting bus name.
    pub bus: String,
    /// Transmission rule.
    pub frame_type: FrameType,
    /// Payload bytes.
    pub payload: u8,
    /// Identifier format.
    pub format: FrameFormat,
    /// Arbitration priority.
    pub prio: u32,
    /// Packed signals.
    pub signals: Vec<SignalDecl>,
}

/// A task declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskDecl {
    /// Task name.
    pub name: String,
    /// Hosting CPU name.
    pub cpu: String,
    /// Best-case execution time.
    pub bcet: i64,
    /// Worst-case execution time.
    pub wcet: i64,
    /// Priority on the CPU.
    pub prio: u32,
    /// Optional relative deadline in ticks — an exploration annotation
    /// (`hem explore` certifies `r⁺ ≤ deadline`); plain analysis
    /// ignores it.
    pub deadline: Option<i64>,
    /// Activation source.
    pub activation: SourceDecl,
}

/// A bus declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusDecl {
    /// Bus name.
    pub name: String,
    /// Bit time in ticks.
    pub bit_time: i64,
}

/// A parsed scenario: the AST of a scenario file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Scenario {
    /// Declared CPUs.
    pub cpus: Vec<String>,
    /// Declared buses.
    pub buses: Vec<BusDecl>,
    /// Declared frames (with their signals).
    pub frames: Vec<FrameDecl>,
    /// Declared tasks.
    pub tasks: Vec<TaskDecl>,
}

impl Scenario {
    /// Converts the AST into a [`SystemSpec`] ready for analysis.
    #[must_use]
    pub fn to_spec(&self) -> SystemSpec {
        let mut spec = SystemSpec::new();
        for c in &self.cpus {
            spec = spec.cpu(c.clone());
        }
        for b in &self.buses {
            spec = spec.bus(b.name.clone(), CanBusConfig::new(Time::new(b.bit_time)));
        }
        for f in &self.frames {
            spec = spec.frame(FrameSpec {
                name: f.name.clone(),
                bus: f.bus.clone(),
                frame_type: f.frame_type,
                payload_bytes: f.payload,
                format: f.format,
                priority: Priority::new(f.prio),
                signals: f
                    .signals
                    .iter()
                    .map(|s| SignalSpec {
                        name: s.name.clone(),
                        transfer: s.transfer,
                        source: s.source.to_activation(),
                    })
                    .collect(),
            });
        }
        for t in &self.tasks {
            spec = spec.task(TaskSpec {
                name: t.name.clone(),
                cpu: t.cpu.clone(),
                bcet: Time::new(t.bcet),
                wcet: Time::new(t.wcet),
                priority: Priority::new(t.prio),
                activation: t.activation.to_activation(),
            });
        }
        spec
    }

    /// Renders the scenario in canonical textual form;
    /// `parse(&s.render())` reproduces `s` exactly.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for c in &self.cpus {
            let _ = writeln!(out, "cpu {c}");
        }
        for b in &self.buses {
            let _ = writeln!(out, "bus {} bit_time={}", b.name, b.bit_time);
        }
        for f in &self.frames {
            let ftype = match f.frame_type {
                FrameType::Direct => "direct".to_string(),
                FrameType::Periodic(p) => format!("periodic:{p}"),
                FrameType::Mixed(p) => format!("mixed:{p}"),
            };
            let format = match f.format {
                FrameFormat::Standard => "standard",
                FrameFormat::Extended => "extended",
            };
            let _ = writeln!(
                out,
                "\nframe {} bus={} type={ftype} payload={} format={format} prio={}",
                f.name, f.bus, f.payload, f.prio
            );
            for s in &f.signals {
                let transfer = match s.transfer {
                    TransferProperty::Triggering => "triggering",
                    TransferProperty::Pending => "pending",
                };
                let _ = writeln!(out, "  signal {} {transfer} {}", s.name, s.source.render());
            }
        }
        if !self.tasks.is_empty() {
            let _ = writeln!(out);
        }
        for t in &self.tasks {
            let deadline = t
                .deadline
                .map(|d| format!(" deadline={d}"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "task {} cpu={} bcet={} wcet={} prio={}{deadline} activation={}",
                t.name,
                t.cpu,
                t.bcet,
                t.wcet,
                t.prio,
                t.activation.render()
            );
        }
        out
    }
}

impl SourceDecl {
    fn to_activation(&self) -> ActivationSpec {
        match self {
            SourceDecl::Periodic { period, jitter } => ActivationSpec::External(
                StandardEventModel::periodic_with_jitter(Time::new(*period), Time::new(*jitter))
                    .expect("validated at parse time")
                    .shared(),
            ),
            SourceDecl::TaskOutput(t) => ActivationSpec::TaskOutput(t.clone()),
            SourceDecl::Signal { frame, signal } => ActivationSpec::Signal {
                frame: frame.clone(),
                signal: signal.clone(),
            },
            SourceDecl::FrameArrivals(f) => ActivationSpec::FrameArrivals(f.clone()),
        }
    }

    fn render(&self) -> String {
        match self {
            SourceDecl::Periodic { period, jitter } => {
                if *jitter == 0 {
                    format!("periodic:{period}")
                } else {
                    format!("periodic:{period}:{jitter}")
                }
            }
            SourceDecl::TaskOutput(t) => format!("output:{t}"),
            SourceDecl::Signal { frame, signal } => format!("{frame}/{signal}"),
            SourceDecl::FrameArrivals(f) => format!("frame:{f}"),
        }
    }
}

/// Parses a scenario into its AST.
///
/// # Errors
///
/// Returns the first [`ParseError`] (unknown directive, malformed
/// key=value, signal outside a frame, …). Semantic errors (dangling
/// references, duplicate names) are left to the analysis engine's
/// validation.
pub fn parse_scenario(input: &str) -> Result<Scenario, ParseError> {
    let mut scenario = Scenario::default();
    let mut current_frame: Option<FrameDecl> = None;

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim_end();
        let indented = line.starts_with(' ') || line.starts_with('\t');
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let directive = words.next().expect("non-empty line");
        let rest: Vec<&str> = words.collect();

        if directive == "signal" {
            let frame = current_frame
                .as_mut()
                .ok_or_else(|| err(line_no, "`signal` outside a `frame` block"))?;
            frame.signals.push(parse_signal(&rest, line_no)?);
            continue;
        }
        // Any other directive ends a frame block.
        if let Some(f) = current_frame.take() {
            scenario.frames.push(f);
        }
        if indented {
            return Err(err(line_no, format!("unexpected indented `{directive}`")));
        }
        match directive {
            "cpu" => {
                let name = rest
                    .first()
                    .ok_or_else(|| err(line_no, "`cpu` needs a name"))?;
                scenario.cpus.push((*name).into());
            }
            "bus" => {
                let name = rest
                    .first()
                    .ok_or_else(|| err(line_no, "`bus` needs a name"))?;
                let kv = parse_kv(&rest[1..], line_no)?;
                let bit_time = get_int(&kv, "bit_time", line_no)?;
                if bit_time < 1 {
                    return Err(err(line_no, "`bit_time` must be at least 1"));
                }
                scenario.buses.push(BusDecl {
                    name: (*name).into(),
                    bit_time,
                });
            }
            "frame" => {
                current_frame = Some(parse_frame(&rest, line_no)?);
            }
            "task" => {
                scenario.tasks.push(parse_task(&rest, line_no)?);
            }
            other => {
                return Err(err(line_no, format!("unknown directive `{other}`")));
            }
        }
    }
    if let Some(f) = current_frame.take() {
        scenario.frames.push(f);
    }
    Ok(scenario)
}

/// Parses a scenario directly into a [`SystemSpec`] (convenience for
/// callers that do not need the AST).
///
/// # Errors
///
/// See [`parse_scenario`].
pub fn parse(input: &str) -> Result<SystemSpec, ParseError> {
    Ok(parse_scenario(input)?.to_spec())
}

type Kv<'a> = Vec<(&'a str, &'a str)>;

fn parse_kv<'a>(words: &[&'a str], line: usize) -> Result<Kv<'a>, ParseError> {
    words
        .iter()
        .map(|w| {
            w.split_once('=')
                .ok_or_else(|| err(line, format!("expected key=value, got `{w}`")))
        })
        .collect()
}

fn lookup<'a>(kv: &Kv<'a>, key: &str) -> Option<&'a str> {
    kv.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn get<'a>(kv: &Kv<'a>, key: &str, line: usize) -> Result<&'a str, ParseError> {
    lookup(kv, key).ok_or_else(|| err(line, format!("missing `{key}=`")))
}

fn get_int(kv: &Kv<'_>, key: &str, line: usize) -> Result<i64, ParseError> {
    get(kv, key, line)?
        .parse()
        .map_err(|_| err(line, format!("`{key}` must be an integer")))
}

fn parse_frame(rest: &[&str], line: usize) -> Result<FrameDecl, ParseError> {
    let name = rest
        .first()
        .ok_or_else(|| err(line, "`frame` needs a name"))?;
    let kv = parse_kv(&rest[1..], line)?;
    let frame_type = match get(&kv, "type", line)? {
        "direct" => FrameType::Direct,
        t if t.starts_with("periodic:") => FrameType::Periodic(parse_time_suffix(t, line)?),
        t if t.starts_with("mixed:") => FrameType::Mixed(parse_time_suffix(t, line)?),
        other => {
            return Err(err(
                line,
                format!("frame type must be direct, periodic:<P> or mixed:<P>, got `{other}`"),
            ));
        }
    };
    let format = match lookup(&kv, "format") {
        None | Some("standard") => FrameFormat::Standard,
        Some("extended") => FrameFormat::Extended,
        Some(other) => {
            return Err(err(line, format!("unknown frame format `{other}`")));
        }
    };
    let payload = get_int(&kv, "payload", line)?;
    let payload =
        u8::try_from(payload).map_err(|_| err(line, "payload must fit into a byte count"))?;
    let prio = get_int(&kv, "prio", line)?;
    Ok(FrameDecl {
        name: (*name).into(),
        bus: get(&kv, "bus", line)?.into(),
        frame_type,
        payload,
        format,
        prio: u32::try_from(prio).map_err(|_| err(line, "prio must be non-negative"))?,
        signals: Vec::new(),
    })
}

fn parse_time_suffix(word: &str, line: usize) -> Result<Time, ParseError> {
    let (_, v) = word.split_once(':').expect("caller checked prefix");
    let v: i64 = v
        .parse()
        .map_err(|_| err(line, format!("expected an integer after `:` in `{word}`")))?;
    if v < 1 {
        return Err(err(line, "frame timer period must be at least 1"));
    }
    Ok(Time::new(v))
}

fn parse_signal(rest: &[&str], line: usize) -> Result<SignalDecl, ParseError> {
    let name = rest
        .first()
        .ok_or_else(|| err(line, "`signal` needs a name"))?;
    let transfer = match rest.get(1) {
        Some(&"triggering") => TransferProperty::Triggering,
        Some(&"pending") => TransferProperty::Pending,
        other => {
            return Err(err(
                line,
                format!("signal needs `triggering` or `pending`, got {other:?}"),
            ));
        }
    };
    let source = parse_source(&rest[2..], line, false)?;
    Ok(SignalDecl {
        name: (*name).into(),
        transfer,
        source,
    })
}

fn parse_task(rest: &[&str], line: usize) -> Result<TaskDecl, ParseError> {
    let name = rest
        .first()
        .ok_or_else(|| err(line, "`task` needs a name"))?;
    let kv = parse_kv(&rest[1..], line)?;
    let (bcet, wcet) = if let Some(c) = lookup(&kv, "cet") {
        let c: i64 = c
            .parse()
            .map_err(|_| err(line, "`cet` must be an integer"))?;
        (c, c)
    } else {
        (get_int(&kv, "bcet", line)?, get_int(&kv, "wcet", line)?)
    };
    if wcet < 1 || bcet < 0 || bcet > wcet {
        return Err(err(line, "need 0 ≤ bcet ≤ wcet and wcet ≥ 1"));
    }
    let activation_word = get(&kv, "activation", line)?;
    let activation = parse_source(&[activation_word], line, true)?;
    let prio = get_int(&kv, "prio", line)?;
    let deadline = match lookup(&kv, "deadline") {
        Some(d) => {
            let d: i64 = d
                .parse()
                .map_err(|_| err(line, "`deadline` must be an integer"))?;
            if d < 1 {
                return Err(err(line, "`deadline` must be positive"));
            }
            Some(d)
        }
        None => None,
    };
    Ok(TaskDecl {
        name: (*name).into(),
        cpu: get(&kv, "cpu", line)?.into(),
        bcet,
        wcet,
        prio: u32::try_from(prio).map_err(|_| err(line, "prio must be non-negative"))?,
        deadline,
        activation,
    })
}

/// Parses a source: `periodic=P [jitter=J]`, `output:<task>`,
/// `frame:<name>` (tasks only) or `<frame>/<signal>` (tasks only).
fn parse_source(
    words: &[&str],
    line: usize,
    allow_transport: bool,
) -> Result<SourceDecl, ParseError> {
    let first = words
        .first()
        .ok_or_else(|| err(line, "missing event source"))?;
    if let Some(task) = first.strip_prefix("output:") {
        return Ok(SourceDecl::TaskOutput(task.into()));
    }
    if let Some(frame) = first.strip_prefix("frame:") {
        if !allow_transport {
            return Err(err(line, "a signal cannot be sourced from a frame"));
        }
        return Ok(SourceDecl::FrameArrivals(frame.into()));
    }
    if let Some(params) = first.strip_prefix("periodic:") {
        let mut parts = params.split(':');
        let period: i64 = parts
            .next()
            .unwrap_or("")
            .parse()
            .map_err(|_| err(line, "`periodic:` needs an integer period"))?;
        let jitter: i64 = match parts.next() {
            Some(j) => j
                .parse()
                .map_err(|_| err(line, "jitter after `periodic:<P>:` must be an integer"))?,
            None => 0,
        };
        if parts.next().is_some() {
            return Err(err(line, "too many `:` components in periodic source"));
        }
        if period < 1 || jitter < 0 {
            return Err(err(line, "need period ≥ 1 and jitter ≥ 0"));
        }
        return Ok(SourceDecl::Periodic { period, jitter });
    }
    if let Some((frame, signal)) = first.split_once('/') {
        if !allow_transport {
            return Err(err(line, "a signal cannot be sourced from a frame"));
        }
        return Ok(SourceDecl::Signal {
            frame: frame.into(),
            signal: signal.into(),
        });
    }
    Err(err(
        line,
        format!(
            "unrecognized event source `{first}` (expected periodic:, output:, frame:, or frame/signal)"
        ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyze;
    use crate::result::SystemConfig;
    use crate::spec::AnalysisMode;

    const PAPER: &str = r"
# The paper's Fig. 2 system, scale 10.
cpu cpu1
bus can bit_time=1

frame F1 bus=can type=direct payload=4 prio=1
  signal s1 triggering periodic:2500
  signal s2 triggering periodic:4500
  signal s3 pending periodic:6000

frame F2 bus=can type=direct payload=2 prio=2
  signal s4 triggering periodic:4000

task T1 cpu=cpu1 cet=240 prio=1 activation=F1/s1
task T2 cpu=cpu1 cet=320 prio=2 activation=F1/s2
task T3 cpu=cpu1 cet=400 prio=3 activation=F1/s3
";

    #[test]
    fn parses_and_reproduces_table3() {
        let spec = parse(PAPER).unwrap();
        assert_eq!(spec.cpus.len(), 1);
        assert_eq!(spec.buses.len(), 1);
        assert_eq!(spec.frames.len(), 2);
        assert_eq!(spec.frames[0].signals.len(), 3);
        assert_eq!(spec.tasks.len(), 3);
        let hier = analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).unwrap();
        // The golden Table 3 HEM numbers.
        assert_eq!(hier.task("T1").unwrap().response.r_plus, Time::new(240));
        assert_eq!(hier.task("T2").unwrap().response.r_plus, Time::new(560));
        assert_eq!(hier.task("T3").unwrap().response.r_plus, Time::new(960));
    }

    #[test]
    fn parses_all_source_forms() {
        let text = r"
cpu c
bus b bit_time=2

frame F bus=b type=mixed:5000 payload=8 format=extended prio=1
  signal s triggering periodic:1000:50
  signal fwd pending output:producer

task producer cpu=c bcet=10 wcet=20 prio=1 activation=periodic:700
task rx cpu=c cet=30 prio=2 activation=F/s
task all cpu=c cet=5 prio=3 activation=frame:F
";
        let scenario = parse_scenario(text).unwrap();
        assert_eq!(
            scenario.frames[0].frame_type,
            FrameType::Mixed(Time::new(5000))
        );
        assert_eq!(scenario.frames[0].format, FrameFormat::Extended);
        assert_eq!(
            scenario.frames[0].signals[1].source,
            SourceDecl::TaskOutput("producer".into())
        );
        assert_eq!(
            scenario.tasks[1].activation,
            SourceDecl::Signal {
                frame: "F".into(),
                signal: "s".into()
            }
        );
        assert_eq!(
            scenario.tasks[2].activation,
            SourceDecl::FrameArrivals("F".into())
        );
        assert_eq!(scenario.tasks[0].bcet, 10);
        assert_eq!(scenario.tasks[0].wcet, 20);
        // The whole thing analyses.
        analyze(
            &scenario.to_spec(),
            &SystemConfig::new(AnalysisMode::Hierarchical),
        )
        .unwrap();
    }

    #[test]
    fn render_parse_roundtrip() {
        let scenario = parse_scenario(PAPER).unwrap();
        let rendered = scenario.render();
        let reparsed = parse_scenario(&rendered).unwrap();
        assert_eq!(scenario, reparsed);
        // And twice-rendered text is stable.
        assert_eq!(rendered, reparsed.render());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("cpu a\nwhatever x").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("unknown directive"));

        let e = parse("  signal s triggering periodic:10").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("outside a `frame`"));

        let e = parse("bus b").unwrap_err();
        assert!(e.message.contains("bit_time"));

        let e = parse("frame F bus=b type=direct payload=4 prio=1\n  signal s triggering nope=1")
            .unwrap_err();
        assert_eq!(e.line, 2);

        let e = parse("task t cpu=c cet=1 prio=1 activation=gibberish").unwrap_err();
        assert!(e.message.contains("unrecognized event source"));

        let e = parse("task t cpu=c bcet=5 wcet=3 prio=1 activation=periodic:10").unwrap_err();
        assert!(e.message.contains("bcet ≤ wcet"));

        let e = parse("task t cpu=c cet=1 prio=1 activation=periodic:0").unwrap_err();
        assert!(e.message.contains("period ≥ 1"));
    }

    #[test]
    fn signals_cannot_source_from_frames() {
        let e = parse("frame F bus=b type=direct payload=1 prio=1\n  signal s triggering frame:F")
            .unwrap_err();
        assert!(e.message.contains("cannot be sourced from a frame"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec = parse("# hello\n\ncpu a # trailing\n").unwrap();
        assert_eq!(spec.cpus.len(), 1);
        assert_eq!(spec.cpus[0].name, "a");
    }
}
