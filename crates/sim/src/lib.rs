//! Discrete-event simulation of COM-layer / CAN / CPU systems.
//!
//! The analyses in [`hem_analysis`] and [`hem_system`] compute *bounds*;
//! this crate executes concrete runs of the same systems so tests and
//! experiments can check that every observed response time and event
//! distance stays within the analytic bounds (the validation experiments
//! Ext-D in `DESIGN.md`).
//!
//! The simulator mirrors the paper's system structure layer by layer:
//!
//! * [`trace`] — admissible activation traces for the standard event
//!   models (periodic, jittered, sporadic),
//! * [`com`] — the AUTOSAR COM layer: registers with overwrite semantics,
//!   triggering/pending transfer properties, periodic/direct/mixed frame
//!   transmission (paper §4),
//! * [`canbus`] — non-preemptive priority arbitration of queued frames,
//! * [`cpu`] — preemptive static-priority CPU scheduling,
//! * [`system`] — an end-to-end harness chaining all layers and
//!   reporting observed response times and delivery traces,
//! * [`fault`] — seeded, deterministic fault injection (frame
//!   corruption with retransmissions, activation jitter, babbling-idiot
//!   overload, clock drift) for robustness validation; every harness has
//!   a `run_with_faults` twin and [`from_spec::simulate_spec_under_faults`]
//!   runs any [`hem_system::SystemSpec`] under a plan.
//!
//! # Examples
//!
//! ```
//! use hem_sim::trace;
//! use hem_time::Time;
//!
//! // Events of a periodic source with jitter stay within the model.
//! let t = trace::periodic_with_jitter(Time::new(100), Time::new(30),
//!                                     Time::new(5_000), 42);
//! assert!(t.len() >= 49);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canbus;
pub mod com;
pub mod cpu;
pub mod cpu_edf;
pub mod error;
pub mod fault;
pub mod from_spec;
pub mod network;
pub mod system;
pub mod trace;

pub use error::SimError;
