//! Generation of admissible activation traces.
//!
//! Every generator produces a sorted list of event times within
//! `[0, horizon)` that is *admissible* for the corresponding event model:
//! all window counts and distances stay within the model's `η±`/`δ±`
//! bounds. Tests assert this property (see `observed_within_model`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hem_event_models::{EventModel, TraceModel};
use hem_time::Time;

/// A strictly periodic trace: events at `0, P, 2P, …` below `horizon`.
///
/// # Panics
///
/// Panics if `period < 1` or `horizon < 1`.
#[must_use]
pub fn periodic(period: Time, horizon: Time) -> Vec<Time> {
    assert!(period >= Time::ONE, "period must be positive");
    assert!(horizon >= Time::ONE, "horizon must be positive");
    let mut out = Vec::new();
    let mut t = Time::ZERO;
    while t < horizon {
        out.push(t);
        t += period;
    }
    out
}

/// A periodic trace with uniformly random jitter: the `i`-th event lands
/// at `i·P + U[0, J]`, then the trace is sorted (large jitter may reorder
/// events, which the standard event model admits).
///
/// # Panics
///
/// Panics if `period < 1`, `jitter < 0` or `horizon < 1`.
#[must_use]
pub fn periodic_with_jitter(period: Time, jitter: Time, horizon: Time, seed: u64) -> Vec<Time> {
    assert!(period >= Time::ONE, "period must be positive");
    assert!(!jitter.is_negative(), "jitter must be non-negative");
    assert!(horizon >= Time::ONE, "horizon must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut nominal = Time::ZERO;
    while nominal < horizon {
        let j = if jitter.is_zero() {
            0
        } else {
            rng.gen_range(0..=jitter.ticks())
        };
        out.push(nominal + Time::new(j));
        nominal += period;
    }
    out.sort_unstable();
    out.retain(|&t| t < horizon);
    out
}

/// A sporadic trace: inter-arrival gaps of `dmin + Geometric`-ish random
/// slack (up to `3·dmin` extra), respecting the minimum distance.
///
/// # Panics
///
/// Panics if `dmin < 1` or `horizon < 1`.
#[must_use]
pub fn sporadic(dmin: Time, horizon: Time, seed: u64) -> Vec<Time> {
    assert!(dmin >= Time::ONE, "dmin must be positive");
    assert!(horizon >= Time::ONE, "horizon must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut t = Time::new(rng.gen_range(0..dmin.ticks().max(1)));
    while t < horizon {
        out.push(t);
        let slack = rng.gen_range(0..=3 * dmin.ticks());
        t += dmin + Time::new(slack);
    }
    out
}

/// Checks that a trace is admissible for an event model: every window of
/// `n` consecutive events spans at least `δ⁻(n)` and at most `δ⁺(n)`
/// (when finite and when the trace keeps producing events; the δ⁺ check
/// is skipped at the trace boundary where the stream may simply have been
/// cut off by the horizon).
///
/// Returns the first violation as `(n, window_start_index)`.
#[must_use]
pub fn check_admissible(trace: &[Time], model: &dyn EventModel) -> Option<(u64, usize)> {
    for n in 2..=trace.len() {
        for (i, w) in trace.windows(n).enumerate() {
            let span = w[n - 1] - w[0];
            if span < model.delta_min(n as u64) {
                return Some((n as u64, i));
            }
        }
    }
    None
}

/// Builds a [`TraceModel`] from a simulated delivery trace (convenience
/// re-export for observers).
///
/// # Errors
///
/// See [`TraceModel::from_timestamps`].
pub fn to_model(trace: &[Time]) -> Result<TraceModel, hem_event_models::ModelError> {
    TraceModel::from_timestamps(trace.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_event_models::StandardEventModel;

    #[test]
    fn periodic_trace_is_exact() {
        let t = periodic(Time::new(100), Time::new(450));
        assert_eq!(t, [0, 100, 200, 300, 400].map(Time::new));
        let m = StandardEventModel::periodic(Time::new(100)).unwrap();
        assert_eq!(check_admissible(&t, &m), None);
    }

    #[test]
    fn jittered_trace_is_admissible() {
        let m = StandardEventModel::periodic_with_jitter(Time::new(100), Time::new(60)).unwrap();
        for seed in 0..20 {
            let t = periodic_with_jitter(Time::new(100), Time::new(60), Time::new(20_000), seed);
            assert_eq!(check_admissible(&t, &m), None, "seed {seed}");
        }
    }

    #[test]
    fn heavy_jitter_reorders_but_stays_admissible() {
        let m = StandardEventModel::periodic_with_jitter(Time::new(50), Time::new(400)).unwrap();
        for seed in 0..10 {
            let t = periodic_with_jitter(Time::new(50), Time::new(400), Time::new(10_000), seed);
            assert!(t.windows(2).all(|w| w[0] <= w[1]), "sorted");
            assert_eq!(check_admissible(&t, &m), None, "seed {seed}");
        }
    }

    #[test]
    fn sporadic_trace_respects_dmin() {
        let m = hem_event_models::SporadicModel::new(Time::new(70)).unwrap();
        for seed in 0..10 {
            let t = sporadic(Time::new(70), Time::new(50_000), seed);
            assert!(!t.is_empty());
            assert_eq!(check_admissible(&t, &m), None, "seed {seed}");
        }
    }

    #[test]
    fn check_admissible_detects_violation() {
        let m = StandardEventModel::periodic(Time::new(100)).unwrap();
        let bad = [0, 50, 200].map(Time::new);
        assert_eq!(check_admissible(&bad, &m), Some((2, 0)));
    }

    #[test]
    fn to_model_roundtrip() {
        let t = periodic(Time::new(100), Time::new(1000));
        let m = to_model(&t).unwrap();
        assert_eq!(m.event_count(), 10);
    }
}
