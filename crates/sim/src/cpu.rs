//! Preemptive static-priority CPU scheduling simulation.

use hem_analysis::Priority;
use hem_time::Time;

use crate::error::SimError;

/// A task on the simulated CPU.
#[derive(Debug, Clone)]
pub struct SimTask {
    /// Task name (for reporting).
    pub name: String,
    /// Priority (lower wins; equal priorities run FIFO by activation).
    pub priority: Priority,
    /// Execution time of each job (constant per task; use the WCET for
    /// worst-case-oriented validation runs).
    pub execution_time: Time,
    /// Sorted activation times.
    pub activations: Vec<Time>,
}

/// One completed job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Index of the task in the input slice.
    pub task: usize,
    /// Index of the activation within the task.
    pub instance: usize,
    /// Activation time.
    pub activated_at: Time,
    /// Completion time.
    pub completed_at: Time,
}

impl Job {
    /// The job's response time.
    #[must_use]
    pub fn response(&self) -> Time {
        self.completed_at - self.activated_at
    }
}

/// Simulates preemptive static-priority scheduling of the given tasks.
///
/// Jobs of the same task execute in activation order; between tasks the
/// lowest priority level runs, preempting instantly on higher-priority
/// arrivals. Returns all jobs in completion order.
///
/// # Panics
///
/// Panics if an activation list is unsorted or an execution time is < 1.
/// [`try_simulate`] reports the same conditions as a [`SimError`]
/// instead.
#[must_use]
pub fn simulate(tasks: &[SimTask]) -> Vec<Job> {
    try_simulate(tasks).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`simulate`].
///
/// # Errors
///
/// Returns a [`SimError`] if an activation list is unsorted or an
/// execution time is < 1.
pub fn try_simulate(tasks: &[SimTask]) -> Result<Vec<Job>, SimError> {
    try_simulate_with_exec(tasks, |task, _instance| tasks[task].execution_time)
}

/// Like [`simulate`], but with a per-job execution time supplied by
/// `exec(task_index, instance_index)` — e.g. sampled uniformly from
/// `[bcet, wcet]` for randomized validation runs. Each task's
/// `execution_time` field is ignored.
///
/// # Panics
///
/// Panics if an activation list is unsorted or `exec` returns < 1.
#[must_use]
pub fn simulate_with_exec(tasks: &[SimTask], exec: impl FnMut(usize, usize) -> Time) -> Vec<Job> {
    try_simulate_with_exec(tasks, exec).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`simulate_with_exec`].
///
/// # Errors
///
/// Same conditions as [`try_simulate`], plus `exec` returning < 1.
pub fn try_simulate_with_exec(
    tasks: &[SimTask],
    mut exec: impl FnMut(usize, usize) -> Time,
) -> Result<Vec<Job>, SimError> {
    for t in tasks {
        if t.execution_time < Time::ONE {
            return Err(SimError::non_positive(format!(
                "execution time of `{}`",
                t.name
            )));
        }
        if !t.activations.windows(2).all(|w| w[0] <= w[1]) {
            return Err(SimError::unsorted(format!("activations of `{}`", t.name)));
        }
    }
    // All arrivals in time order: (time, task, instance).
    let mut arrivals: Vec<(Time, usize, usize)> = tasks
        .iter()
        .enumerate()
        .flat_map(|(ti, t)| {
            t.activations
                .iter()
                .enumerate()
                .map(move |(ii, &at)| (at, ti, ii))
        })
        .collect();
    arrivals.sort_unstable();

    // Ready jobs: (priority, activation time, task, instance, remaining).
    let mut ready: Vec<(Priority, Time, usize, usize, Time)> = Vec::new();
    let mut out = Vec::with_capacity(arrivals.len());
    let mut now = Time::ZERO;
    let mut next_arrival = 0usize;

    loop {
        // Admit everything that has arrived by `now`.
        while next_arrival < arrivals.len() && arrivals[next_arrival].0 <= now {
            let (at, ti, ii) = arrivals[next_arrival];
            let e = exec(ti, ii);
            if e < Time::ONE {
                return Err(SimError::non_positive(format!("exec({ti}, {ii})")));
            }
            ready.push((tasks[ti].priority, at, ti, ii, e));
            next_arrival += 1;
        }
        if ready.is_empty() {
            if next_arrival >= arrivals.len() {
                break;
            }
            now = arrivals[next_arrival].0;
            continue;
        }
        // Highest priority, FIFO tie-break by activation then task index.
        let best = ready
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(p, at, ti, ii, _))| (p, at, ti, ii))
            .map(|(i, _)| i)
            .expect("non-empty ready queue");
        let horizon = if next_arrival < arrivals.len() {
            arrivals[next_arrival].0
        } else {
            Time::MAX
        };
        let (_, at, ti, ii, remaining) = ready[best];
        let slice = remaining.min(horizon - now);
        if slice == remaining {
            // Job completes before (or exactly at) the next arrival.
            now += remaining;
            ready.swap_remove(best);
            out.push(Job {
                task: ti,
                instance: ii,
                activated_at: at,
                completed_at: now,
            });
        } else {
            // Run until the next arrival, then re-evaluate (possible
            // preemption).
            ready[best].4 = remaining - slice;
            now = horizon;
        }
    }
    out.sort_unstable_by_key(|j| (j.completed_at, j.task, j.instance));
    Ok(out)
}

/// The worst observed response time per task, in task order.
#[must_use]
pub fn worst_responses(tasks: &[SimTask], jobs: &[Job]) -> Vec<Time> {
    let mut worst = vec![Time::ZERO; tasks.len()];
    for j in jobs {
        worst[j.task] = worst[j.task].max(j.response());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(name: &str, prio: u32, c: i64, activations: &[i64]) -> SimTask {
        SimTask {
            name: name.into(),
            priority: Priority::new(prio),
            execution_time: Time::new(c),
            activations: activations.iter().map(|&t| Time::new(t)).collect(),
        }
    }

    #[test]
    fn preemption_happens_immediately() {
        // lo starts at 0, hi arrives at 5 and preempts for 10.
        let jobs = simulate(&[task("hi", 1, 10, &[5]), task("lo", 2, 20, &[0])]);
        let hi = jobs.iter().find(|j| j.task == 0).unwrap();
        let lo = jobs.iter().find(|j| j.task == 1).unwrap();
        assert_eq!(hi.completed_at, Time::new(15));
        assert_eq!(lo.completed_at, Time::new(30)); // 20 own + 10 preempted
        assert_eq!(lo.response(), Time::new(30));
    }

    #[test]
    fn simultaneous_arrivals_run_by_priority() {
        let jobs = simulate(&[
            task("a", 1, 5, &[0]),
            task("b", 2, 5, &[0]),
            task("c", 3, 5, &[0]),
        ]);
        assert_eq!(jobs[0].task, 0);
        assert_eq!(jobs[1].task, 1);
        assert_eq!(jobs[2].task, 2);
        assert_eq!(jobs[2].completed_at, Time::new(15));
    }

    #[test]
    fn equal_priority_fifo() {
        let jobs = simulate(&[task("a", 1, 10, &[5]), task("b", 1, 10, &[0])]);
        // b activated first, runs first despite equal priority.
        assert_eq!(jobs[0].task, 1);
        assert_eq!(jobs[0].completed_at, Time::new(10));
        assert_eq!(jobs[1].completed_at, Time::new(20));
    }

    #[test]
    fn same_task_jobs_fifo_and_queue() {
        let jobs = simulate(&[task("a", 1, 10, &[0, 2, 4])]);
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].instance, 0);
        assert_eq!(jobs[2].completed_at, Time::new(30));
        assert_eq!(jobs[2].response(), Time::new(26));
    }

    #[test]
    fn idle_time_is_skipped() {
        let jobs = simulate(&[task("a", 1, 5, &[0, 100])]);
        assert_eq!(jobs[1].completed_at, Time::new(105));
    }

    #[test]
    fn worst_responses_aggregates() {
        let tasks = [task("a", 1, 10, &[0, 2])];
        let jobs = simulate(&tasks);
        let w = worst_responses(&tasks, &jobs);
        assert_eq!(w, vec![Time::new(18)]); // second job: 20 − 2
    }

    #[test]
    fn variable_execution_times_respected() {
        let tasks = [task("a", 1, 10, &[0, 20, 40])];
        // Instance i runs for 5 + i ticks.
        let jobs = simulate_with_exec(&tasks, |_, i| Time::new(5 + i as i64));
        assert_eq!(jobs[0].completed_at, Time::new(5));
        assert_eq!(jobs[1].completed_at, Time::new(26));
        assert_eq!(jobs[2].completed_at, Time::new(47));
    }

    #[test]
    fn shorter_execution_never_worsens_uncontended_response() {
        let tasks = [task("a", 1, 10, &[0, 100])];
        let worst = simulate(&tasks);
        let best = simulate_with_exec(&tasks, |_, _| Time::new(3));
        for (w, b) in worst.iter().zip(&best) {
            assert!(b.response() <= w.response());
        }
    }

    #[test]
    fn try_simulate_reports_errors_without_panicking() {
        let err = try_simulate(&[task("a", 1, 0, &[0])]).unwrap_err();
        assert_eq!(err.to_string(), "execution time of `a` must be positive");
        let err = try_simulate(&[task("a", 1, 5, &[10, 0])]).unwrap_err();
        assert_eq!(err.to_string(), "activations of `a` must be sorted");
        let err = try_simulate_with_exec(&[task("a", 1, 5, &[0])], |_, _| Time::ZERO).unwrap_err();
        assert!(err.to_string().contains("exec(0, 0)"));
    }

    #[test]
    fn matches_analysis_on_textbook_set() {
        // Same set as the SPP analysis test: C = (1,2,3), P = (4,6,12).
        // Simulated worst responses must be ≤ the analytic bounds (1,3,10)
        // and, with synchronous release, should reach them exactly.
        let make =
            |p: i64| -> Vec<i64> { (0..200).map(|i| i * p).take_while(|&t| t < 2400).collect() };
        let tasks = [
            task("t1", 1, 1, &make(4)),
            task("t2", 2, 2, &make(6)),
            task("t3", 3, 3, &make(12)),
        ];
        let jobs = simulate(&tasks);
        let w = worst_responses(&tasks, &jobs);
        assert_eq!(w, vec![Time::new(1), Time::new(3), Time::new(10)]);
    }
}
