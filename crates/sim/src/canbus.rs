//! Non-preemptive priority arbitration of a CAN bus.

use std::collections::VecDeque;

use hem_analysis::Priority;
use hem_time::Time;

use crate::error::SimError;

/// A frame's queue of transmission requests for the bus simulation.
#[derive(Debug, Clone)]
pub struct QueuedFrame {
    /// Frame name (for reporting).
    pub name: String,
    /// Arbitration priority (lower wins).
    pub priority: Priority,
    /// Transmission time of one instance on the wire.
    pub transmission_time: Time,
    /// Sorted queue times of the instances to transmit.
    pub queued_at: Vec<Time>,
}

/// One completed transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transmission {
    /// Index of the frame in the input slice.
    pub frame: usize,
    /// Index of the instance within its frame's queue.
    pub instance: usize,
    /// When the instance was queued.
    pub queued_at: Time,
    /// When transmission started (arbitration won).
    pub started_at: Time,
    /// When the last bit left the wire.
    pub completed_at: Time,
}

impl Transmission {
    /// The instance's response time: completion minus queueing.
    #[must_use]
    pub fn response(&self) -> Time {
        self.completed_at - self.queued_at
    }
}

/// Simulates CAN arbitration: whenever the bus goes idle, the
/// highest-priority queued instance is transmitted without preemption;
/// instances of the same frame transmit in FIFO order.
///
/// Returns all transmissions in completion order.
///
/// # Panics
///
/// Panics if two frames share a priority (arbitration would be
/// undefined), a queue is unsorted, or a transmission time is < 1.
/// [`try_simulate`] reports the same conditions as a [`SimError`]
/// instead.
#[must_use]
pub fn simulate(frames: &[QueuedFrame]) -> Vec<Transmission> {
    try_simulate(frames).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`simulate`].
///
/// # Errors
///
/// Returns a [`SimError`] if two frames share a priority, a queue is
/// unsorted, or a transmission time is < 1.
pub fn try_simulate(frames: &[QueuedFrame]) -> Result<Vec<Transmission>, SimError> {
    try_simulate_with_times(frames, |frame, _instance| frames[frame].transmission_time)
}

/// Like [`simulate`], but with a per-instance wire time supplied by
/// `time(frame_index, instance_index)` — e.g. sampled from the
/// unstuffed/stuffed length interval for randomized validation runs, or
/// inflated by retransmission overhead under a fault plan. Each frame's
/// `transmission_time` field is ignored.
///
/// # Panics
///
/// Same conditions as [`simulate`], plus `time` returning < 1.
#[must_use]
pub fn simulate_with_times(
    frames: &[QueuedFrame],
    time: impl FnMut(usize, usize) -> Time,
) -> Vec<Transmission> {
    try_simulate_with_times(frames, time).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`simulate_with_times`].
///
/// # Errors
///
/// Same conditions as [`try_simulate`], plus `time` returning < 1.
pub fn try_simulate_with_times(
    frames: &[QueuedFrame],
    mut time: impl FnMut(usize, usize) -> Time,
) -> Result<Vec<Transmission>, SimError> {
    for (i, f) in frames.iter().enumerate() {
        if f.transmission_time < Time::ONE {
            return Err(SimError::non_positive(format!(
                "transmission time of `{}`",
                f.name
            )));
        }
        if !f.queued_at.windows(2).all(|w| w[0] <= w[1]) {
            return Err(SimError::unsorted(format!("queue of `{}`", f.name)));
        }
        if frames[i + 1..].iter().any(|g| g.priority == f.priority) {
            return Err(SimError::DuplicatePriority {
                priority: f.priority,
            });
        }
    }
    let mut queues: Vec<VecDeque<(usize, Time)>> = frames
        .iter()
        .map(|f| f.queued_at.iter().copied().enumerate().collect())
        .collect();
    let total: usize = queues.iter().map(VecDeque::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut now = Time::ZERO;
    while out.len() < total {
        // Highest-priority instance already queued at `now`.
        let ready = (0..frames.len())
            .filter(|&i| queues[i].front().is_some_and(|&(_, t)| t <= now))
            .min_by_key(|&i| frames[i].priority);
        match ready {
            Some(i) => {
                let (instance, queued_at) = queues[i].pop_front().expect("non-empty");
                let started_at = now;
                let c = time(i, instance);
                if c < Time::ONE {
                    return Err(SimError::non_positive(format!("time({i}, {instance})")));
                }
                let completed_at = now + c;
                out.push(Transmission {
                    frame: i,
                    instance,
                    queued_at,
                    started_at,
                    completed_at,
                });
                now = completed_at;
            }
            None => {
                // Idle: jump to the earliest pending queue time.
                now = queues
                    .iter()
                    .filter_map(|q| q.front().map(|&(_, t)| t))
                    .min()
                    .expect("instances remain");
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(name: &str, prio: u32, c: i64, queued: &[i64]) -> QueuedFrame {
        QueuedFrame {
            name: name.into(),
            priority: Priority::new(prio),
            transmission_time: Time::new(c),
            queued_at: queued.iter().map(|&t| Time::new(t)).collect(),
        }
    }

    #[test]
    fn priority_wins_arbitration() {
        // Both queued at 0: high goes first.
        let t = simulate(&[frame("hi", 1, 10, &[0]), frame("lo", 2, 20, &[0])]);
        assert_eq!(t[0].frame, 0);
        assert_eq!(t[0].completed_at, Time::new(10));
        assert_eq!(t[1].frame, 1);
        assert_eq!(t[1].started_at, Time::new(10));
        assert_eq!(t[1].completed_at, Time::new(30));
    }

    #[test]
    fn no_preemption_once_started() {
        // lo starts at 0; hi arrives at 1 but must wait until 20.
        let t = simulate(&[frame("hi", 1, 10, &[1]), frame("lo", 2, 20, &[0])]);
        assert_eq!(t[0].frame, 1);
        assert_eq!(t[1].frame, 0);
        assert_eq!(t[1].started_at, Time::new(20));
        assert_eq!(t[1].response(), Time::new(29));
    }

    #[test]
    fn same_frame_fifo() {
        let t = simulate(&[frame("f", 1, 10, &[0, 0, 5])]);
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].instance, 0);
        assert_eq!(t[1].instance, 1);
        assert_eq!(t[2].instance, 2);
        assert_eq!(t[2].completed_at, Time::new(30));
    }

    #[test]
    fn idle_gaps_are_skipped() {
        let t = simulate(&[frame("f", 1, 10, &[100])]);
        assert_eq!(t[0].started_at, Time::new(100));
        assert_eq!(t[0].completed_at, Time::new(110));
        assert_eq!(t[0].response(), Time::new(10));
    }

    #[test]
    fn burst_of_high_priority_starves_low() {
        let t = simulate(&[
            frame("hi", 1, 10, &[0, 5, 15, 25]),
            frame("lo", 2, 10, &[0]),
        ]);
        // hi transmits back-to-back 0-40; lo waits until 40.
        let lo = t.iter().find(|x| x.frame == 1).unwrap();
        assert_eq!(lo.started_at, Time::new(40));
        assert_eq!(lo.response(), Time::new(50));
    }

    #[test]
    fn variable_transmission_times_respected() {
        let t = simulate_with_times(&[frame("f", 1, 10, &[0, 0])], |_, instance| {
            Time::new(10 + 5 * instance as i64)
        });
        assert_eq!(t[0].completed_at, Time::new(10));
        assert_eq!(t[1].completed_at, Time::new(25));
    }

    #[test]
    #[should_panic(expected = "duplicate priority")]
    fn duplicate_priorities_panic() {
        let _ = simulate(&[frame("a", 1, 10, &[0]), frame("b", 1, 10, &[0])]);
    }

    #[test]
    fn try_simulate_reports_errors_without_panicking() {
        let err = try_simulate(&[frame("a", 1, 10, &[0]), frame("b", 1, 10, &[0])]).unwrap_err();
        assert_eq!(
            err,
            SimError::DuplicatePriority {
                priority: Priority::new(1)
            }
        );
        let err = try_simulate(&[frame("f", 1, 10, &[5, 0])]).unwrap_err();
        assert!(matches!(err, SimError::UnsortedTrace { .. }));
        let err = try_simulate(&[frame("f", 1, 0, &[0])]).unwrap_err();
        assert!(matches!(err, SimError::NonPositiveTime { .. }));
        let err =
            try_simulate_with_times(&[frame("f", 1, 10, &[0])], |_, _| Time::ZERO).unwrap_err();
        assert!(err.to_string().contains("time(0, 0)"));
    }

    #[test]
    fn empty_queues_produce_no_transmissions() {
        let t = simulate(&[frame("f", 1, 10, &[])]);
        assert!(t.is_empty());
    }
}
