//! Preemptive earliest-deadline-first CPU scheduling simulation.

use hem_time::Time;

use crate::error::SimError;

/// A deadline-scheduled task on the simulated CPU.
#[derive(Debug, Clone)]
pub struct EdfSimTask {
    /// Task name (for reporting).
    pub name: String,
    /// Execution time of each job.
    pub execution_time: Time,
    /// Relative deadline (absolute deadline = activation + deadline).
    pub deadline: Time,
    /// Sorted activation times.
    pub activations: Vec<Time>,
}

/// One completed EDF job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdfJob {
    /// Index of the task in the input slice.
    pub task: usize,
    /// Index of the activation within the task.
    pub instance: usize,
    /// Activation time.
    pub activated_at: Time,
    /// Absolute deadline.
    pub deadline_at: Time,
    /// Completion time.
    pub completed_at: Time,
}

impl EdfJob {
    /// The job's response time.
    #[must_use]
    pub fn response(&self) -> Time {
        self.completed_at - self.activated_at
    }

    /// Whether the job finished by its absolute deadline.
    #[must_use]
    pub fn met_deadline(&self) -> bool {
        self.completed_at <= self.deadline_at
    }
}

/// Simulates preemptive EDF: at every instant the pending job with the
/// earliest absolute deadline runs (ties broken by activation time, then
/// task index). Returns all jobs in completion order.
///
/// # Panics
///
/// Panics if an activation list is unsorted or an execution time or
/// deadline is < 1. [`try_simulate`] reports the same conditions as a
/// [`SimError`] instead.
#[must_use]
pub fn simulate(tasks: &[EdfSimTask]) -> Vec<EdfJob> {
    try_simulate(tasks).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`simulate`].
///
/// # Errors
///
/// Returns a [`SimError`] if an activation list is unsorted or an
/// execution time or deadline is < 1.
pub fn try_simulate(tasks: &[EdfSimTask]) -> Result<Vec<EdfJob>, SimError> {
    for t in tasks {
        if t.execution_time < Time::ONE {
            return Err(SimError::non_positive(format!(
                "execution time of `{}`",
                t.name
            )));
        }
        if t.deadline < Time::ONE {
            return Err(SimError::non_positive(format!("deadline of `{}`", t.name)));
        }
        if !t.activations.windows(2).all(|w| w[0] <= w[1]) {
            return Err(SimError::unsorted(format!("activations of `{}`", t.name)));
        }
    }
    let mut arrivals: Vec<(Time, usize, usize)> = tasks
        .iter()
        .enumerate()
        .flat_map(|(ti, t)| {
            t.activations
                .iter()
                .enumerate()
                .map(move |(ii, &at)| (at, ti, ii))
        })
        .collect();
    arrivals.sort_unstable();

    // Ready jobs: (absolute deadline, activation, task, instance, remaining).
    let mut ready: Vec<(Time, Time, usize, usize, Time)> = Vec::new();
    let mut out = Vec::with_capacity(arrivals.len());
    let mut now = Time::ZERO;
    let mut next_arrival = 0usize;

    loop {
        while next_arrival < arrivals.len() && arrivals[next_arrival].0 <= now {
            let (at, ti, ii) = arrivals[next_arrival];
            ready.push((
                at + tasks[ti].deadline,
                at,
                ti,
                ii,
                tasks[ti].execution_time,
            ));
            next_arrival += 1;
        }
        if ready.is_empty() {
            if next_arrival >= arrivals.len() {
                break;
            }
            now = arrivals[next_arrival].0;
            continue;
        }
        let best = ready
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(dl, at, ti, ii, _))| (dl, at, ti, ii))
            .map(|(i, _)| i)
            .expect("non-empty ready queue");
        let horizon = if next_arrival < arrivals.len() {
            arrivals[next_arrival].0
        } else {
            Time::MAX
        };
        let (dl, at, ti, ii, remaining) = ready[best];
        let slice = remaining.min(horizon - now);
        if slice == remaining {
            now += remaining;
            ready.swap_remove(best);
            out.push(EdfJob {
                task: ti,
                instance: ii,
                activated_at: at,
                deadline_at: dl,
                completed_at: now,
            });
        } else {
            ready[best].4 = remaining - slice;
            now = horizon;
        }
    }
    out.sort_unstable_by_key(|j| (j.completed_at, j.task, j.instance));
    Ok(out)
}

/// Whether every job in the run met its deadline; on failure returns the
/// first missing job.
#[must_use]
pub fn first_deadline_miss(jobs: &[EdfJob]) -> Option<EdfJob> {
    jobs.iter().find(|j| !j.met_deadline()).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace;

    fn task(name: &str, c: i64, d: i64, activations: &[i64]) -> EdfSimTask {
        EdfSimTask {
            name: name.into(),
            execution_time: Time::new(c),
            deadline: Time::new(d),
            activations: activations.iter().map(|&t| Time::new(t)).collect(),
        }
    }

    #[test]
    fn earliest_deadline_runs_first() {
        // Both arrive at 0; b's deadline is earlier despite arriving as
        // the second task in the list.
        let jobs = simulate(&[task("a", 5, 100, &[0]), task("b", 5, 20, &[0])]);
        assert_eq!(jobs[0].task, 1);
        assert_eq!(jobs[0].completed_at, Time::new(5));
        assert_eq!(jobs[1].completed_at, Time::new(10));
        assert!(jobs.iter().all(EdfJob::met_deadline));
    }

    #[test]
    fn preemption_on_earlier_deadline_arrival() {
        // a (D=100) starts; b (D=10) arrives at 2 and preempts.
        let jobs = simulate(&[task("a", 10, 100, &[0]), task("b", 3, 10, &[2])]);
        let b = jobs.iter().find(|j| j.task == 1).unwrap();
        assert_eq!(b.completed_at, Time::new(5));
        let a = jobs.iter().find(|j| j.task == 0).unwrap();
        assert_eq!(a.completed_at, Time::new(13));
    }

    #[test]
    fn no_preemption_for_later_deadline() {
        // a (absolute deadline 8) keeps running when b (deadline 2+20)
        // arrives.
        let jobs = simulate(&[task("a", 6, 8, &[0]), task("b", 2, 20, &[2])]);
        assert_eq!(jobs[0].task, 0);
        assert_eq!(jobs[0].completed_at, Time::new(6));
    }

    #[test]
    fn full_utilization_meets_implicit_deadlines() {
        // U = 1 with implicit deadlines: EDF schedules it (C/P = 2/4 + 3/6).
        let horizon = Time::new(6_000);
        let tasks = [
            EdfSimTask {
                name: "a".into(),
                execution_time: Time::new(2),
                deadline: Time::new(4),
                activations: trace::periodic(Time::new(4), horizon),
            },
            EdfSimTask {
                name: "b".into(),
                execution_time: Time::new(3),
                deadline: Time::new(6),
                activations: trace::periodic(Time::new(6), horizon),
            },
        ];
        let jobs = simulate(&tasks);
        assert_eq!(first_deadline_miss(&jobs), None);
    }

    #[test]
    fn try_simulate_reports_errors_without_panicking() {
        let err = try_simulate(&[task("a", 5, 0, &[0])]).unwrap_err();
        assert_eq!(err.to_string(), "deadline of `a` must be positive");
    }

    #[test]
    fn overload_misses_deadlines() {
        let horizon = Time::new(600);
        let tasks = [
            EdfSimTask {
                name: "a".into(),
                execution_time: Time::new(3),
                deadline: Time::new(4),
                activations: trace::periodic(Time::new(4), horizon),
            },
            EdfSimTask {
                name: "b".into(),
                execution_time: Time::new(3),
                deadline: Time::new(6),
                activations: trace::periodic(Time::new(6), horizon),
            },
        ];
        let jobs = simulate(&tasks);
        assert!(first_deadline_miss(&jobs).is_some());
    }
}
