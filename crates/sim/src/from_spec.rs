//! Deriving a behavioural network from an analysis system description.
//!
//! Validation campaigns need the *same* system twice: once as a
//! [`SystemSpec`] for the analysis engine and once as a
//! [`NetSystem`] for the simulator.
//! Hand-writing both invites divergence; this module derives the
//! simulation structurally from the spec. The only thing the caller
//! supplies is what a spec cannot contain — concrete event traces for
//! the external sources, keyed by where they attach:
//!
//! * `"<frame>/<signal>"` for an external signal source,
//! * `"task:<name>"` for an externally-activated task.
//!
//! Task-output activations become task-completion chains (valid across
//! CPUs; a same-CPU chain is a simulation-level dependency cycle).
//!
//! Everything else (frame wire times from payloads, priorities,
//! gateway forwarding from `TaskOutput` sources, flat `FrameArrivals`
//! receivers) is translated mechanically.

use std::collections::BTreeMap;

use hem_system::{ActivationSpec, SystemSpec};
use hem_time::Time;

use hem_can::CanFrameConfig;

use crate::network::{NetActivation, NetFrame, NetSignal, NetSource, NetSystem, NetTask};

/// Error translating a [`SystemSpec`] into a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FromSpecError {
    /// An external source has no trace in the provided map.
    MissingTrace(String),
    /// The spec uses an activation the simulator cannot execute
    /// (`AnyOf` / `AllOf` composites).
    Unsupported(String),
    /// The spec references an unknown bus, or a payload is invalid.
    Invalid(String),
}

impl std::fmt::Display for FromSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FromSpecError::MissingTrace(key) => {
                write!(f, "no external trace provided for `{key}`")
            }
            FromSpecError::Unsupported(what) => {
                write!(f, "the simulator cannot execute {what}")
            }
            FromSpecError::Invalid(msg) => write!(f, "invalid spec: {msg}"),
        }
    }
}

impl std::error::Error for FromSpecError {}

/// Translates an analysis spec plus external traces into a runnable
/// [`NetSystem`].
///
/// Frames transmit at their worst-case wire length (the conservative
/// choice for validating worst-case bounds); tasks execute for their
/// WCET.
///
/// # Errors
///
/// See [`FromSpecError`].
pub fn net_system_from_spec(
    spec: &SystemSpec,
    external_traces: &BTreeMap<String, Vec<Time>>,
) -> Result<NetSystem, FromSpecError> {
    let mut frames = Vec::with_capacity(spec.frames.len());
    for f in &spec.frames {
        let bus = spec
            .buses
            .iter()
            .find(|b| b.name == f.bus)
            .ok_or_else(|| FromSpecError::Invalid(format!("unknown bus `{}`", f.bus)))?;
        let config = CanFrameConfig::new(f.format, f.payload_bytes)
            .map_err(|e| FromSpecError::Invalid(e.to_string()))?;
        let mut signals = Vec::with_capacity(f.signals.len());
        for s in &f.signals {
            let source = match &s.source {
                ActivationSpec::External(_) => {
                    let key = format!("{}/{}", f.name, s.name);
                    NetSource::Trace(
                        external_traces
                            .get(&key)
                            .cloned()
                            .ok_or(FromSpecError::MissingTrace(key))?,
                    )
                }
                ActivationSpec::TaskOutput(task) => NetSource::TaskCompletions(task.clone()),
                other => {
                    return Err(FromSpecError::Unsupported(format!(
                        "signal source {other:?}"
                    )));
                }
            };
            signals.push(NetSignal {
                name: s.name.clone(),
                transfer: s.transfer,
                source,
            });
        }
        frames.push(NetFrame {
            name: f.name.clone(),
            bus: f.bus.clone(),
            priority: f.priority,
            transmission_time: bus.config.transmission_time(&config).r_plus,
            frame_type: f.frame_type,
            signals,
        });
    }

    let mut tasks = Vec::with_capacity(spec.tasks.len());
    for t in &spec.tasks {
        let activation = match &t.activation {
            ActivationSpec::External(_) => {
                let key = format!("task:{}", t.name);
                NetActivation::Trace(
                    external_traces
                        .get(&key)
                        .cloned()
                        .ok_or(FromSpecError::MissingTrace(key))?,
                )
            }
            ActivationSpec::Signal { frame, signal } => NetActivation::Delivery {
                frame: frame.clone(),
                signal: signal.clone(),
            },
            ActivationSpec::FrameArrivals(frame) => {
                NetActivation::FrameTransmissions(frame.clone())
            }
            ActivationSpec::TaskOutput(task) => NetActivation::TaskCompletions(task.clone()),
            ActivationSpec::AnyOf(_) | ActivationSpec::AllOf(_) => {
                return Err(FromSpecError::Unsupported(
                    "composite (AnyOf/AllOf) activations".into(),
                ));
            }
        };
        tasks.push(NetTask {
            name: t.name.clone(),
            cpu: t.cpu.clone(),
            priority: t.priority,
            execution_time: t.wcet,
            activation,
        });
    }
    Ok(NetSystem { frames, tasks })
}

/// Translates a spec and runs it under a fault plan in one step: the
/// one-call entry point for validating *any* analysable system under
/// injected faults (see [`crate::fault`]).
///
/// Equivalent to [`net_system_from_spec`] followed by
/// [`crate::network::run_with_faults`].
///
/// # Errors
///
/// See [`FromSpecError`]; simulation-level rejections (e.g. a rogue
/// overload frame colliding with a real priority, or a gateway loop)
/// are reported as [`FromSpecError::Invalid`].
pub fn simulate_spec_under_faults(
    spec: &SystemSpec,
    external_traces: &BTreeMap<String, Vec<Time>>,
    horizon: Time,
    plan: &crate::fault::FaultPlan,
) -> Result<crate::network::NetReport, FromSpecError> {
    let net = net_system_from_spec(spec, external_traces)?;
    crate::network::try_run_with_faults(&net, horizon, plan)
        .map_err(|e| FromSpecError::Invalid(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace;
    use hem_analysis::Priority;
    use hem_autosar_com::{FrameType, TransferProperty};
    use hem_can::{CanBusConfig, FrameFormat};
    use hem_event_models::{EventModelExt, StandardEventModel};
    use hem_system::{FrameSpec, SignalSpec, TaskSpec};

    fn spec() -> SystemSpec {
        SystemSpec::new()
            .cpu("cpu")
            .bus("can", CanBusConfig::new(Time::new(1)))
            .frame(FrameSpec {
                name: "F".into(),
                bus: "can".into(),
                frame_type: FrameType::Direct,
                payload_bytes: 4,
                format: FrameFormat::Standard,
                priority: Priority::new(1),
                signals: vec![SignalSpec {
                    name: "s".into(),
                    transfer: TransferProperty::Triggering,
                    source: ActivationSpec::External(
                        StandardEventModel::periodic(Time::new(1_000))
                            .expect("valid")
                            .shared(),
                    ),
                }],
            })
            .task(TaskSpec {
                name: "rx".into(),
                cpu: "cpu".into(),
                bcet: Time::new(40),
                wcet: Time::new(60),
                priority: Priority::new(1),
                activation: ActivationSpec::Signal {
                    frame: "F".into(),
                    signal: "s".into(),
                },
            })
    }

    #[test]
    fn translates_and_runs() {
        let horizon = Time::new(20_000);
        let mut traces = BTreeMap::new();
        traces.insert(
            "F/s".to_string(),
            trace::periodic(Time::new(1_000), horizon),
        );
        let net = net_system_from_spec(&spec(), &traces).unwrap();
        assert_eq!(net.frames.len(), 1);
        assert_eq!(net.frames[0].transmission_time, Time::new(95));
        assert_eq!(net.tasks[0].execution_time, Time::new(60)); // WCET
        let report = crate::network::run(&net, horizon);
        assert_eq!(report.deliveries["F/s"].len(), 20);
        assert_eq!(report.task_worst_response["rx"], Time::new(60));
    }

    #[test]
    fn spec_simulated_under_faults() {
        use crate::fault::{Fault, FaultPlan, FaultTarget};
        let horizon = Time::new(20_000);
        let mut traces = BTreeMap::new();
        traces.insert(
            "F/s".to_string(),
            trace::periodic(Time::new(1_000), horizon),
        );
        let plan = FaultPlan::new(2).with(Fault::FrameCorruption {
            frame: FaultTarget::Named("F".into()),
            probability: 1.0,
            error_frame: Time::new(31),
            max_retransmissions: 1,
        });
        let report = simulate_spec_under_faults(&spec(), &traces, horizon, &plan).unwrap();
        // Uncontended corrupted frame: 2·95 + 31 per instance.
        assert_eq!(report.frame_worst_response["F"], Time::new(221));
        assert_eq!(report.deliveries["F/s"].len(), 20);
        // Fault-free plan matches the plain run.
        let plain =
            simulate_spec_under_faults(&spec(), &traces, horizon, &FaultPlan::none()).unwrap();
        assert_eq!(plain.frame_worst_response["F"], Time::new(95));
    }

    #[test]
    fn missing_trace_reported() {
        let err = net_system_from_spec(&spec(), &BTreeMap::new()).unwrap_err();
        assert_eq!(err, FromSpecError::MissingTrace("F/s".into()));
        assert!(err.to_string().contains("F/s"));
    }

    #[test]
    fn frame_arrivals_become_transmissions() {
        let mut s = spec();
        s.tasks[0].activation = ActivationSpec::FrameArrivals("F".into());
        let horizon = Time::new(20_000);
        let mut traces = BTreeMap::new();
        traces.insert(
            "F/s".to_string(),
            trace::periodic(Time::new(1_000), horizon),
        );
        let net = net_system_from_spec(&s, &traces).unwrap();
        assert!(matches!(
            net.tasks[0].activation,
            NetActivation::FrameTransmissions(_)
        ));
        let report = crate::network::run(&net, horizon);
        assert_eq!(report.task_worst_response["rx"], Time::new(60));
    }

    #[test]
    fn composite_activation_rejected() {
        let mut s = spec();
        s.tasks[0].activation =
            ActivationSpec::AnyOf(vec![ActivationSpec::FrameArrivals("F".into())]);
        let traces = BTreeMap::new();
        // Frame trace missing too, but the unsupported activation may be
        // reported either way; accept both error kinds here.
        let err = net_system_from_spec(&s, &traces).unwrap_err();
        assert!(matches!(
            err,
            FromSpecError::Unsupported(_) | FromSpecError::MissingTrace(_)
        ));
    }
}
