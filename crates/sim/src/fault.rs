//! Seeded, deterministic fault injection for the simulators.
//!
//! A [`FaultPlan`] is a composable list of [`Fault`]s plus a seed. The
//! simulation harnesses ([`crate::system::run_with_faults`],
//! [`crate::network::run_with_faults`]) consult the plan at their
//! physical injection points:
//!
//! * **frame corruption** — each transmission attempt of a matching CAN
//!   frame is independently corrupted; a corrupted attempt occupies the
//!   bus for the full wire time plus an error-frame overhead before the
//!   controller retransmits (Tindell's CAN fault model, bounded by
//!   `max_retransmissions`),
//! * **activation jitter** — external write/activation events are
//!   delayed by a uniformly sampled amount,
//! * **bus overload** — a babbling idiot queues rogue frames
//!   back-to-back during a window,
//! * **clock drift** — external event times are scaled by a ppm factor
//!   (a fast or slow local oscillator).
//!
//! Every random draw is derived from `(seed, fault index, entity name)`,
//! so a run is reproducible bit-for-bit and independent of iteration
//! order: the same plan injects the same faults into the same entities
//! no matter how the system around them changes.
//!
//! # Target naming
//!
//! [`FaultTarget::Named`] is matched against:
//!
//! * the **frame name** for [`Fault::FrameCorruption`],
//! * `"<frame>/<signal>"` for signal write traces and `"task:<name>"`
//!   for external task activation traces
//!   ([`Fault::ActivationJitter`], [`Fault::ClockDrift`]),
//! * the **bus name** for [`Fault::BusOverload`] (the single-bus harness
//!   in [`crate::system`] answers to the name `"bus"`).
//!
//! Only *external* event sources are perturbed; internally produced
//! events (deliveries, task completions) shift as a consequence of the
//! upstream faults, which is exactly how a real system degrades.
//!
//! # Conservative analysis margins
//!
//! For every physical fault the plan can also produce the matching
//! *analytic* margin, so a fault-injected simulation can be checked
//! against a fault-aware worst-case analysis:
//!
//! * [`FaultPlan::wire_time_bound`] — the classical retransmission bound
//!   `C' = (k+1)·C + k·E`,
//! * [`FaultPlan::jitter_bound`] — an upper bound on how far any event
//!   before a horizon can be displaced (jitter plus accumulated drift),
//!   suitable as extra input jitter on the analytic event model.

use hem_analysis::Priority;
use hem_time::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::canbus::QueuedFrame;

/// Selects which named entities a fault applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTarget {
    /// Every entity the fault kind can apply to.
    All,
    /// Exactly the entity with this name (see the module docs for the
    /// naming convention).
    Named(String),
}

impl FaultTarget {
    /// Whether this target selects `name`.
    #[must_use]
    pub fn matches(&self, name: &str) -> bool {
        match self {
            FaultTarget::All => true,
            FaultTarget::Named(n) => n == name,
        }
    }
}

/// One injectable fault.
#[derive(Debug, Clone)]
pub enum Fault {
    /// Electromagnetic interference corrupting CAN transmissions.
    ///
    /// Each transmission attempt of a matching frame is corrupted with
    /// `probability`; a corrupted attempt occupies the bus for the
    /// attempt's wire time plus `error_frame` ticks (error flag +
    /// interframe space) and the controller retransmits automatically.
    /// At most `max_retransmissions` retransmissions happen per
    /// instance, matching the fault hypothesis `k` of the analytic bound
    /// `C' = (k+1)·C + k·E`.
    FrameCorruption {
        /// Which frames are hit.
        frame: FaultTarget,
        /// Per-attempt corruption probability in `[0, 1]`.
        probability: f64,
        /// Bus occupancy of one error frame (error flag, delimiter,
        /// interframe space), in ticks.
        error_frame: Time,
        /// Cap on retransmissions per frame instance (`k`).
        max_retransmissions: u32,
    },
    /// Release jitter on an external event trace: every event is delayed
    /// by an independent uniform draw from `[0, max_delay]`.
    ActivationJitter {
        /// Which traces are hit (see module docs for naming).
        target: FaultTarget,
        /// Largest injected delay.
        max_delay: Time,
    },
    /// Babbling-idiot overload: a rogue node queues a frame of
    /// `transmission_time` ticks every `period` ticks during
    /// `[from, until)`, competing in arbitration at `priority`.
    ///
    /// The rogue priority must not collide with a real frame on the same
    /// bus — the bus simulation rejects duplicate priorities.
    BusOverload {
        /// Which buses are flooded.
        bus: FaultTarget,
        /// Arbitration priority of the rogue frame (lower wins; a
        /// babbling idiot typically uses the highest).
        priority: Priority,
        /// Wire time of one rogue transmission.
        transmission_time: Time,
        /// Queueing period of the rogue frame.
        period: Time,
        /// Start of the overload window (inclusive).
        from: Time,
        /// End of the overload window (exclusive).
        until: Time,
    },
    /// Clock drift: event times of matching external traces are scaled
    /// by `1 + drift_ppm / 1_000_000` (positive = slow clock, events
    /// late; negative = fast clock, events early, clamped at 0).
    ClockDrift {
        /// Which traces are hit (see module docs for naming).
        target: FaultTarget,
        /// Drift in parts per million, `|drift_ppm| < 1_000_000`.
        drift_ppm: i64,
    },
}

/// A composable, seeded, deterministic set of faults to inject into a
/// simulation run.
///
/// # Examples
///
/// ```
/// use hem_sim::fault::{Fault, FaultPlan, FaultTarget};
/// use hem_time::Time;
///
/// let plan = FaultPlan::new(42).with(Fault::FrameCorruption {
///     frame: FaultTarget::All,
///     probability: 0.1,
///     error_frame: Time::new(31),
///     max_retransmissions: 2,
/// });
/// // Deterministic: the same plan produces the same effective wire
/// // times for the same frame.
/// let a = plan.wire_times("F", Time::new(95), 100);
/// let b = plan.wire_times("F", Time::new(95), 100);
/// assert_eq!(a, b);
/// // And every sample respects the analytic retransmission bound.
/// let bound = plan.wire_time_bound("F", Time::new(95));
/// assert!(a.iter().all(|&t| t <= bound));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Creates an empty plan with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// The fault-free plan; simulating under it is identical to the
    /// plain simulation entry points.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault to the plan.
    ///
    /// # Panics
    ///
    /// Panics on malformed fault parameters: a corruption probability
    /// outside `[0, 1]`, a negative error-frame overhead or delay, a
    /// non-positive overload period or transmission time, or a drift of
    /// a million ppm or more.
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        match &fault {
            Fault::FrameCorruption {
                probability,
                error_frame,
                ..
            } => {
                assert!(
                    (0.0..=1.0).contains(probability),
                    "corruption probability must be within [0, 1], got {probability}"
                );
                assert!(
                    !error_frame.is_negative(),
                    "error-frame overhead must be non-negative, got {error_frame}"
                );
            }
            Fault::ActivationJitter { max_delay, .. } => {
                assert!(
                    !max_delay.is_negative(),
                    "jitter delay must be non-negative, got {max_delay}"
                );
            }
            Fault::BusOverload {
                transmission_time,
                period,
                ..
            } => {
                assert!(
                    *transmission_time >= Time::ONE,
                    "overload transmission time must be positive, got {transmission_time}"
                );
                assert!(
                    *period >= Time::ONE,
                    "overload period must be positive, got {period}"
                );
            }
            Fault::ClockDrift { drift_ppm, .. } => {
                assert!(
                    drift_ppm.unsigned_abs() < 1_000_000,
                    "clock drift must be below a million ppm, got {drift_ppm}"
                );
            }
        }
        self.faults.push(fault);
        self
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The faults in injection order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// A generator derived from `(seed, fault index, entity name)`:
    /// deterministic and independent of the order entities are visited
    /// in by the simulators.
    fn entity_rng(&self, fault_index: usize, entity: &str) -> StdRng {
        // FNV-1a over the entity name, mixed with the fault index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in entity.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h = (h ^ (fault_index as u64)).wrapping_mul(0x0000_0100_0000_01b3);
        StdRng::seed_from_u64(self.seed ^ h)
    }

    /// Effective per-instance bus occupancy of `frame` under the plan's
    /// corruption faults: for each instance the number of corrupted
    /// attempts `r ≤ k` is sampled and the occupancy becomes
    /// `(r+1)·C + r·E`. Without a matching fault every entry is `base`.
    #[must_use]
    pub fn wire_times(&self, frame: &str, base: Time, instances: usize) -> Vec<Time> {
        let mut times = vec![base; instances];
        for (idx, fault) in self.faults.iter().enumerate() {
            let Fault::FrameCorruption {
                frame: target,
                probability,
                error_frame,
                max_retransmissions,
            } = fault
            else {
                continue;
            };
            if !target.matches(frame) {
                continue;
            }
            let mut rng = self.entity_rng(idx, frame);
            for t in &mut times {
                let mut retries: u32 = 0;
                while retries < *max_retransmissions && rng.gen_bool(*probability) {
                    retries += 1;
                }
                let r = i64::from(retries);
                *t = *t * (r + 1) + *error_frame * r;
            }
        }
        times
    }

    /// Upper bound on the per-instance bus occupancy of `frame`: the
    /// classical retransmission bound `C' = (k+1)·C + k·E`, composed
    /// over every matching corruption fault. Every sample produced by
    /// [`FaultPlan::wire_times`] is `≤` this bound.
    #[must_use]
    pub fn wire_time_bound(&self, frame: &str, base: Time) -> Time {
        let mut c = base;
        for fault in &self.faults {
            if let Fault::FrameCorruption {
                frame: target,
                error_frame,
                max_retransmissions,
                ..
            } = fault
            {
                if target.matches(frame) {
                    let k = i64::from(*max_retransmissions);
                    c = c * (k + 1) + *error_frame * k;
                }
            }
        }
        c
    }

    /// Applies the plan's clock-drift and activation-jitter faults to an
    /// external event trace. The result is sorted; events never move
    /// before time zero.
    #[must_use]
    pub fn perturb_trace(&self, target_name: &str, trace: &[Time]) -> Vec<Time> {
        let mut out: Vec<Time> = trace.to_vec();
        for (idx, fault) in self.faults.iter().enumerate() {
            match fault {
                Fault::ClockDrift { target, drift_ppm } if target.matches(target_name) => {
                    for t in &mut out {
                        let shift = Time::new(t.ticks() * drift_ppm / 1_000_000);
                        *t = (*t + shift).clamp_non_negative();
                    }
                }
                Fault::ActivationJitter { target, max_delay } if target.matches(target_name) => {
                    let mut rng = self.entity_rng(idx, target_name);
                    for t in &mut out {
                        *t += Time::new(rng.gen_range(0..=max_delay.ticks()));
                    }
                }
                _ => {}
            }
        }
        out.sort_unstable();
        out
    }

    /// Upper bound on how far [`FaultPlan::perturb_trace`] can displace
    /// any event that happens before `horizon`: the sum of the matching
    /// jitter delays plus the drift accumulated over the horizon.
    ///
    /// Adding this bound as extra input jitter to the analytic event
    /// model makes the analysis conservative for the faulted trace.
    #[must_use]
    pub fn jitter_bound(&self, target_name: &str, horizon: Time) -> Time {
        let mut j = Time::ZERO;
        for fault in &self.faults {
            match fault {
                Fault::ActivationJitter { target, max_delay } if target.matches(target_name) => {
                    j += *max_delay;
                }
                Fault::ClockDrift { target, drift_ppm } if target.matches(target_name) => {
                    let ppm = i64::try_from(drift_ppm.unsigned_abs()).expect("< 1e6");
                    j += Time::new((horizon.ticks() * ppm + 999_999) / 1_000_000);
                }
                _ => {}
            }
        }
        j
    }

    /// The rogue frames the plan's babbling idiots queue on `bus` before
    /// `horizon`, ready to append to the bus simulation input.
    #[must_use]
    pub fn overload_frames(&self, bus: &str, horizon: Time) -> Vec<QueuedFrame> {
        let mut rogues = Vec::new();
        for (idx, fault) in self.faults.iter().enumerate() {
            let Fault::BusOverload {
                bus: target,
                priority,
                transmission_time,
                period,
                from,
                until,
            } = fault
            else {
                continue;
            };
            if !target.matches(bus) {
                continue;
            }
            let mut queued_at = Vec::new();
            let mut t = *from;
            while t < *until && t < horizon {
                queued_at.push(t);
                t += *period;
            }
            rogues.push(QueuedFrame {
                name: format!("!babble{idx}"),
                priority: *priority,
                transmission_time: *transmission_time,
                queued_at,
            });
        }
        rogues
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corruption(p: f64, e: i64, k: u32) -> Fault {
        Fault::FrameCorruption {
            frame: FaultTarget::All,
            probability: p,
            error_frame: Time::new(e),
            max_retransmissions: k,
        }
    }

    #[test]
    fn empty_plan_is_identity() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(
            plan.wire_times("F", Time::new(95), 3),
            vec![Time::new(95); 3]
        );
        let trace = vec![Time::new(0), Time::new(10)];
        assert_eq!(plan.perturb_trace("task:t", &trace), trace);
        assert_eq!(plan.jitter_bound("task:t", Time::new(1_000)), Time::ZERO);
        assert!(plan.overload_frames("bus", Time::new(1_000)).is_empty());
    }

    #[test]
    fn wire_times_deterministic_and_bounded() {
        let plan = FaultPlan::new(7).with(corruption(0.3, 31, 3));
        let a = plan.wire_times("F", Time::new(95), 500);
        let b = plan.wire_times("F", Time::new(95), 500);
        assert_eq!(a, b);
        let bound = plan.wire_time_bound("F", Time::new(95));
        assert_eq!(bound, Time::new(4 * 95 + 3 * 31));
        assert!(a.iter().all(|&t| t >= Time::new(95) && t <= bound));
        // With p = 0.3 over 500 instances some corruption must occur.
        assert!(a.iter().any(|&t| t > Time::new(95)));
    }

    #[test]
    fn certain_corruption_hits_the_bound_exactly() {
        let plan = FaultPlan::new(1).with(corruption(1.0, 31, 2));
        let times = plan.wire_times("F", Time::new(100), 4);
        assert_eq!(times, vec![Time::new(3 * 100 + 2 * 31); 4]);
    }

    #[test]
    fn zero_probability_never_corrupts() {
        let plan = FaultPlan::new(1).with(corruption(0.0, 31, 5));
        assert_eq!(
            plan.wire_times("F", Time::new(50), 10),
            vec![Time::new(50); 10]
        );
    }

    #[test]
    fn named_target_spares_other_frames() {
        let plan = FaultPlan::new(3).with(Fault::FrameCorruption {
            frame: FaultTarget::Named("victim".into()),
            probability: 1.0,
            error_frame: Time::new(10),
            max_retransmissions: 1,
        });
        assert_eq!(
            plan.wire_times("other", Time::new(40), 2),
            vec![Time::new(40); 2]
        );
        assert_eq!(
            plan.wire_times("victim", Time::new(40), 1),
            vec![Time::new(90)]
        );
        assert_eq!(plan.wire_time_bound("other", Time::new(40)), Time::new(40));
    }

    #[test]
    fn jitter_delays_within_bound_and_sorted() {
        let plan = FaultPlan::new(11).with(Fault::ActivationJitter {
            target: FaultTarget::All,
            max_delay: Time::new(40),
        });
        let trace: Vec<Time> = (0..50).map(|i| Time::new(i * 100)).collect();
        let jittered = plan.perturb_trace("task:t", &trace);
        assert!(jittered.windows(2).all(|w| w[0] <= w[1]));
        // Each event delayed by [0, 40]; sorting keeps index alignment
        // here because 40 < the 100-tick spacing.
        for (orig, new) in trace.iter().zip(&jittered) {
            assert!(*new >= *orig && *new <= *orig + Time::new(40));
        }
        assert_eq!(plan.jitter_bound("task:t", Time::new(5_000)), Time::new(40));
        // Deterministic per (seed, target).
        assert_eq!(jittered, plan.perturb_trace("task:t", &trace));
        // A different target draws a different delay sequence.
        assert_ne!(jittered, plan.perturb_trace("task:u", &trace));
    }

    #[test]
    fn drift_scales_and_clamps() {
        let slow = FaultPlan::new(0).with(Fault::ClockDrift {
            target: FaultTarget::All,
            drift_ppm: 100_000, // +10 %
        });
        let trace = vec![Time::ZERO, Time::new(1_000), Time::new(2_000)];
        assert_eq!(
            slow.perturb_trace("x", &trace),
            vec![Time::ZERO, Time::new(1_100), Time::new(2_200)]
        );
        let fast = FaultPlan::new(0).with(Fault::ClockDrift {
            target: FaultTarget::All,
            drift_ppm: -100_000,
        });
        assert_eq!(
            fast.perturb_trace("x", &trace),
            vec![Time::ZERO, Time::new(900), Time::new(1_800)]
        );
        // Drift bound over a 10_000 horizon at 10 %: 1000 ticks.
        assert_eq!(slow.jitter_bound("x", Time::new(10_000)), Time::new(1_000));
        assert_eq!(fast.jitter_bound("x", Time::new(10_000)), Time::new(1_000));
    }

    #[test]
    fn overload_frames_cover_the_window() {
        let plan = FaultPlan::new(0).with(Fault::BusOverload {
            bus: FaultTarget::Named("bus0".into()),
            priority: Priority::new(0),
            transmission_time: Time::new(130),
            period: Time::new(150),
            from: Time::new(1_000),
            until: Time::new(2_000),
        });
        let rogues = plan.overload_frames("bus0", Time::new(50_000));
        assert_eq!(rogues.len(), 1);
        let r = &rogues[0];
        assert_eq!(r.priority, Priority::new(0));
        assert_eq!(r.queued_at.first(), Some(&Time::new(1_000)));
        assert!(r.queued_at.iter().all(|&t| t < Time::new(2_000)));
        assert_eq!(r.queued_at.len(), 7); // 1000, 1150, …, 1900
        assert!(plan.overload_frames("bus1", Time::new(50_000)).is_empty());
        // The horizon also cuts the window.
        let cut = plan.overload_frames("bus0", Time::new(1_300));
        assert_eq!(cut[0].queued_at.len(), 2);
    }

    #[test]
    fn faults_compose_in_order() {
        let plan = FaultPlan::new(9)
            .with(corruption(1.0, 10, 1))
            .with(corruption(1.0, 5, 1));
        // First fault: 2C + E = 2·50 + 10 = 110; second: 2·110 + 5 = 225.
        assert_eq!(plan.wire_times("F", Time::new(50), 1), vec![Time::new(225)]);
        assert_eq!(plan.wire_time_bound("F", Time::new(50)), Time::new(225));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        let _ = FaultPlan::new(0).with(corruption(1.5, 10, 1));
    }

    #[test]
    #[should_panic(expected = "period")]
    fn invalid_overload_period_rejected() {
        let _ = FaultPlan::new(0).with(Fault::BusOverload {
            bus: FaultTarget::All,
            priority: Priority::new(0),
            transmission_time: Time::new(10),
            period: Time::ZERO,
            from: Time::ZERO,
            until: Time::new(100),
        });
    }

    #[test]
    #[should_panic(expected = "drift")]
    fn invalid_drift_rejected() {
        let _ = FaultPlan::new(0).with(Fault::ClockDrift {
            target: FaultTarget::All,
            drift_ppm: 1_000_000,
        });
    }
}
