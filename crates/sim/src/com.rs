//! Behavioural simulation of the AUTOSAR COM layer (paper §4).
//!
//! Tasks write signal values into registers (overwriting old values);
//! the COM layer emits frame transmission requests according to the
//! frame type and the signals' transfer properties. Each emitted
//! [`FrameInstance`] records which signals it carries a *fresh* (not yet
//! transmitted) value of — that is what turns into a per-signal delivery
//! event at the receiver.

use hem_autosar_com::{FrameType, TransferProperty};
use hem_time::Time;

use crate::error::SimError;

/// A signal feeding the simulated COM layer.
#[derive(Debug, Clone)]
pub struct ComSignal {
    /// Signal name.
    pub name: String,
    /// Transfer property (triggering writes emit frames for direct and
    /// mixed frame types).
    pub transfer: TransferProperty,
    /// Sorted write times.
    pub writes: Vec<Time>,
}

/// One frame transmission request emitted by the COM layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameInstance {
    /// When the frame was handed to the bus queue.
    pub queued_at: Time,
    /// Per fresh signal: `(signal index, time the carried value was
    /// written)`. For a pending signal the carried value is the *latest*
    /// write (earlier unsent values were overwritten).
    pub fresh: Vec<(usize, Time)>,
}

impl FrameInstance {
    /// Whether this instance carries a fresh value of signal `i`.
    #[must_use]
    pub fn carries(&self, i: usize) -> bool {
        self.fresh.iter().any(|&(s, _)| s == i)
    }
}

/// Result of simulating one frame's COM layer over a horizon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComTrace {
    /// Emitted transmission requests, in time order.
    pub instances: Vec<FrameInstance>,
    /// Per-signal count of values lost to register overwrites before
    /// transmission (only pending signals can lose values).
    pub overwritten: Vec<u64>,
}

/// Simulates the COM layer of one frame.
///
/// Semantics (paper §4):
///
/// * every signal write overwrites the signal's register; a previous
///   value that was never transmitted is lost (counted in
///   [`ComTrace::overwritten`]),
/// * a **triggering** write on a [`FrameType::Direct`] or
///   [`FrameType::Mixed`] frame immediately emits a frame carrying every
///   register with untransmitted data,
/// * [`FrameType::Periodic`] and [`FrameType::Mixed`] frames are also
///   emitted by a timer at `0, P, 2P, …` (phase 0); periodic frames are
///   sent even when no register is fresh,
/// * ties at the same tick are processed writes-first, so a timer frame
///   carries values written at the same instant.
///
/// # Panics
///
/// Panics if any write trace is unsorted. [`try_simulate`] reports the
/// same condition as a [`SimError`] instead.
#[must_use]
pub fn simulate(frame_type: FrameType, signals: &[ComSignal], horizon: Time) -> ComTrace {
    try_simulate(frame_type, signals, horizon).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`simulate`].
///
/// # Errors
///
/// Returns [`SimError::UnsortedTrace`] if any write trace is unsorted.
pub fn try_simulate(
    frame_type: FrameType,
    signals: &[ComSignal],
    horizon: Time,
) -> Result<ComTrace, SimError> {
    for s in signals {
        if !s.writes.windows(2).all(|w| w[0] <= w[1]) {
            return Err(SimError::unsorted(format!("write trace of `{}`", s.name)));
        }
    }
    // Merge all events: (time, order-class, signal index). Writes sort
    // before timer ticks at the same tick (order-class 0 vs 1).
    let mut events: Vec<(Time, u8, usize)> = Vec::new();
    for (i, s) in signals.iter().enumerate() {
        for &t in &s.writes {
            if t < horizon {
                events.push((t, 0, i));
            }
        }
    }
    let timer_period = match frame_type {
        FrameType::Periodic(p) | FrameType::Mixed(p) => Some(p),
        FrameType::Direct => None,
    };
    if let Some(p) = timer_period {
        let mut t = Time::ZERO;
        while t < horizon {
            events.push((t, 1, usize::MAX));
            t += p;
        }
    }
    events.sort_unstable_by_key(|&(t, class, idx)| (t, class, idx));

    // Per signal: the write time of the current unsent register value.
    let mut unsent: Vec<Option<Time>> = vec![None; signals.len()];
    let mut overwritten = vec![0u64; signals.len()];
    let mut instances = Vec::new();
    let mut emit = |at: Time, unsent: &mut [Option<Time>]| {
        let fresh: Vec<(usize, Time)> = unsent
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.map(|written| (i, written)))
            .collect();
        for slot in unsent.iter_mut() {
            *slot = None;
        }
        instances.push(FrameInstance {
            queued_at: at,
            fresh,
        });
    };

    for (t, class, idx) in events {
        if class == 0 {
            // Signal write (overwriting any unsent value).
            if unsent[idx].is_some() {
                overwritten[idx] += 1;
            }
            unsent[idx] = Some(t);
            let triggers = matches!(frame_type, FrameType::Direct | FrameType::Mixed(_))
                && signals[idx].transfer == TransferProperty::Triggering;
            if triggers {
                emit(t, &mut unsent);
            }
        } else {
            // Timer tick: periodic frames always transmit.
            emit(t, &mut unsent);
        }
    }
    Ok(ComTrace {
        instances,
        overwritten,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(name: &str, transfer: TransferProperty, writes: &[i64]) -> ComSignal {
        ComSignal {
            name: name.into(),
            transfer,
            writes: writes.iter().map(|&t| Time::new(t)).collect(),
        }
    }

    #[test]
    fn direct_frame_one_per_triggering_write() {
        let trace = simulate(
            FrameType::Direct,
            &[sig("a", TransferProperty::Triggering, &[0, 100, 200])],
            Time::new(1000),
        );
        assert_eq!(trace.instances.len(), 3);
        assert!(trace.instances.iter().all(|i| i.carries(0))); // own write
        assert_eq!(trace.instances[1].fresh, vec![(0, Time::new(100))]);
        assert_eq!(trace.overwritten, vec![0]);
    }

    #[test]
    fn pending_rides_with_next_trigger() {
        let trace = simulate(
            FrameType::Direct,
            &[
                sig("trig", TransferProperty::Triggering, &[100, 200]),
                sig("pend", TransferProperty::Pending, &[50, 150]),
            ],
            Time::new(1000),
        );
        // Frame at 100 carries trig + the pending value written at 50;
        // frame at 200 carries trig + pending written at 150.
        assert_eq!(trace.instances.len(), 2);
        assert_eq!(trace.instances[0].queued_at, Time::new(100));
        // The frame at 100 carries the trig write (100) and the pending
        // value written at 50.
        assert_eq!(
            trace.instances[0].fresh,
            vec![(0, Time::new(100)), (1, Time::new(50))]
        );
        assert_eq!(
            trace.instances[1].fresh,
            vec![(0, Time::new(200)), (1, Time::new(150))]
        );
        assert_eq!(trace.overwritten, vec![0, 0]);
    }

    #[test]
    fn pending_overwrites_are_counted_and_lost() {
        let trace = simulate(
            FrameType::Direct,
            &[
                sig("trig", TransferProperty::Triggering, &[1000]),
                sig("pend", TransferProperty::Pending, &[10, 20, 30]),
            ],
            Time::new(2000),
        );
        // Three writes, one transmission: two values lost.
        assert_eq!(trace.instances.len(), 1);
        // The delivered pending value is the latest write (30).
        assert_eq!(
            trace.instances[0].fresh,
            vec![(0, Time::new(1000)), (1, Time::new(30))]
        );
        assert_eq!(trace.overwritten, vec![0, 2]);
    }

    #[test]
    fn periodic_frame_ignores_triggering_writes() {
        let trace = simulate(
            FrameType::Periodic(Time::new(100)),
            &[sig("a", TransferProperty::Triggering, &[10, 20, 30])],
            Time::new(250),
        );
        // Timer at 0, 100, 200 — writes do not emit frames.
        assert_eq!(trace.instances.len(), 3);
        assert_eq!(trace.instances[0].queued_at, Time::ZERO);
        assert!(trace.instances[0].fresh.is_empty()); // nothing written yet
        assert_eq!(trace.instances[1].fresh, vec![(0, Time::new(30))]); // 10,20 overwritten
        assert_eq!(trace.overwritten, vec![2]);
    }

    #[test]
    fn mixed_frame_timer_and_trigger() {
        let trace = simulate(
            FrameType::Mixed(Time::new(100)),
            &[sig("a", TransferProperty::Triggering, &[50])],
            Time::new(200),
        );
        // Timer at 0 (empty), trigger at 50, timer at 100 (empty again).
        assert_eq!(trace.instances.len(), 3);
        assert_eq!(trace.instances[1].queued_at, Time::new(50));
        assert_eq!(trace.instances[1].fresh, vec![(0, Time::new(50))]);
        assert!(trace.instances[2].fresh.is_empty());
    }

    #[test]
    fn same_tick_write_rides_timer_frame() {
        let trace = simulate(
            FrameType::Periodic(Time::new(100)),
            &[sig("p", TransferProperty::Pending, &[100])],
            Time::new(150),
        );
        // Write at 100 is processed before the timer tick at 100.
        assert_eq!(trace.instances.len(), 2);
        assert_eq!(trace.instances[1].fresh, vec![(0, Time::new(100))]);
    }

    #[test]
    fn horizon_cuts_events() {
        let trace = simulate(
            FrameType::Direct,
            &[sig("a", TransferProperty::Triggering, &[10, 990, 1500])],
            Time::new(1000),
        );
        assert_eq!(trace.instances.len(), 2);
    }

    #[test]
    #[should_panic(expected = "must be sorted")]
    fn unsorted_writes_rejected() {
        let _ = simulate(
            FrameType::Direct,
            &[sig("a", TransferProperty::Triggering, &[100, 10])],
            Time::new(1000),
        );
    }

    #[test]
    fn try_simulate_reports_unsorted_writes() {
        let err = try_simulate(
            FrameType::Direct,
            &[sig("a", TransferProperty::Triggering, &[100, 10])],
            Time::new(1000),
        )
        .unwrap_err();
        assert_eq!(err.to_string(), "write trace of `a` must be sorted");
    }
}
