//! Error type for simulation inputs.
//!
//! Every simulation entry point has a `try_` variant returning
//! `Result<_, SimError>` so drivers (fuzzers, batch validation
//! campaigns, services) can reject malformed inputs without unwinding;
//! the original panicking functions remain as thin wrappers for tests
//! and examples where a malformed input is a programming error.

use std::error::Error;
use std::fmt;

use hem_analysis::Priority;

/// A malformed simulation input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A duration that must be at least one tick was zero or negative.
    /// `what` names the offending input, e.g. ``transmission time of
    /// `F` ``.
    NonPositiveTime {
        /// Description of the offending input.
        what: String,
    },
    /// An event trace that must be non-decreasing was not. `what` names
    /// the offending trace, e.g. ``queue of `F` ``.
    UnsortedTrace {
        /// Description of the offending trace.
        what: String,
    },
    /// Two frames on one bus share an arbitration priority.
    DuplicatePriority {
        /// The colliding priority.
        priority: Priority,
    },
    /// A reference to an entity that does not exist. `what` names the
    /// dangling reference, e.g. ``delivery source `F/s` ``.
    UnknownReference {
        /// Description of the dangling reference.
        what: String,
    },
    /// The network's resources cannot be ordered into dependency waves
    /// (a gateway loop without an external source, or an unknown
    /// reference keeping a resource permanently unready).
    DependencyCycle {
        /// The resources that never became ready.
        remaining: String,
    },
}

impl SimError {
    pub(crate) fn non_positive(what: impl Into<String>) -> Self {
        SimError::NonPositiveTime { what: what.into() }
    }

    pub(crate) fn unsorted(what: impl Into<String>) -> Self {
        SimError::UnsortedTrace { what: what.into() }
    }

    pub(crate) fn unknown(what: impl Into<String>) -> Self {
        SimError::UnknownReference { what: what.into() }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NonPositiveTime { what } => write!(f, "{what} must be positive"),
            SimError::UnsortedTrace { what } => write!(f, "{what} must be sorted"),
            SimError::DuplicatePriority { priority } => {
                write!(f, "duplicate priority {priority} on the bus")
            }
            SimError::UnknownReference { what } => write!(f, "unknown {what}"),
            SimError::DependencyCycle { remaining } => write!(
                f,
                "network contains a dependency cycle (or an unknown reference): {remaining}"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_panic_messages() {
        // The panicking wrappers format these errors; tests that assert
        // on panic substrings rely on the exact phrasing.
        assert_eq!(
            SimError::non_positive("transmission time of `F`").to_string(),
            "transmission time of `F` must be positive"
        );
        assert_eq!(
            SimError::unsorted("queue of `F`").to_string(),
            "queue of `F` must be sorted"
        );
        assert_eq!(
            SimError::DuplicatePriority {
                priority: Priority::new(3)
            }
            .to_string(),
            "duplicate priority P3 on the bus"
        );
        assert_eq!(
            SimError::unknown("delivery source `F/s`").to_string(),
            "unknown delivery source `F/s`"
        );
        let e = SimError::DependencyCycle {
            remaining: "remaining buses [], cpus [\"cpu0\"]".into(),
        };
        assert!(e.to_string().contains("dependency cycle"));
    }
}
