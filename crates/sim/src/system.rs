//! End-to-end simulation harness: sources → COM layer → CAN bus → CPU.

use std::collections::BTreeMap;

use hem_analysis::Priority;
use hem_autosar_com::FrameType;
use hem_time::Time;

use crate::canbus::{self, QueuedFrame, Transmission};
use crate::com::{self, ComSignal};
use crate::cpu::{self, SimTask};

/// A frame in the simulated system.
#[derive(Debug, Clone)]
pub struct SimFrame {
    /// Frame name.
    pub name: String,
    /// Bus arbitration priority.
    pub priority: Priority,
    /// Wire transmission time of one instance.
    pub transmission_time: Time,
    /// COM-layer transmission rule.
    pub frame_type: FrameType,
    /// The signals (with their write traces) packed into the frame.
    pub signals: Vec<ComSignal>,
}

/// What activates a simulated CPU task.
#[derive(Debug, Clone)]
pub enum SimActivation {
    /// A fixed activation trace.
    Trace(Vec<Time>),
    /// One activation per delivery of a signal from a frame (the
    /// interrupt reception mode).
    Delivery {
        /// Transporting frame name.
        frame: String,
        /// Signal name within the frame.
        signal: String,
    },
}

/// A task on the (single) simulated receiver CPU.
#[derive(Debug, Clone)]
pub struct SimCpuTask {
    /// Task name.
    pub name: String,
    /// SPP priority.
    pub priority: Priority,
    /// Execution time per job (use the WCET for validation runs).
    pub execution_time: Time,
    /// Activation source.
    pub activation: SimActivation,
}

/// A complete simulated system: one CAN bus, one receiving CPU.
#[derive(Debug, Clone, Default)]
pub struct SimSystem {
    /// Frames on the bus.
    pub frames: Vec<SimFrame>,
    /// Tasks on the receiving CPU.
    pub tasks: Vec<SimCpuTask>,
}

/// Observations from one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-frame transmissions in completion order.
    pub transmissions: BTreeMap<String, Vec<Transmission>>,
    /// Per-frame worst observed response (completion − queueing).
    pub frame_worst_response: BTreeMap<String, Time>,
    /// Per-`"frame/signal"` delivery times at the receiver.
    pub deliveries: BTreeMap<String, Vec<Time>>,
    /// Per-`"frame/signal"`: for each delivery, when the delivered value
    /// was originally written (aligned with [`SimReport::deliveries`]).
    pub delivery_writes: BTreeMap<String, Vec<Time>>,
    /// Per-`"frame/signal"` count of values lost to register overwrite.
    pub overwritten: BTreeMap<String, u64>,
    /// Per-task worst observed response time.
    pub task_worst_response: BTreeMap<String, Time>,
    /// Per-task worst observed *end-to-end* latency: from the write of
    /// the delivered value to the completion of the job it activated.
    /// Only present for delivery-activated tasks.
    pub task_worst_latency: BTreeMap<String, Time>,
}

/// Runs the full pipeline over the given horizon.
///
/// All signal writes, frame transmissions and task activations beyond
/// `horizon` are cut off; jobs still in flight at the end of the trace
/// complete normally (their responses are included).
///
/// # Panics
///
/// Panics on malformed input (unsorted traces, duplicate priorities) and
/// when a [`SimActivation::Delivery`] references an unknown frame or
/// signal.
#[must_use]
pub fn run(system: &SimSystem, horizon: Time) -> SimReport {
    // 1. COM layer: frame instances + freshness.
    let mut com_traces = Vec::with_capacity(system.frames.len());
    for f in &system.frames {
        com_traces.push(com::simulate(f.frame_type, &f.signals, horizon));
    }

    // 2. CAN arbitration.
    let queued: Vec<QueuedFrame> = system
        .frames
        .iter()
        .zip(&com_traces)
        .map(|(f, trace)| QueuedFrame {
            name: f.name.clone(),
            priority: f.priority,
            transmission_time: f.transmission_time,
            queued_at: trace.instances.iter().map(|i| i.queued_at).collect(),
        })
        .collect();
    let all_tx = canbus::simulate(&queued);

    let mut transmissions: BTreeMap<String, Vec<Transmission>> = system
        .frames
        .iter()
        .map(|f| (f.name.clone(), Vec::new()))
        .collect();
    let mut deliveries: BTreeMap<String, Vec<Time>> = BTreeMap::new();
    let mut delivery_writes: BTreeMap<String, Vec<Time>> = BTreeMap::new();
    let mut overwritten: BTreeMap<String, u64> = BTreeMap::new();
    for (fi, f) in system.frames.iter().enumerate() {
        for (si, s) in f.signals.iter().enumerate() {
            deliveries.insert(format!("{}/{}", f.name, s.name), Vec::new());
            delivery_writes.insert(format!("{}/{}", f.name, s.name), Vec::new());
            overwritten.insert(
                format!("{}/{}", f.name, s.name),
                com_traces[fi].overwritten[si],
            );
        }
    }
    for tx in &all_tx {
        let f = &system.frames[tx.frame];
        transmissions.get_mut(&f.name).expect("frame present").push(*tx);
        let instance = &com_traces[tx.frame].instances[tx.instance];
        for &(si, written_at) in &instance.fresh {
            let key = format!("{}/{}", f.name, f.signals[si].name);
            deliveries.get_mut(&key).expect("signal present").push(tx.completed_at);
            delivery_writes
                .get_mut(&key)
                .expect("signal present")
                .push(written_at);
        }
    }
    let frame_worst_response: BTreeMap<String, Time> = transmissions
        .iter()
        .map(|(name, txs)| {
            (
                name.clone(),
                txs.iter().map(Transmission::response).max().unwrap_or(Time::ZERO),
            )
        })
        .collect();

    // 3. Receiver CPU.
    let sim_tasks: Vec<SimTask> = system
        .tasks
        .iter()
        .map(|t| {
            let activations = match &t.activation {
                SimActivation::Trace(trace) => {
                    trace.iter().copied().filter(|&a| a < horizon).collect()
                }
                SimActivation::Delivery { frame, signal } => deliveries
                    .get(&format!("{frame}/{signal}"))
                    .unwrap_or_else(|| panic!("unknown delivery source `{frame}/{signal}`"))
                    .clone(),
            };
            SimTask {
                name: t.name.clone(),
                priority: t.priority,
                execution_time: t.execution_time,
                activations,
            }
        })
        .collect();
    let jobs = cpu::simulate(&sim_tasks);
    let worst = cpu::worst_responses(&sim_tasks, &jobs);
    let task_worst_response: BTreeMap<String, Time> = system
        .tasks
        .iter()
        .zip(worst)
        .map(|(t, w)| (t.name.clone(), w))
        .collect();

    // Observed end-to-end latency: write of the delivered value → job
    // completion. The i-th activation of a delivery-activated task is
    // the i-th delivery of its signal.
    let mut task_worst_latency: BTreeMap<String, Time> = BTreeMap::new();
    for job in &jobs {
        let t = &system.tasks[job.task];
        if let SimActivation::Delivery { frame, signal } = &t.activation {
            let writes = &delivery_writes[&format!("{frame}/{signal}")];
            let written = writes[job.instance];
            let latency = job.completed_at - written;
            let entry = task_worst_latency.entry(t.name.clone()).or_insert(Time::ZERO);
            *entry = (*entry).max(latency);
        }
    }

    SimReport {
        transmissions,
        frame_worst_response,
        deliveries,
        delivery_writes,
        overwritten,
        task_worst_response,
        task_worst_latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace;
    use hem_autosar_com::TransferProperty;

    fn mini_system() -> SimSystem {
        SimSystem {
            frames: vec![SimFrame {
                name: "F".into(),
                priority: Priority::new(1),
                transmission_time: Time::new(95),
                frame_type: FrameType::Direct,
                signals: vec![ComSignal {
                    name: "s".into(),
                    transfer: TransferProperty::Triggering,
                    writes: trace::periodic(Time::new(500), Time::new(10_000)),
                }],
            }],
            tasks: vec![SimCpuTask {
                name: "rx".into(),
                priority: Priority::new(1),
                execution_time: Time::new(30),
                activation: SimActivation::Delivery {
                    frame: "F".into(),
                    signal: "s".into(),
                },
            }],
        }
    }

    #[test]
    fn end_to_end_pipeline() {
        let report = run(&mini_system(), Time::new(10_000));
        // 20 writes → 20 frames → 20 deliveries → 20 jobs.
        assert_eq!(report.transmissions["F"].len(), 20);
        assert_eq!(report.deliveries["F/s"].len(), 20);
        // Uncontended: frame response = its transmission time.
        assert_eq!(report.frame_worst_response["F"], Time::new(95));
        assert_eq!(report.task_worst_response["rx"], Time::new(30));
        assert_eq!(report.overwritten["F/s"], 0);
        // Deliveries happen one transmission after each write.
        assert_eq!(report.deliveries["F/s"][0], Time::new(95));
        assert_eq!(report.deliveries["F/s"][1], Time::new(595));
    }

    #[test]
    fn end_to_end_latency_observed() {
        let report = run(&mini_system(), Time::new(10_000));
        // Uncontended triggering path: write → 95 transport → 30 reaction.
        assert_eq!(report.task_worst_latency["rx"], Time::new(125));
        // Write times of delivered values equal the periodic writes.
        assert_eq!(report.delivery_writes["F/s"][0], Time::ZERO);
        assert_eq!(report.delivery_writes["F/s"][1], Time::new(500));
    }

    #[test]
    fn contended_bus_delays_low_priority_frame() {
        let mut sys = mini_system();
        sys.frames.push(SimFrame {
            name: "HI".into(),
            priority: Priority::new(0),
            transmission_time: Time::new(75),
            frame_type: FrameType::Direct,
            signals: vec![ComSignal {
                name: "h".into(),
                transfer: TransferProperty::Triggering,
                writes: trace::periodic(Time::new(500), Time::new(10_000)),
            }],
        });
        let report = run(&sys, Time::new(10_000));
        // Both queue at the same instants; HI wins arbitration each time.
        assert_eq!(report.frame_worst_response["HI"], Time::new(75));
        assert_eq!(report.frame_worst_response["F"], Time::new(75 + 95));
    }

    #[test]
    fn trace_activated_task() {
        let mut sys = mini_system();
        sys.tasks.push(SimCpuTask {
            name: "bg".into(),
            priority: Priority::new(2),
            execution_time: Time::new(40),
            activation: SimActivation::Trace(trace::periodic(Time::new(400), Time::new(10_000))),
        });
        let report = run(&sys, Time::new(10_000));
        // bg can be preempted by rx once: ≤ 40 + 30.
        assert!(report.task_worst_response["bg"] <= Time::new(70));
        assert!(report.task_worst_response["bg"] >= Time::new(40));
    }

    #[test]
    #[should_panic(expected = "unknown delivery source")]
    fn unknown_delivery_panics() {
        let mut sys = mini_system();
        sys.tasks[0].activation = SimActivation::Delivery {
            frame: "nope".into(),
            signal: "s".into(),
        };
        let _ = run(&sys, Time::new(1000));
    }
}
