//! End-to-end simulation harness: sources → COM layer → CAN bus → CPU.

use std::collections::BTreeMap;

use hem_analysis::Priority;
use hem_autosar_com::FrameType;
use hem_obs::{Counter, RecorderHandle, TraceEvent};
use hem_time::Time;

use crate::canbus::{self, QueuedFrame, Transmission};
use crate::com::{self, ComSignal};
use crate::cpu::{self, SimTask};
use crate::error::SimError;
use crate::fault::FaultPlan;

/// A frame in the simulated system.
#[derive(Debug, Clone)]
pub struct SimFrame {
    /// Frame name.
    pub name: String,
    /// Bus arbitration priority.
    pub priority: Priority,
    /// Wire transmission time of one instance.
    pub transmission_time: Time,
    /// COM-layer transmission rule.
    pub frame_type: FrameType,
    /// The signals (with their write traces) packed into the frame.
    pub signals: Vec<ComSignal>,
}

/// What activates a simulated CPU task.
#[derive(Debug, Clone)]
pub enum SimActivation {
    /// A fixed activation trace.
    Trace(Vec<Time>),
    /// One activation per delivery of a signal from a frame (the
    /// interrupt reception mode).
    Delivery {
        /// Transporting frame name.
        frame: String,
        /// Signal name within the frame.
        signal: String,
    },
}

/// A task on the (single) simulated receiver CPU.
#[derive(Debug, Clone)]
pub struct SimCpuTask {
    /// Task name.
    pub name: String,
    /// SPP priority.
    pub priority: Priority,
    /// Execution time per job (use the WCET for validation runs).
    pub execution_time: Time,
    /// Activation source.
    pub activation: SimActivation,
}

/// A complete simulated system: one CAN bus, one receiving CPU.
#[derive(Debug, Clone, Default)]
pub struct SimSystem {
    /// Frames on the bus.
    pub frames: Vec<SimFrame>,
    /// Tasks on the receiving CPU.
    pub tasks: Vec<SimCpuTask>,
}

/// Observations from one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-frame transmissions in completion order.
    pub transmissions: BTreeMap<String, Vec<Transmission>>,
    /// Per-frame worst observed response (completion − queueing).
    pub frame_worst_response: BTreeMap<String, Time>,
    /// Per-`"frame/signal"` delivery times at the receiver.
    pub deliveries: BTreeMap<String, Vec<Time>>,
    /// Per-`"frame/signal"`: for each delivery, when the delivered value
    /// was originally written (aligned with [`SimReport::deliveries`]).
    pub delivery_writes: BTreeMap<String, Vec<Time>>,
    /// Per-`"frame/signal"` count of values lost to register overwrite.
    pub overwritten: BTreeMap<String, u64>,
    /// Per-task worst observed response time.
    pub task_worst_response: BTreeMap<String, Time>,
    /// Per-task worst observed *end-to-end* latency: from the write of
    /// the delivered value to the completion of the job it activated.
    /// Only present for delivery-activated tasks.
    pub task_worst_latency: BTreeMap<String, Time>,
}

/// Runs the full pipeline over the given horizon.
///
/// All signal writes, frame transmissions and task activations beyond
/// `horizon` are cut off; jobs still in flight at the end of the trace
/// complete normally (their responses are included).
///
/// # Panics
///
/// Panics on malformed input (unsorted traces, duplicate priorities) and
/// when a [`SimActivation::Delivery`] references an unknown frame or
/// signal. [`try_run`] reports the same conditions as a [`SimError`]
/// instead.
#[must_use]
pub fn run(system: &SimSystem, horizon: Time) -> SimReport {
    run_with_faults(system, horizon, &FaultPlan::none())
}

/// Non-panicking [`run`].
///
/// # Errors
///
/// Returns a [`SimError`] on malformed input: unsorted traces, duplicate
/// priorities, non-positive times, or an unknown delivery source.
pub fn try_run(system: &SimSystem, horizon: Time) -> Result<SimReport, SimError> {
    try_run_with_faults(system, horizon, &FaultPlan::none())
}

/// Like [`run`], but injecting the faults of `plan` (see
/// [`crate::fault`]): signal write traces are perturbed by jitter and
/// drift, frame transmissions suffer corruption overhead, and
/// babbling-idiot frames (the harness's bus answers to the target name
/// `"bus"`) compete in arbitration. With [`FaultPlan::none`] this is
/// exactly [`run`].
///
/// # Panics
///
/// Same conditions as [`run`], plus a rogue overload frame colliding
/// with a real frame's priority.
#[must_use]
pub fn run_with_faults(system: &SimSystem, horizon: Time, plan: &FaultPlan) -> SimReport {
    try_run_with_faults(system, horizon, plan).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`run_with_faults`].
///
/// # Errors
///
/// Same conditions as [`try_run`], plus a rogue overload frame colliding
/// with a real frame's priority.
pub fn try_run_with_faults(
    system: &SimSystem,
    horizon: Time,
    plan: &FaultPlan,
) -> Result<SimReport, SimError> {
    try_run_recorded(system, horizon, plan, &RecorderHandle::noop())
}

/// Lane (`tid`) assignments of the simulator's Chrome trace:
/// transmissions on the bus lane, jobs on the CPU lane, fault markers on
/// their own lane.
const TID_BUS: u32 = 1;
const TID_CPU: u32 = 2;
const TID_FAULTS: u32 = 3;

/// One simulated tick as a trace timestamp. The simulator maps one
/// virtual tick to one microsecond, so exported traces are deterministic
/// (no wall clock involved).
fn tick_us(t: Time) -> u64 {
    u64::try_from(t.ticks()).unwrap_or(0)
}

/// Like [`try_run_with_faults`], additionally emitting observability
/// signals to `recorder`: a Chrome trace event per frame transmission
/// (bus lane), per job (CPU lane) and per fired fault (fault lane),
/// plus [`Counter::SimEvents`] / [`Counter::FaultInjections`] totals.
/// With a disabled recorder this is exactly [`try_run_with_faults`].
///
/// # Errors
///
/// Same conditions as [`try_run_with_faults`].
pub fn try_run_recorded(
    system: &SimSystem,
    horizon: Time,
    plan: &FaultPlan,
    recorder: &RecorderHandle,
) -> Result<SimReport, SimError> {
    let recording = recorder.enabled();
    if recording {
        recorder.emit(TraceEvent::thread_name(TID_BUS, "bus"));
        recorder.emit(TraceEvent::thread_name(TID_CPU, "cpu"));
        recorder.emit(TraceEvent::thread_name(TID_FAULTS, "faults"));
    }

    // 1. COM layer: frame instances + freshness (writes perturbed by
    // jitter/drift faults before entering the COM layer).
    let mut com_traces = Vec::with_capacity(system.frames.len());
    for f in &system.frames {
        let signals: Vec<ComSignal> = f
            .signals
            .iter()
            .map(|s| ComSignal {
                name: s.name.clone(),
                transfer: s.transfer,
                writes: {
                    let key = format!("{}/{}", f.name, s.name);
                    let perturbed = plan.perturb_trace(&key, &s.writes);
                    if recording {
                        for (orig, new) in s.writes.iter().zip(&perturbed) {
                            if orig != new {
                                recorder.add(Counter::FaultInjections, 1);
                                recorder.emit(
                                    TraceEvent::instant(
                                        format!("perturbed write {key}"),
                                        "fault",
                                        tick_us(*new),
                                        TID_FAULTS,
                                    )
                                    .arg("written_at", tick_us(*orig)),
                                );
                            }
                        }
                    }
                    perturbed
                },
            })
            .collect();
        com_traces.push(com::try_simulate(f.frame_type, &signals, horizon)?);
    }

    // 2. CAN arbitration, with per-instance corruption overhead and any
    // rogue overload frames appended after the real ones (so `tx.frame`
    // keeps indexing `system.frames` for real transmissions).
    let mut queued: Vec<QueuedFrame> = system
        .frames
        .iter()
        .zip(&com_traces)
        .map(|(f, trace)| QueuedFrame {
            name: f.name.clone(),
            priority: f.priority,
            transmission_time: f.transmission_time,
            queued_at: trace.instances.iter().map(|i| i.queued_at).collect(),
        })
        .collect();
    queued.extend(plan.overload_frames("bus", horizon));
    let wire: Vec<Vec<Time>> = queued
        .iter()
        .enumerate()
        .map(|(i, q)| {
            if i < system.frames.len() {
                plan.wire_times(&q.name, q.transmission_time, q.queued_at.len())
            } else {
                vec![q.transmission_time; q.queued_at.len()]
            }
        })
        .collect();
    let raw_tx = canbus::try_simulate_with_times(&queued, |f, i| wire[f][i])?;
    if recording {
        for tx in &raw_tx {
            let dur = tick_us(tx.completed_at) - tick_us(tx.started_at);
            if tx.frame < system.frames.len() {
                let f = &system.frames[tx.frame];
                recorder.add(Counter::SimEvents, 1);
                let mut event = TraceEvent::complete(
                    f.name.clone(),
                    "bus",
                    tick_us(tx.started_at),
                    dur,
                    TID_BUS,
                )
                .arg("instance", tx.instance as u64)
                .arg("queued_at", tick_us(tx.queued_at));
                // Corruption retransmissions show as inflated wire time.
                if wire[tx.frame][tx.instance] != f.transmission_time {
                    recorder.add(Counter::FaultInjections, 1);
                    event = event.arg("corrupted", 1u64);
                }
                recorder.emit(event);
            } else {
                // A rogue (babbling-idiot) overload frame won arbitration.
                recorder.add(Counter::FaultInjections, 1);
                recorder.emit(
                    TraceEvent::complete(
                        format!("rogue {}", queued[tx.frame].name),
                        "fault",
                        tick_us(tx.started_at),
                        dur,
                        TID_FAULTS,
                    )
                    .arg("instance", tx.instance as u64),
                );
            }
        }
    }
    let all_tx: Vec<Transmission> = raw_tx
        .into_iter()
        .filter(|tx| tx.frame < system.frames.len())
        .collect();

    let mut transmissions: BTreeMap<String, Vec<Transmission>> = system
        .frames
        .iter()
        .map(|f| (f.name.clone(), Vec::new()))
        .collect();
    let mut deliveries: BTreeMap<String, Vec<Time>> = BTreeMap::new();
    let mut delivery_writes: BTreeMap<String, Vec<Time>> = BTreeMap::new();
    let mut overwritten: BTreeMap<String, u64> = BTreeMap::new();
    for (fi, f) in system.frames.iter().enumerate() {
        for (si, s) in f.signals.iter().enumerate() {
            deliveries.insert(format!("{}/{}", f.name, s.name), Vec::new());
            delivery_writes.insert(format!("{}/{}", f.name, s.name), Vec::new());
            overwritten.insert(
                format!("{}/{}", f.name, s.name),
                com_traces[fi].overwritten[si],
            );
        }
    }
    for tx in &all_tx {
        let f = &system.frames[tx.frame];
        transmissions
            .get_mut(&f.name)
            .expect("frame present")
            .push(*tx);
        let instance = &com_traces[tx.frame].instances[tx.instance];
        for &(si, written_at) in &instance.fresh {
            let key = format!("{}/{}", f.name, f.signals[si].name);
            deliveries
                .get_mut(&key)
                .expect("signal present")
                .push(tx.completed_at);
            delivery_writes
                .get_mut(&key)
                .expect("signal present")
                .push(written_at);
        }
    }
    let frame_worst_response: BTreeMap<String, Time> = transmissions
        .iter()
        .map(|(name, txs)| {
            (
                name.clone(),
                txs.iter()
                    .map(Transmission::response)
                    .max()
                    .unwrap_or(Time::ZERO),
            )
        })
        .collect();

    // 3. Receiver CPU.
    let mut sim_tasks: Vec<SimTask> = Vec::with_capacity(system.tasks.len());
    for t in &system.tasks {
        let activations = match &t.activation {
            SimActivation::Trace(trace) => {
                let key = format!("task:{}", t.name);
                let perturbed = plan.perturb_trace(&key, trace);
                if recording {
                    for (orig, new) in trace.iter().zip(&perturbed) {
                        if orig != new {
                            recorder.add(Counter::FaultInjections, 1);
                            recorder.emit(
                                TraceEvent::instant(
                                    format!("perturbed activation {key}"),
                                    "fault",
                                    tick_us(*new),
                                    TID_FAULTS,
                                )
                                .arg("activated_at", tick_us(*orig)),
                            );
                        }
                    }
                }
                perturbed.into_iter().filter(|&a| a < horizon).collect()
            }
            SimActivation::Delivery { frame, signal } => deliveries
                .get(&format!("{frame}/{signal}"))
                .ok_or_else(|| SimError::unknown(format!("delivery source `{frame}/{signal}`")))?
                .clone(),
        };
        sim_tasks.push(SimTask {
            name: t.name.clone(),
            priority: t.priority,
            execution_time: t.execution_time,
            activations,
        });
    }
    let jobs = cpu::try_simulate(&sim_tasks)?;
    if recording {
        for job in &jobs {
            recorder.add(Counter::SimEvents, 1);
            recorder.emit(
                TraceEvent::complete(
                    sim_tasks[job.task].name.clone(),
                    "cpu",
                    tick_us(job.activated_at),
                    tick_us(job.completed_at) - tick_us(job.activated_at),
                    TID_CPU,
                )
                .arg("instance", job.instance as u64),
            );
        }
    }
    let worst = cpu::worst_responses(&sim_tasks, &jobs);
    let task_worst_response: BTreeMap<String, Time> = system
        .tasks
        .iter()
        .zip(worst)
        .map(|(t, w)| (t.name.clone(), w))
        .collect();

    // Observed end-to-end latency: write of the delivered value → job
    // completion. The i-th activation of a delivery-activated task is
    // the i-th delivery of its signal.
    let mut task_worst_latency: BTreeMap<String, Time> = BTreeMap::new();
    for job in &jobs {
        let t = &system.tasks[job.task];
        if let SimActivation::Delivery { frame, signal } = &t.activation {
            let writes = &delivery_writes[&format!("{frame}/{signal}")];
            let written = writes[job.instance];
            let latency = job.completed_at - written;
            let entry = task_worst_latency
                .entry(t.name.clone())
                .or_insert(Time::ZERO);
            *entry = (*entry).max(latency);
        }
    }

    Ok(SimReport {
        transmissions,
        frame_worst_response,
        deliveries,
        delivery_writes,
        overwritten,
        task_worst_response,
        task_worst_latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace;
    use hem_autosar_com::TransferProperty;

    fn mini_system() -> SimSystem {
        SimSystem {
            frames: vec![SimFrame {
                name: "F".into(),
                priority: Priority::new(1),
                transmission_time: Time::new(95),
                frame_type: FrameType::Direct,
                signals: vec![ComSignal {
                    name: "s".into(),
                    transfer: TransferProperty::Triggering,
                    writes: trace::periodic(Time::new(500), Time::new(10_000)),
                }],
            }],
            tasks: vec![SimCpuTask {
                name: "rx".into(),
                priority: Priority::new(1),
                execution_time: Time::new(30),
                activation: SimActivation::Delivery {
                    frame: "F".into(),
                    signal: "s".into(),
                },
            }],
        }
    }

    #[test]
    fn end_to_end_pipeline() {
        let report = run(&mini_system(), Time::new(10_000));
        // 20 writes → 20 frames → 20 deliveries → 20 jobs.
        assert_eq!(report.transmissions["F"].len(), 20);
        assert_eq!(report.deliveries["F/s"].len(), 20);
        // Uncontended: frame response = its transmission time.
        assert_eq!(report.frame_worst_response["F"], Time::new(95));
        assert_eq!(report.task_worst_response["rx"], Time::new(30));
        assert_eq!(report.overwritten["F/s"], 0);
        // Deliveries happen one transmission after each write.
        assert_eq!(report.deliveries["F/s"][0], Time::new(95));
        assert_eq!(report.deliveries["F/s"][1], Time::new(595));
    }

    #[test]
    fn end_to_end_latency_observed() {
        let report = run(&mini_system(), Time::new(10_000));
        // Uncontended triggering path: write → 95 transport → 30 reaction.
        assert_eq!(report.task_worst_latency["rx"], Time::new(125));
        // Write times of delivered values equal the periodic writes.
        assert_eq!(report.delivery_writes["F/s"][0], Time::ZERO);
        assert_eq!(report.delivery_writes["F/s"][1], Time::new(500));
    }

    #[test]
    fn contended_bus_delays_low_priority_frame() {
        let mut sys = mini_system();
        sys.frames.push(SimFrame {
            name: "HI".into(),
            priority: Priority::new(0),
            transmission_time: Time::new(75),
            frame_type: FrameType::Direct,
            signals: vec![ComSignal {
                name: "h".into(),
                transfer: TransferProperty::Triggering,
                writes: trace::periodic(Time::new(500), Time::new(10_000)),
            }],
        });
        let report = run(&sys, Time::new(10_000));
        // Both queue at the same instants; HI wins arbitration each time.
        assert_eq!(report.frame_worst_response["HI"], Time::new(75));
        assert_eq!(report.frame_worst_response["F"], Time::new(75 + 95));
    }

    #[test]
    fn trace_activated_task() {
        let mut sys = mini_system();
        sys.tasks.push(SimCpuTask {
            name: "bg".into(),
            priority: Priority::new(2),
            execution_time: Time::new(40),
            activation: SimActivation::Trace(trace::periodic(Time::new(400), Time::new(10_000))),
        });
        let report = run(&sys, Time::new(10_000));
        // bg can be preempted by rx once: ≤ 40 + 30.
        assert!(report.task_worst_response["bg"] <= Time::new(70));
        assert!(report.task_worst_response["bg"] >= Time::new(40));
    }

    #[test]
    fn fault_free_plan_matches_plain_run() {
        use crate::fault::FaultPlan;
        let horizon = Time::new(10_000);
        let plain = run(&mini_system(), horizon);
        let faulted = run_with_faults(&mini_system(), horizon, &FaultPlan::new(99));
        assert_eq!(plain.deliveries, faulted.deliveries);
        assert_eq!(plain.task_worst_response, faulted.task_worst_response);
        assert_eq!(plain.frame_worst_response, faulted.frame_worst_response);
    }

    #[test]
    fn certain_corruption_inflates_uncontended_response() {
        use crate::fault::{Fault, FaultPlan, FaultTarget};
        let plan = FaultPlan::new(1).with(Fault::FrameCorruption {
            frame: FaultTarget::Named("F".into()),
            probability: 1.0,
            error_frame: Time::new(31),
            max_retransmissions: 1,
        });
        let report = run_with_faults(&mini_system(), Time::new(10_000), &plan);
        // Uncontended: every instance costs 2·95 + 31.
        assert_eq!(report.frame_worst_response["F"], Time::new(2 * 95 + 31));
        // Deliveries still happen (one per write), just later.
        assert_eq!(report.deliveries["F/s"].len(), 20);
        assert_eq!(report.deliveries["F/s"][0], Time::new(221));
    }

    #[test]
    fn babbling_idiot_starves_the_real_frame() {
        use crate::fault::{Fault, FaultPlan, FaultTarget};
        // Rogue 130-tick frames queued back-to-back around the write at
        // t = 500 win arbitration and delay F.
        let plan = FaultPlan::new(1).with(Fault::BusOverload {
            bus: FaultTarget::Named("bus".into()),
            priority: Priority::new(0),
            transmission_time: Time::new(130),
            period: Time::new(130),
            from: Time::new(450),
            until: Time::new(900),
        });
        let report = run_with_faults(&mini_system(), Time::new(10_000), &plan);
        assert!(
            report.frame_worst_response["F"] > Time::new(95),
            "got {}",
            report.frame_worst_response["F"]
        );
        // The rogue frames are not reported as real transmissions.
        assert_eq!(report.transmissions.len(), 1);
    }

    #[test]
    fn jitter_on_trace_task_is_deterministic() {
        use crate::fault::{Fault, FaultPlan, FaultTarget};
        let mut sys = mini_system();
        sys.tasks.push(SimCpuTask {
            name: "bg".into(),
            priority: Priority::new(2),
            execution_time: Time::new(40),
            activation: SimActivation::Trace(trace::periodic(Time::new(400), Time::new(10_000))),
        });
        let plan = FaultPlan::new(5).with(Fault::ActivationJitter {
            target: FaultTarget::Named("task:bg".into()),
            max_delay: Time::new(60),
        });
        let a = run_with_faults(&sys, Time::new(10_000), &plan);
        let b = run_with_faults(&sys, Time::new(10_000), &plan);
        assert_eq!(a.task_worst_response, b.task_worst_response);
        // The delivery-activated task is untouched by the trace fault.
        assert_eq!(a.task_worst_response["rx"], Time::new(30));
    }

    #[test]
    fn recorded_run_emits_deterministic_trace_and_counters() {
        use crate::fault::{Fault, FaultPlan, FaultTarget};
        use hem_obs::MemoryRecorder;
        let plan = FaultPlan::new(1).with(Fault::FrameCorruption {
            frame: FaultTarget::Named("F".into()),
            probability: 1.0,
            error_frame: Time::new(31),
            max_retransmissions: 1,
        });
        let run_once = || {
            let (rec, handle) = MemoryRecorder::handle();
            let report =
                try_run_recorded(&mini_system(), Time::new(10_000), &plan, &handle).unwrap();
            (report, rec.snapshot(), rec.chrome_trace())
        };
        let (report, snap, trace) = run_once();
        // Same observable results as the unrecorded run.
        let plain = run_with_faults(&mini_system(), Time::new(10_000), &plan);
        assert_eq!(report.deliveries, plain.deliveries);
        // 20 transmissions + 20 jobs, every transmission corrupted.
        assert_eq!(snap.counter(hem_obs::Counter::SimEvents), 40);
        assert_eq!(snap.counter(hem_obs::Counter::FaultInjections), 20);
        // The Chrome trace is well-formed and labels its lanes.
        let json = trace.to_json();
        hem_obs::json::validate(&json).expect("valid Chrome trace");
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"corrupted\":1"));
        // Virtual time makes the whole export deterministic.
        let (_, snap2, trace2) = run_once();
        assert_eq!(snap, snap2);
        assert_eq!(trace, trace2);
    }

    #[test]
    #[should_panic(expected = "unknown delivery source")]
    fn unknown_delivery_panics() {
        let mut sys = mini_system();
        sys.tasks[0].activation = SimActivation::Delivery {
            frame: "nope".into(),
            signal: "s".into(),
        };
        let _ = run(&sys, Time::new(1000));
    }
}
