//! Multi-hop network simulation: several buses and CPUs coupled by
//! gateway tasks.
//!
//! The single-bus harness in [`crate::system`] covers the paper's
//! evaluation; real integrations chain hops — a signal crosses one bus,
//! a gateway task re-publishes it onto another. This module simulates
//! such feed-forward networks by evaluating resources in dependency
//! *waves*: a bus is simulated once the write traces of all its frames'
//! signals are known (external traces or completions of already
//! simulated tasks); a CPU once all its tasks' activations are known.
//! Cyclic dependencies are rejected.

use std::collections::BTreeMap;

use hem_analysis::Priority;
use hem_autosar_com::{FrameType, TransferProperty};
use hem_time::Time;

use crate::canbus::{self, QueuedFrame};
use crate::com::{self, ComSignal};
use crate::cpu::{self, SimTask};
use crate::error::SimError;
use crate::fault::FaultPlan;

/// Where a signal's write events come from.
#[derive(Debug, Clone)]
pub enum NetSource {
    /// An external, pre-computed write trace.
    Trace(Vec<Time>),
    /// Each completion of the named task writes the signal (gateway
    /// forwarding).
    TaskCompletions(String),
}

/// A signal carried by a network frame.
#[derive(Debug, Clone)]
pub struct NetSignal {
    /// Signal name (unique within its frame).
    pub name: String,
    /// COM transfer property.
    pub transfer: TransferProperty,
    /// Write-event source.
    pub source: NetSource,
}

/// A frame on one of the network's buses.
#[derive(Debug, Clone)]
pub struct NetFrame {
    /// Frame name (globally unique).
    pub name: String,
    /// Hosting bus.
    pub bus: String,
    /// Arbitration priority (unique per bus).
    pub priority: Priority,
    /// Wire time of one instance.
    pub transmission_time: Time,
    /// COM transmission rule.
    pub frame_type: FrameType,
    /// Packed signals.
    pub signals: Vec<NetSignal>,
}

/// What activates a network task.
#[derive(Debug, Clone)]
pub enum NetActivation {
    /// A fixed activation trace.
    Trace(Vec<Time>),
    /// One activation per delivery of a frame's signal (interrupt
    /// reception with update bits).
    Delivery {
        /// Transporting frame.
        frame: String,
        /// Signal within the frame.
        signal: String,
    },
    /// One activation per transmission of the frame, fresh or not
    /// (interrupt reception *without* update bits — the flat baseline's
    /// behaviour).
    FrameTransmissions(String),
    /// One activation per completion of another task (a CPU-to-CPU
    /// chain). The producing task must live on a *different* CPU —
    /// same-CPU chains make the CPU depend on itself and are rejected as
    /// a dependency cycle.
    TaskCompletions(String),
}

/// A task on one of the network's CPUs.
#[derive(Debug, Clone)]
pub struct NetTask {
    /// Task name (globally unique).
    pub name: String,
    /// Hosting CPU.
    pub cpu: String,
    /// SPP priority on that CPU.
    pub priority: Priority,
    /// Execution time per job.
    pub execution_time: Time,
    /// Activation source.
    pub activation: NetActivation,
}

/// A feed-forward network of buses and CPUs.
#[derive(Debug, Clone, Default)]
pub struct NetSystem {
    /// All frames, across all buses.
    pub frames: Vec<NetFrame>,
    /// All tasks, across all CPUs.
    pub tasks: Vec<NetTask>,
}

/// Observations from a network run.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Per-frame worst observed response.
    pub frame_worst_response: BTreeMap<String, Time>,
    /// Per-frame transmission completion times.
    pub frame_transmissions: BTreeMap<String, Vec<Time>>,
    /// Per-task worst observed response.
    pub task_worst_response: BTreeMap<String, Time>,
    /// Per-`"frame/signal"` delivery times.
    pub deliveries: BTreeMap<String, Vec<Time>>,
    /// Per-task completion times (what forwarding writes downstream).
    pub task_completions: BTreeMap<String, Vec<Time>>,
    /// Per-`"frame/signal"` values lost to register overwrite.
    pub overwritten: BTreeMap<String, u64>,
}

/// Runs the network over the given horizon.
///
/// # Panics
///
/// Panics on malformed input: unknown references, duplicate priorities
/// on one bus, unsorted traces, or a cyclic dependency between resources
/// (a gateway loop without an external source). [`try_run`] reports the
/// same conditions as a [`SimError`] instead.
#[must_use]
pub fn run(system: &NetSystem, horizon: Time) -> NetReport {
    run_with_faults(system, horizon, &FaultPlan::none())
}

/// Non-panicking [`run`].
///
/// # Errors
///
/// Returns a [`SimError`] on malformed input: unknown references,
/// duplicate priorities on one bus, unsorted traces, non-positive
/// times, or a cyclic dependency between resources.
pub fn try_run(system: &NetSystem, horizon: Time) -> Result<NetReport, SimError> {
    try_run_with_faults(system, horizon, &FaultPlan::none())
}

/// Like [`run`], but injecting the faults of `plan` (see
/// [`crate::fault`]): external write and activation traces are perturbed
/// by jitter/drift, frame transmissions suffer corruption overhead, and
/// babbling-idiot frames flood the targeted buses. Internally produced
/// events (deliveries, completions) shift only as a consequence of the
/// upstream faults. With [`FaultPlan::none`] this is exactly [`run`].
///
/// # Panics
///
/// Same conditions as [`run`], plus a rogue overload frame colliding
/// with a real frame's priority on its bus.
#[must_use]
pub fn run_with_faults(system: &NetSystem, horizon: Time, plan: &FaultPlan) -> NetReport {
    try_run_with_faults(system, horizon, plan).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`run_with_faults`].
///
/// # Errors
///
/// Same conditions as [`try_run`], plus a rogue overload frame
/// colliding with a real frame's priority on its bus.
pub fn try_run_with_faults(
    system: &NetSystem,
    horizon: Time,
    plan: &FaultPlan,
) -> Result<NetReport, SimError> {
    let buses: Vec<String> = unique(system.frames.iter().map(|f| f.bus.clone()));
    let cpus: Vec<String> = unique(system.tasks.iter().map(|t| t.cpu.clone()));

    let mut deliveries: BTreeMap<String, Vec<Time>> = BTreeMap::new();
    let mut frame_transmissions: BTreeMap<String, Vec<Time>> = BTreeMap::new();
    let mut overwritten: BTreeMap<String, u64> = BTreeMap::new();
    let mut task_completions: BTreeMap<String, Vec<Time>> = BTreeMap::new();
    let mut frame_worst_response: BTreeMap<String, Time> = BTreeMap::new();
    let mut task_worst_response: BTreeMap<String, Time> = BTreeMap::new();
    let mut done_buses: Vec<String> = Vec::new();
    let mut done_cpus: Vec<String> = Vec::new();

    while done_buses.len() < buses.len() || done_cpus.len() < cpus.len() {
        let mut progressed = false;

        // Buses whose every signal source is available.
        for bus in &buses {
            if done_buses.contains(bus) {
                continue;
            }
            let frames: Vec<&NetFrame> = system.frames.iter().filter(|f| &f.bus == bus).collect();
            let ready = frames.iter().all(|f| {
                f.signals.iter().all(|s| match &s.source {
                    NetSource::Trace(_) => true,
                    NetSource::TaskCompletions(t) => task_completions.contains_key(t),
                })
            });
            if !ready {
                continue;
            }
            simulate_bus(
                bus,
                &frames,
                &task_completions,
                horizon,
                plan,
                &mut BusObservations {
                    deliveries: &mut deliveries,
                    frame_transmissions: &mut frame_transmissions,
                    overwritten: &mut overwritten,
                    frame_worst_response: &mut frame_worst_response,
                },
            )?;
            done_buses.push(bus.clone());
            progressed = true;
        }

        // CPUs whose every activation is available.
        for cpu_name in &cpus {
            if done_cpus.contains(cpu_name) {
                continue;
            }
            let tasks: Vec<&NetTask> = system.tasks.iter().filter(|t| &t.cpu == cpu_name).collect();
            let ready = tasks.iter().all(|t| match &t.activation {
                NetActivation::Trace(_) => true,
                NetActivation::Delivery { frame, signal } => {
                    deliveries.contains_key(&format!("{frame}/{signal}"))
                }
                NetActivation::FrameTransmissions(frame) => frame_transmissions.contains_key(frame),
                NetActivation::TaskCompletions(task) => task_completions.contains_key(task),
            });
            if !ready {
                continue;
            }
            simulate_cpu(
                &tasks,
                &deliveries,
                &frame_transmissions,
                horizon,
                plan,
                &mut task_completions,
                &mut task_worst_response,
            )?;
            done_cpus.push(cpu_name.clone());
            progressed = true;
        }

        if !progressed {
            return Err(SimError::DependencyCycle {
                remaining: format!(
                    "remaining buses {:?}, cpus {:?}",
                    buses
                        .iter()
                        .filter(|b| !done_buses.contains(b))
                        .collect::<Vec<_>>(),
                    cpus.iter()
                        .filter(|c| !done_cpus.contains(c))
                        .collect::<Vec<_>>(),
                ),
            });
        }
    }

    Ok(NetReport {
        frame_worst_response,
        frame_transmissions,
        task_worst_response,
        deliveries,
        task_completions,
        overwritten,
    })
}

fn unique(items: impl Iterator<Item = String>) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for i in items {
        if !out.contains(&i) {
            out.push(i);
        }
    }
    out
}

/// Mutable observation sinks one bus simulation appends into.
struct BusObservations<'a> {
    deliveries: &'a mut BTreeMap<String, Vec<Time>>,
    frame_transmissions: &'a mut BTreeMap<String, Vec<Time>>,
    overwritten: &'a mut BTreeMap<String, u64>,
    frame_worst_response: &'a mut BTreeMap<String, Time>,
}

fn simulate_bus(
    bus: &str,
    frames: &[&NetFrame],
    task_completions: &BTreeMap<String, Vec<Time>>,
    horizon: Time,
    plan: &FaultPlan,
    obs: &mut BusObservations<'_>,
) -> Result<(), SimError> {
    let mut com_traces: Vec<com::ComTrace> = Vec::with_capacity(frames.len());
    for f in frames {
        let mut com_signals: Vec<ComSignal> = Vec::with_capacity(f.signals.len());
        for s in &f.signals {
            let writes = match &s.source {
                // Only external traces see injected jitter/drift;
                // gateway completions already carry upstream faults.
                NetSource::Trace(t) => plan.perturb_trace(&format!("{}/{}", f.name, s.name), t),
                NetSource::TaskCompletions(task) => task_completions
                    .get(task)
                    .ok_or_else(|| SimError::unknown(format!("task `{task}`")))?
                    .iter()
                    .copied()
                    .filter(|&t| t < horizon)
                    .collect(),
            };
            com_signals.push(ComSignal {
                name: s.name.clone(),
                transfer: s.transfer,
                writes,
            });
        }
        com_traces.push(com::try_simulate(f.frame_type, &com_signals, horizon)?);
    }
    // Real frames first, rogue overload frames appended, so `tx.frame`
    // below `frames.len()` keeps indexing the real frames.
    let mut queued: Vec<QueuedFrame> = frames
        .iter()
        .zip(&com_traces)
        .map(|(f, trace)| QueuedFrame {
            name: f.name.clone(),
            priority: f.priority,
            transmission_time: f.transmission_time,
            queued_at: trace.instances.iter().map(|i| i.queued_at).collect(),
        })
        .collect();
    queued.extend(plan.overload_frames(bus, horizon));
    let wire: Vec<Vec<Time>> = queued
        .iter()
        .enumerate()
        .map(|(i, q)| {
            if i < frames.len() {
                plan.wire_times(&q.name, q.transmission_time, q.queued_at.len())
            } else {
                vec![q.transmission_time; q.queued_at.len()]
            }
        })
        .collect();
    for (fi, f) in frames.iter().enumerate() {
        for (si, s) in f.signals.iter().enumerate() {
            obs.deliveries
                .insert(format!("{}/{}", f.name, s.name), Vec::new());
            obs.overwritten.insert(
                format!("{}/{}", f.name, s.name),
                com_traces[fi].overwritten[si],
            );
        }
        obs.frame_worst_response.insert(f.name.clone(), Time::ZERO);
        obs.frame_transmissions.insert(f.name.clone(), Vec::new());
    }
    for tx in canbus::try_simulate_with_times(&queued, |f, i| wire[f][i])? {
        if tx.frame >= frames.len() {
            continue; // rogue overload frame: interference only
        }
        let f = frames[tx.frame];
        let worst = obs.frame_worst_response.get_mut(&f.name).expect("inserted");
        *worst = (*worst).max(tx.response());
        obs.frame_transmissions
            .get_mut(&f.name)
            .expect("inserted")
            .push(tx.completed_at);
        for &(si, _written) in &com_traces[tx.frame].instances[tx.instance].fresh {
            obs.deliveries
                .get_mut(&format!("{}/{}", f.name, f.signals[si].name))
                .expect("inserted")
                .push(tx.completed_at);
        }
    }
    Ok(())
}

fn simulate_cpu(
    tasks: &[&NetTask],
    deliveries: &BTreeMap<String, Vec<Time>>,
    frame_transmissions: &BTreeMap<String, Vec<Time>>,
    horizon: Time,
    plan: &FaultPlan,
    task_completions: &mut BTreeMap<String, Vec<Time>>,
    task_worst_response: &mut BTreeMap<String, Time>,
) -> Result<(), SimError> {
    let sim_tasks: Vec<SimTask> = tasks
        .iter()
        .map(|t| SimTask {
            name: t.name.clone(),
            priority: t.priority,
            execution_time: t.execution_time,
            activations: match &t.activation {
                NetActivation::Trace(trace) => plan
                    .perturb_trace(&format!("task:{}", t.name), trace)
                    .into_iter()
                    .filter(|&a| a < horizon)
                    .collect(),
                NetActivation::Delivery { frame, signal } => {
                    deliveries[&format!("{frame}/{signal}")].clone()
                }
                NetActivation::FrameTransmissions(frame) => frame_transmissions[frame].clone(),
                NetActivation::TaskCompletions(task) => task_completions[task].clone(),
            },
        })
        .collect();
    let jobs = cpu::try_simulate(&sim_tasks)?;
    let worst = cpu::worst_responses(&sim_tasks, &jobs);
    for (t, w) in tasks.iter().zip(worst) {
        task_worst_response.insert(t.name.clone(), w);
    }
    for t in tasks {
        task_completions.insert(t.name.clone(), Vec::new());
    }
    for job in &jobs {
        task_completions
            .get_mut(&tasks[job.task].name)
            .expect("inserted")
            .push(job.completed_at);
    }
    // Completion order may differ from activation order across tasks;
    // each per-task list must be sorted for downstream COM input.
    for v in task_completions.values_mut() {
        v.sort_unstable();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace;

    fn gateway_chain() -> NetSystem {
        NetSystem {
            frames: vec![
                NetFrame {
                    name: "F_in".into(),
                    bus: "bus0".into(),
                    priority: Priority::new(1),
                    transmission_time: Time::new(95),
                    frame_type: FrameType::Direct,
                    signals: vec![NetSignal {
                        name: "s".into(),
                        transfer: TransferProperty::Triggering,
                        source: NetSource::Trace(trace::periodic(
                            Time::new(5_000),
                            Time::new(50_000),
                        )),
                    }],
                },
                NetFrame {
                    name: "F_out".into(),
                    bus: "bus1".into(),
                    priority: Priority::new(1),
                    transmission_time: Time::new(95),
                    frame_type: FrameType::Direct,
                    signals: vec![NetSignal {
                        name: "s".into(),
                        transfer: TransferProperty::Triggering,
                        source: NetSource::TaskCompletions("gateway".into()),
                    }],
                },
            ],
            tasks: vec![
                NetTask {
                    name: "gateway".into(),
                    cpu: "cpu_gw".into(),
                    priority: Priority::new(1),
                    execution_time: Time::new(120),
                    activation: NetActivation::Delivery {
                        frame: "F_in".into(),
                        signal: "s".into(),
                    },
                },
                NetTask {
                    name: "receiver".into(),
                    cpu: "cpu_rx".into(),
                    priority: Priority::new(1),
                    execution_time: Time::new(80),
                    activation: NetActivation::Delivery {
                        frame: "F_out".into(),
                        signal: "s".into(),
                    },
                },
            ],
        }
    }

    #[test]
    fn gateway_chain_simulates_in_waves() {
        let report = run(&gateway_chain(), Time::new(50_000));
        // Ten writes propagate through both hops unchanged (uncontended).
        assert_eq!(report.deliveries["F_in/s"].len(), 10);
        assert_eq!(report.task_completions["gateway"].len(), 10);
        assert_eq!(report.deliveries["F_out/s"].len(), 10);
        assert_eq!(report.frame_worst_response["F_in"], Time::new(95));
        assert_eq!(report.frame_worst_response["F_out"], Time::new(95));
        assert_eq!(report.task_worst_response["gateway"], Time::new(120));
        assert_eq!(report.task_worst_response["receiver"], Time::new(80));
        // End-to-end: write 0 → F_in done 95 → gateway done 215 →
        // F_out done 310 → receiver done 390.
        assert_eq!(report.deliveries["F_out/s"][0], Time::new(310));
    }

    #[test]
    fn fault_free_plan_matches_plain_run() {
        use crate::fault::FaultPlan;
        let horizon = Time::new(50_000);
        let plain = run(&gateway_chain(), horizon);
        let faulted = run_with_faults(&gateway_chain(), horizon, &FaultPlan::new(123));
        assert_eq!(plain.deliveries, faulted.deliveries);
        assert_eq!(plain.frame_worst_response, faulted.frame_worst_response);
        assert_eq!(plain.task_worst_response, faulted.task_worst_response);
    }

    #[test]
    fn corrupted_gateway_chain_shifts_downstream() {
        use crate::fault::{Fault, FaultPlan, FaultTarget};
        // Certain corruption of F_in only: each instance costs
        // 2·95 + 31 = 221 on bus0; everything downstream shifts.
        let plan = FaultPlan::new(4).with(Fault::FrameCorruption {
            frame: FaultTarget::Named("F_in".into()),
            probability: 1.0,
            error_frame: Time::new(31),
            max_retransmissions: 1,
        });
        let report = run_with_faults(&gateway_chain(), Time::new(50_000), &plan);
        assert_eq!(report.frame_worst_response["F_in"], Time::new(221));
        // F_out is on the other bus and untouched by the fault itself.
        assert_eq!(report.frame_worst_response["F_out"], Time::new(95));
        // End-to-end: write 0 → F_in done 221 → gateway done 341 →
        // F_out done 436.
        assert_eq!(report.deliveries["F_out/s"][0], Time::new(436));
        assert_eq!(report.deliveries["F_out/s"].len(), 10);
    }

    #[test]
    fn overload_on_one_bus_spares_the_other() {
        use crate::fault::{Fault, FaultPlan, FaultTarget};
        let plan = FaultPlan::new(4).with(Fault::BusOverload {
            bus: FaultTarget::Named("bus0".into()),
            priority: Priority::new(0),
            transmission_time: Time::new(120),
            period: Time::new(120),
            from: Time::ZERO,
            until: Time::new(600),
        });
        let report = run_with_faults(&gateway_chain(), Time::new(50_000), &plan);
        // The write at t = 0 on bus0 loses arbitration to the babbler.
        assert!(report.frame_worst_response["F_in"] > Time::new(95));
        assert_eq!(report.frame_worst_response["F_out"], Time::new(95));
    }

    #[test]
    fn cross_cpu_task_chain() {
        let sys = NetSystem {
            frames: vec![],
            tasks: vec![
                NetTask {
                    name: "producer".into(),
                    cpu: "cpu0".into(),
                    priority: Priority::new(1),
                    execution_time: Time::new(50),
                    activation: NetActivation::Trace(trace::periodic(
                        Time::new(1_000),
                        Time::new(10_000),
                    )),
                },
                NetTask {
                    name: "consumer".into(),
                    cpu: "cpu1".into(),
                    priority: Priority::new(1),
                    execution_time: Time::new(30),
                    activation: NetActivation::TaskCompletions("producer".into()),
                },
            ],
        };
        let report = run(&sys, Time::new(10_000));
        assert_eq!(report.task_completions["producer"].len(), 10);
        assert_eq!(report.task_completions["consumer"].len(), 10);
        // First chain: activation 0 → producer done 50 → consumer done 80.
        assert_eq!(report.task_completions["consumer"][0], Time::new(80));
    }

    #[test]
    #[should_panic(expected = "dependency cycle")]
    fn same_cpu_task_chain_rejected() {
        let sys = NetSystem {
            frames: vec![],
            tasks: vec![
                NetTask {
                    name: "producer".into(),
                    cpu: "cpu0".into(),
                    priority: Priority::new(1),
                    execution_time: Time::new(50),
                    activation: NetActivation::Trace(trace::periodic(
                        Time::new(1_000),
                        Time::new(10_000),
                    )),
                },
                NetTask {
                    name: "consumer".into(),
                    cpu: "cpu0".into(), // same CPU: unresolvable wave
                    priority: Priority::new(2),
                    execution_time: Time::new(30),
                    activation: NetActivation::TaskCompletions("producer".into()),
                },
            ],
        };
        let _ = run(&sys, Time::new(10_000));
    }

    #[test]
    #[should_panic(expected = "dependency cycle")]
    fn gateway_loop_rejected() {
        let mut sys = gateway_chain();
        // Make the first frame depend on the receiver: a loop.
        sys.frames[0].signals[0].source = NetSource::TaskCompletions("receiver".into());
        let _ = run(&sys, Time::new(10_000));
    }

    #[test]
    fn try_run_reports_cycle_without_panicking() {
        let mut sys = gateway_chain();
        sys.frames[0].signals[0].source = NetSource::TaskCompletions("receiver".into());
        let err = try_run(&sys, Time::new(10_000)).unwrap_err();
        assert!(matches!(err, SimError::DependencyCycle { .. }), "{err}");
        assert!(err.to_string().contains("bus0"), "{err}");
    }

    #[test]
    fn single_hop_matches_system_harness() {
        use crate::system::{run as run_single, SimActivation, SimCpuTask, SimFrame, SimSystem};
        let horizon = Time::new(50_000);
        let writes = trace::periodic(Time::new(3_000), horizon);
        let net = NetSystem {
            frames: vec![NetFrame {
                name: "F".into(),
                bus: "can".into(),
                priority: Priority::new(1),
                transmission_time: Time::new(75),
                frame_type: FrameType::Direct,
                signals: vec![NetSignal {
                    name: "s".into(),
                    transfer: TransferProperty::Triggering,
                    source: NetSource::Trace(writes.clone()),
                }],
            }],
            tasks: vec![NetTask {
                name: "rx".into(),
                cpu: "cpu".into(),
                priority: Priority::new(1),
                execution_time: Time::new(200),
                activation: NetActivation::Delivery {
                    frame: "F".into(),
                    signal: "s".into(),
                },
            }],
        };
        let single = SimSystem {
            frames: vec![SimFrame {
                name: "F".into(),
                priority: Priority::new(1),
                transmission_time: Time::new(75),
                frame_type: FrameType::Direct,
                signals: vec![ComSignal {
                    name: "s".into(),
                    transfer: TransferProperty::Triggering,
                    writes,
                }],
            }],
            tasks: vec![SimCpuTask {
                name: "rx".into(),
                priority: Priority::new(1),
                execution_time: Time::new(200),
                activation: SimActivation::Delivery {
                    frame: "F".into(),
                    signal: "s".into(),
                },
            }],
        };
        let net_report = run(&net, horizon);
        let single_report = run_single(&single, horizon);
        assert_eq!(
            net_report.frame_worst_response["F"],
            single_report.frame_worst_response["F"]
        );
        assert_eq!(
            net_report.task_worst_response["rx"],
            single_report.task_worst_response["rx"]
        );
        assert_eq!(
            net_report.deliveries["F/s"],
            single_report.deliveries["F/s"]
        );
    }

    #[test]
    fn pending_forwarding_loses_values() {
        // A fast gateway output rides as pending on a slow timer frame.
        let horizon = Time::new(100_000);
        let sys = NetSystem {
            frames: vec![NetFrame {
                name: "slowF".into(),
                bus: "b".into(),
                priority: Priority::new(1),
                transmission_time: Time::new(50),
                frame_type: FrameType::Periodic(Time::new(10_000)),
                signals: vec![NetSignal {
                    name: "v".into(),
                    transfer: TransferProperty::Pending,
                    source: NetSource::Trace(trace::periodic(Time::new(1_000), horizon)),
                }],
            }],
            tasks: vec![],
        };
        let report = run(&sys, horizon);
        // 100 writes, 10 frames: roughly 90 values overwritten.
        assert!(report.overwritten["slowF/v"] >= 89);
        assert_eq!(report.deliveries["slowF/v"].len(), 10);
    }
}
