//! Acceptance test: the paper's Fig. 2 gateway scenario simulated under
//! injected faults stays within analytic bounds.
//!
//! Two sound accountings are exercised:
//!
//! 1. **Jitter / drift faults** are absorbed by widening each external
//!    source's jitter by [`FaultPlan::jitter_bound`] and re-running the
//!    full system analysis (`hem_system::analyze`) on the widened spec.
//!    Every observed frame and task response of the faulted simulation
//!    must stay below the widened analysis' bounds.
//! 2. **Frame corruption and bus overload** are absorbed at the bus
//!    level: SPNP analysis with the retransmission-inflated wire time
//!    [`FaultPlan::wire_time_bound`], OR-joined (COM-packed) inputs and
//!    the babbling idiot modelled as a highest-priority interferer.

use std::collections::BTreeMap;

use hem_analysis::{spnp, AnalysisConfig, AnalysisTask, Priority};
use hem_autosar_com::{FrameType, TransferProperty};
use hem_can::{CanBusConfig, CanFrameConfig, FrameFormat};
use hem_event_models::ops::OrJoin;
use hem_event_models::{EventModelExt, StandardEventModel};
use hem_sim::fault::{Fault, FaultPlan, FaultTarget};
use hem_sim::from_spec::simulate_spec_under_faults;
use hem_sim::trace;
use hem_system::{
    analyze, ActivationSpec, AnalysisMode, FrameSpec, SignalSpec, SystemConfig, SystemSpec,
    TaskSpec,
};
use hem_time::Time;

const HORIZON: i64 = 100_000;
/// One paper time unit = 10 CAN bit times (see `DESIGN.md`).
const SCALE: i64 = 10;
const PERIODS: [i64; 4] = [250 * SCALE, 450 * SCALE, 600 * SCALE, 400 * SCALE];

/// The paper's Fig. 2 system: four sources packed into two CAN frames,
/// three receiver tasks. `widen[i]` adds jitter to source `i`'s model
/// (the analytic counterweight to injected jitter/drift).
fn paper_spec(widen: &[Time; 4]) -> SystemSpec {
    let source = |i: usize| -> ActivationSpec {
        ActivationSpec::External(
            StandardEventModel::periodic_with_jitter(Time::new(PERIODS[i]), widen[i])
                .expect("valid model")
                .shared(),
        )
    };
    SystemSpec::new()
        .cpu("cpu1")
        .bus("can", CanBusConfig::new(Time::new(1)))
        .frame(FrameSpec {
            name: "F1".into(),
            bus: "can".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 4,
            format: FrameFormat::Standard,
            priority: Priority::new(1),
            signals: vec![
                SignalSpec {
                    name: "s1".into(),
                    transfer: TransferProperty::Triggering,
                    source: source(0),
                },
                SignalSpec {
                    name: "s2".into(),
                    transfer: TransferProperty::Triggering,
                    source: source(1),
                },
                SignalSpec {
                    name: "s3".into(),
                    transfer: TransferProperty::Pending,
                    source: source(2),
                },
            ],
        })
        .frame(FrameSpec {
            name: "F2".into(),
            bus: "can".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 2,
            format: FrameFormat::Standard,
            priority: Priority::new(2),
            signals: vec![SignalSpec {
                name: "s4".into(),
                transfer: TransferProperty::Triggering,
                source: source(3),
            }],
        })
        .task(TaskSpec {
            name: "T1".into(),
            cpu: "cpu1".into(),
            bcet: Time::new(24 * SCALE),
            wcet: Time::new(24 * SCALE),
            priority: Priority::new(1),
            activation: ActivationSpec::Signal {
                frame: "F1".into(),
                signal: "s1".into(),
            },
        })
        .task(TaskSpec {
            name: "T2".into(),
            cpu: "cpu1".into(),
            bcet: Time::new(32 * SCALE),
            wcet: Time::new(32 * SCALE),
            priority: Priority::new(2),
            activation: ActivationSpec::Signal {
                frame: "F1".into(),
                signal: "s2".into(),
            },
        })
        .task(TaskSpec {
            name: "T3".into(),
            cpu: "cpu1".into(),
            bcet: Time::new(40 * SCALE),
            wcet: Time::new(40 * SCALE),
            priority: Priority::new(3),
            activation: ActivationSpec::Signal {
                frame: "F1".into(),
                signal: "s3".into(),
            },
        })
}

fn external_traces(horizon: Time) -> BTreeMap<String, Vec<Time>> {
    let mut traces = BTreeMap::new();
    for (key, period) in [
        ("F1/s1", PERIODS[0]),
        ("F1/s2", PERIODS[1]),
        ("F1/s3", PERIODS[2]),
        ("F2/s4", PERIODS[3]),
    ] {
        traces.insert(key.to_string(), trace::periodic(Time::new(period), horizon));
    }
    traces
}

/// Worst-case wire time of a Fig. 2 frame on the 1-tick-per-bit bus.
fn wire_time(payload_bytes: u8) -> Time {
    CanBusConfig::new(Time::new(1))
        .transmission_time(
            &CanFrameConfig::new(FrameFormat::Standard, payload_bytes).expect("valid frame"),
        )
        .r_plus
}

#[test]
fn jittered_gateway_within_widened_engine_bounds() {
    let horizon = Time::new(HORIZON);
    let plan = FaultPlan::new(424_242)
        .with(Fault::ActivationJitter {
            target: FaultTarget::All,
            max_delay: Time::new(150),
        })
        .with(Fault::ClockDrift {
            target: FaultTarget::All,
            drift_ppm: -3_000,
        });

    // Analytic counterweight: widen each source by the plan's
    // displacement bound over the simulated horizon.
    let widen = [
        plan.jitter_bound("F1/s1", horizon),
        plan.jitter_bound("F1/s2", horizon),
        plan.jitter_bound("F1/s3", horizon),
        plan.jitter_bound("F2/s4", horizon),
    ];
    assert!(widen[0] >= Time::new(150), "bound covers jitter and drift");

    let report = simulate_spec_under_faults(
        &paper_spec(&widen), // sim ignores model widths; traces drive it
        &external_traces(horizon),
        horizon,
        &plan,
    )
    .expect("simulation runs");

    for mode in [AnalysisMode::Flat, AnalysisMode::Hierarchical] {
        let bounds = analyze(&paper_spec(&widen), &SystemConfig::new(mode))
            .expect("widened system stays analysable");
        for (frame, &observed) in &report.frame_worst_response {
            let bound = bounds.frame(frame).expect("analysed").response.r_plus;
            assert!(
                observed <= bound,
                "{mode:?}: frame {frame} observed {observed} exceeds bound {bound}"
            );
        }
        for (task, &observed) in &report.task_worst_response {
            let bound = bounds.task(task).expect("analysed").response.r_plus;
            assert!(
                observed <= bound,
                "{mode:?}: task {task} observed {observed} exceeds bound {bound}"
            );
        }
    }
    // The faulted run actually delivered traffic end to end.
    assert!(!report.deliveries["F1/s1"].is_empty());
    assert!(!report.deliveries["F2/s4"].is_empty());
}

#[test]
fn corrupted_and_overloaded_gateway_within_spnp_bounds() {
    let horizon = Time::new(HORIZON);
    let babble_tt = Time::new(65);
    let babble_period = Time::new(1_000);

    for seed in [3u64, 99, 2_026] {
        let plan = FaultPlan::new(seed)
            .with(Fault::FrameCorruption {
                frame: FaultTarget::Named("F1".into()),
                probability: 0.4,
                error_frame: Time::new(31),
                max_retransmissions: 1,
            })
            .with(Fault::FrameCorruption {
                frame: FaultTarget::Named("F2".into()),
                probability: 0.2,
                error_frame: Time::new(31),
                max_retransmissions: 2,
            })
            .with(Fault::BusOverload {
                bus: FaultTarget::Named("can".into()),
                priority: Priority::new(0),
                transmission_time: babble_tt,
                period: babble_period,
                from: Time::ZERO,
                until: horizon,
            });

        let widen = [Time::ZERO; 4];
        let report = simulate_spec_under_faults(
            &paper_spec(&widen),
            &external_traces(horizon),
            horizon,
            &plan,
        )
        .expect("simulation runs");

        // Bus-level analytic bounds: COM packing of a direct frame is an
        // OR-join of its triggering sources; corruption inflates the wire
        // time to (k+1)·C + k·E; the babbling idiot is a top-priority
        // periodic interferer.
        let sem = |i: usize| {
            StandardEventModel::periodic(Time::new(PERIODS[i]))
                .expect("valid")
                .shared()
        };
        let c1 = wire_time(4);
        let c2 = wire_time(2);
        let tasks = [
            AnalysisTask::new(
                "F1",
                c1,
                plan.wire_time_bound("F1", c1),
                Priority::new(1),
                OrJoin::new(vec![sem(0), sem(1)])
                    .expect("non-empty")
                    .shared(),
            ),
            AnalysisTask::new(
                "F2",
                c2,
                plan.wire_time_bound("F2", c2),
                Priority::new(2),
                sem(3),
            ),
            AnalysisTask::new(
                "babble",
                babble_tt,
                babble_tt,
                Priority::new(0),
                StandardEventModel::periodic(babble_period)
                    .expect("valid")
                    .shared(),
            ),
        ];
        let bounds = spnp::analyze(&tasks, &AnalysisConfig::default()).expect("converges");
        assert!(
            plan.wire_time_bound("F1", c1) == c1 * 2 + Time::new(31),
            "k = 1 doubles the frame and adds one error frame"
        );

        for (i, frame) in ["F1", "F2"].into_iter().enumerate() {
            let observed = report.frame_worst_response[frame];
            let bound = bounds[i].response.r_plus;
            assert!(
                observed <= bound,
                "seed {seed}: frame {frame} observed {observed} exceeds bound {bound}"
            );
        }
        // The faults genuinely bite: an uncontended, fault-free F1 would
        // finish in exactly one wire time.
        assert!(
            report.frame_worst_response["F1"] > c1,
            "seed {seed}: corruption + overload should delay F1 beyond {c1}"
        );
        assert!(!report.deliveries["F1/s1"].is_empty());
    }
}
