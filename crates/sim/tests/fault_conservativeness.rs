//! Property tests: fault-injected simulations stay within analytic
//! bounds once the fault load is accounted for.
//!
//! The contract of [`hem_sim::fault`] is *bounded pessimism*: every
//! sampled fault effect is dominated by the matching closed-form bound
//! ([`FaultPlan::wire_time_bound`] for retransmission load,
//! [`FaultPlan::jitter_bound`] for displacement), so an analysis fed
//! those bounds stays conservative for every seed. These properties pin
//! that contract over randomly drawn systems and plans.

use proptest::prelude::*;

use hem_analysis::{spnp, AnalysisConfig, AnalysisTask, Priority};
use hem_event_models::{EventModel, EventModelExt, StandardEventModel};
use hem_sim::canbus::{self, QueuedFrame};
use hem_sim::fault::{Fault, FaultPlan, FaultTarget};
use hem_sim::trace;
use hem_time::Time;

/// Periods chosen so even fully corrupted frames keep the bus loaded
/// well under 100 % (the busy-window analysis must converge).
const PERIODS: [i64; 4] = [2_000, 3_000, 5_000, 8_000];
const HORIZON: i64 = 60_000;
const ERROR_FRAME: i64 = 31;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Simulated per-frame worst response under sampled corruption never
    /// exceeds the SPNP bound computed with the retransmission-inflated
    /// transmission time `C' = (k+1)·C + k·E`.
    fn corrupted_bus_stays_within_retransmission_bound(
        seed in 0u64..5_000,
        n_frames in 1usize..=4,
        prob_pct in 0u32..=100,
        max_retx in 0u32..=2,
    ) {
        let plan = FaultPlan::new(seed).with(Fault::FrameCorruption {
            frame: FaultTarget::All,
            probability: f64::from(prob_pct) / 100.0,
            error_frame: Time::new(ERROR_FRAME),
            max_retransmissions: max_retx,
        });

        let horizon = Time::new(HORIZON);
        let mut queued = Vec::new();
        let mut analytic = Vec::new();
        for i in 0..n_frames {
            let name = format!("F{i}");
            let base = Time::new(40 + 15 * i as i64);
            let period = Time::new(PERIODS[i]);
            queued.push(QueuedFrame {
                name: name.clone(),
                priority: Priority::new(i as u32 + 1),
                transmission_time: base,
                queued_at: trace::periodic(period, horizon),
            });
            analytic.push(AnalysisTask::new(
                name,
                base,
                plan.wire_time_bound(&format!("F{i}"), base),
                Priority::new(i as u32 + 1),
                StandardEventModel::periodic(period).expect("valid").shared(),
            ));
        }

        let wire: Vec<Vec<Time>> = queued
            .iter()
            .map(|f| plan.wire_times(&f.name, f.transmission_time, f.queued_at.len()))
            .collect();
        let sim = canbus::try_simulate_with_times(&queued, |f, i| wire[f][i])
            .expect("well-formed bus");
        let bounds = spnp::analyze(&analytic, &AnalysisConfig::default())
            .expect("under-loaded bus converges");

        for tx in &sim {
            let bound = bounds[tx.frame].response.r_plus;
            prop_assert!(
                tx.response() <= bound,
                "{} instance {}: simulated response {} exceeds analytic bound {}",
                queued[tx.frame].name, tx.instance, tx.response(), bound
            );
        }
    }

    /// A periodic trace perturbed by activation jitter and clock drift
    /// stays admissible for the standard event model whose jitter is
    /// widened by [`FaultPlan::jitter_bound`] — i.e. the perturbed trace
    /// still satisfies the widened η⁺/δ⁻ envelope.
    fn perturbed_trace_admissible_for_widened_model(
        seed in 0u64..5_000,
        period in 200i64..=1_000,
        max_delay in 0i64..=300,
        drift_ppm in -20_000i64..=20_000,
    ) {
        let horizon = Time::new(30_000);
        let plan = FaultPlan::new(seed)
            .with(Fault::ActivationJitter {
                target: FaultTarget::Named("src".into()),
                max_delay: Time::new(max_delay),
            })
            .with(Fault::ClockDrift {
                target: FaultTarget::All,
                drift_ppm,
            });

        let base = trace::periodic(Time::new(period), horizon);
        let perturbed = plan.perturb_trace("src", &base);
        prop_assert_eq!(perturbed.len(), base.len());

        let widened = StandardEventModel::periodic_with_jitter(
            Time::new(period),
            plan.jitter_bound("src", horizon),
        )
        .expect("valid model");
        prop_assert_eq!(
            trace::check_admissible(&perturbed, &widened),
            None,
            "perturbed trace violates the jitter-widened model"
        );
    }

    /// δ⁻ of the perturbed trace can shrink by at most the displacement
    /// bound relative to the pristine trace — pairwise, not just via the
    /// model envelope.
    fn perturbation_displacement_is_bounded(
        seed in 0u64..5_000,
        period in 100i64..=800,
        max_delay in 0i64..=250,
    ) {
        let horizon = Time::new(20_000);
        let plan = FaultPlan::new(seed).with(Fault::ActivationJitter {
            target: FaultTarget::All,
            max_delay: Time::new(max_delay),
        });
        let base = trace::periodic(Time::new(period), horizon);
        let perturbed = plan.perturb_trace("src", &base);
        let bound = plan.jitter_bound("src", horizon);
        for (b, p) in base.iter().zip(&perturbed) {
            prop_assert!(*p >= *b, "jitter only delays");
            prop_assert!(*p - *b <= bound, "displacement {} exceeds bound {}", *p - *b, bound);
        }
    }

    /// The sampled wire times themselves never exceed the closed-form
    /// bound, for any composition of corruption faults.
    fn sampled_wire_times_below_bound(
        seed in 0u64..10_000,
        prob_pct in 0u32..=100,
        k1 in 0u32..=3,
        k2 in 0u32..=3,
    ) {
        let plan = FaultPlan::new(seed)
            .with(Fault::FrameCorruption {
                frame: FaultTarget::All,
                probability: f64::from(prob_pct) / 100.0,
                error_frame: Time::new(ERROR_FRAME),
                max_retransmissions: k1,
            })
            .with(Fault::FrameCorruption {
                frame: FaultTarget::Named("F".into()),
                probability: 0.5,
                error_frame: Time::new(17),
                max_retransmissions: k2,
            });
        let base = Time::new(95);
        let bound = plan.wire_time_bound("F", base);
        for (i, t) in plan.wire_times("F", base, 64).into_iter().enumerate() {
            prop_assert!(t >= base, "faults only add load");
            prop_assert!(t <= bound, "instance {i}: sampled {t} exceeds bound {bound}");
        }
    }
}

/// Overload interference is dominated by modelling the babbling idiot as
/// a highest-priority periodic interferer in the analysis. Deterministic
/// across a seed sweep (the rogue queue itself is deterministic; seeds
/// vary nothing here, but the sweep guards against accidental seed
/// coupling).
#[test]
fn overloaded_bus_stays_within_interferer_bound() {
    let horizon = Time::new(60_000);
    let real_period = Time::new(2_000);
    let babble_period = Time::new(700);
    let babble_tt = Time::new(130);

    for seed in [0u64, 7, 42, 1_000] {
        let plan = FaultPlan::new(seed).with(Fault::BusOverload {
            bus: FaultTarget::Named("bus".into()),
            priority: Priority::new(0),
            transmission_time: babble_tt,
            period: babble_period,
            from: Time::ZERO,
            until: horizon,
        });

        let mut queued = vec![QueuedFrame {
            name: "F".into(),
            priority: Priority::new(1),
            transmission_time: Time::new(95),
            queued_at: trace::periodic(real_period, horizon),
        }];
        queued.extend(plan.overload_frames("bus", horizon));
        let sim = canbus::simulate(&queued);

        let analytic = [
            AnalysisTask::new(
                "F",
                Time::new(95),
                Time::new(95),
                Priority::new(1),
                StandardEventModel::periodic(real_period)
                    .expect("valid")
                    .shared(),
            ),
            AnalysisTask::new(
                "babble",
                babble_tt,
                babble_tt,
                Priority::new(0),
                StandardEventModel::periodic(babble_period)
                    .expect("valid")
                    .shared(),
            ),
        ];
        let bounds = spnp::analyze(&analytic, &AnalysisConfig::default()).expect("converges");

        let worst = sim
            .iter()
            .filter(|tx| tx.frame == 0)
            .map(|tx| tx.response())
            .max()
            .expect("frame transmitted");
        assert!(
            worst <= bounds[0].response.r_plus,
            "seed {seed}: simulated worst {worst} exceeds bound {}",
            bounds[0].response.r_plus
        );
        assert!(
            worst > Time::new(95),
            "seed {seed}: overload should actually delay the frame"
        );
    }
}

/// The widened model's η⁺ genuinely accounts for the extra events a
/// jittered window can contain: counting events of the perturbed trace
/// in every window stays below `eta_plus` of the widened model.
#[test]
fn perturbed_trace_event_counts_within_eta_plus() {
    let horizon = Time::new(25_000);
    let period = Time::new(500);
    for seed in [1u64, 9, 77, 512] {
        let plan = FaultPlan::new(seed)
            .with(Fault::ActivationJitter {
                target: FaultTarget::All,
                max_delay: Time::new(180),
            })
            .with(Fault::ClockDrift {
                target: FaultTarget::All,
                drift_ppm: -9_000,
            });
        let base = trace::periodic(period, horizon);
        let perturbed = plan.perturb_trace("src", &base);
        let widened =
            StandardEventModel::periodic_with_jitter(period, plan.jitter_bound("src", horizon))
                .expect("valid");

        // Slide a window over the trace: the densest observed packing
        // of any width w must not exceed η⁺(w).
        for (i, &start) in perturbed.iter().enumerate() {
            for w in [Time::new(400), Time::new(1_100), Time::new(4_900)] {
                let count = perturbed[i..]
                    .iter()
                    .take_while(|&&t| t - start < w)
                    .count() as u64;
                let allowed = widened.eta_plus(w);
                assert!(
                    count <= allowed,
                    "seed {seed}: {count} events in window {w} exceeds η⁺ = {allowed}"
                );
            }
        }
    }
}
