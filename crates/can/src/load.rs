//! Bus-load accounting.
//!
//! Before (or instead of) a full response-time analysis, integrators
//! check the *bus load*: the fraction of wire time the frame set can
//! demand. This module reports per-frame and total load bounds derived
//! from the activation models' `η⁺` over a horizon — conservative in the
//! same direction as the busy-window analysis (bursts are front-loaded).

use hem_analysis::utilization;
use hem_event_models::EventModel;
use hem_time::Time;

use crate::bus::{BusFrame, CanBusConfig};

/// Load contribution of one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameLoad {
    /// Frame name.
    pub name: String,
    /// Worst-case transmissions within the horizon.
    pub transmissions: u64,
    /// Wire time consumed by those transmissions (worst-case lengths).
    pub wire_time: Time,
    /// Fraction of the horizon (0.0–…; may exceed 1 for overload).
    pub fraction: f64,
}

/// Bus-load report over a horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct BusLoad {
    /// Per-frame breakdown, in input order.
    pub frames: Vec<FrameLoad>,
    /// Total load fraction (Σ frame fractions).
    pub total: f64,
}

impl BusLoad {
    /// Whether the bound certifies the demand fits the wire
    /// (`total ≤ 1`). A total above 1 over a long horizon implies the
    /// response-time analysis will diverge.
    #[must_use]
    pub fn fits(&self) -> bool {
        self.total <= 1.0
    }
}

/// Computes the worst-case bus load of a frame set over `horizon`.
///
/// # Panics
///
/// Panics if `horizon < 1`.
#[must_use]
pub fn bus_load(frames: &[BusFrame], bus: &CanBusConfig, horizon: Time) -> BusLoad {
    assert!(horizon >= Time::ONE, "horizon must be at least one tick");
    let mut out = Vec::with_capacity(frames.len());
    let mut total = 0.0;
    for f in frames {
        let transmissions = f.input.eta_plus(horizon);
        let wire_time = bus.transmission_time(&f.config).r_plus * transmissions as i64;
        let fraction = wire_time.ticks() as f64 / horizon.ticks() as f64;
        total += fraction;
        out.push(FrameLoad {
            name: f.name.clone(),
            transmissions,
            wire_time,
            fraction,
        });
    }
    BusLoad { frames: out, total }
}

/// Cross-check helper: the same total computed through the generic
/// analysis-task utilization bound (must agree).
#[must_use]
pub fn bus_load_via_utilization(frames: &[BusFrame], bus: &CanBusConfig, horizon: Time) -> f64 {
    let tasks: Vec<_> = frames.iter().map(|f| f.to_analysis_task(bus)).collect();
    utilization::utilization_bound(&tasks, horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{CanFrameConfig, FrameFormat};
    use hem_analysis::Priority;
    use hem_event_models::{EventModelExt, StandardEventModel};

    fn frame(name: &str, payload: u8, prio: u32, period: i64) -> BusFrame {
        BusFrame::new(
            name,
            CanFrameConfig::new(FrameFormat::Standard, payload).unwrap(),
            Priority::new(prio),
            StandardEventModel::periodic(Time::new(period))
                .unwrap()
                .shared(),
        )
    }

    #[test]
    fn paper_bus_load() {
        let bus = CanBusConfig::new(Time::new(1));
        let frames = vec![frame("F1", 4, 1, 2500), frame("F2", 2, 2, 4000)];
        let load = bus_load(&frames, &bus, Time::new(1_000_000));
        // F1: 95 bits / 2500 = 3.8 %; F2: 75 / 4000 = 1.875 %.
        assert!((load.frames[0].fraction - 0.038).abs() < 0.001);
        assert!((load.frames[1].fraction - 0.01875).abs() < 0.001);
        assert!((load.total - 0.0568).abs() < 0.001);
        assert!(load.fits());
    }

    #[test]
    fn overload_detected() {
        let bus = CanBusConfig::new(Time::new(1));
        // A 95-bit frame every 80 ticks cannot fit.
        let frames = vec![frame("hot", 4, 1, 80)];
        let load = bus_load(&frames, &bus, Time::new(100_000));
        assert!(load.total > 1.0);
        assert!(!load.fits());
    }

    #[test]
    fn matches_generic_utilization_bound() {
        let bus = CanBusConfig::new(Time::new(2));
        let frames = vec![frame("a", 8, 1, 1_000), frame("b", 1, 2, 700)];
        let horizon = Time::new(700_000);
        let direct = bus_load(&frames, &bus, horizon).total;
        let via_tasks = bus_load_via_utilization(&frames, &bus, horizon);
        assert!((direct - via_tasks).abs() < 1e-9);
    }

    #[test]
    fn transmission_counts_reported() {
        let bus = CanBusConfig::new(Time::new(1));
        let frames = vec![frame("f", 0, 1, 100)];
        let load = bus_load(&frames, &bus, Time::new(1_000));
        assert_eq!(load.frames[0].transmissions, 10);
        assert_eq!(load.frames[0].wire_time, Time::new(550));
    }
}
