//! Bus-level timing: transmission times and arbitration analysis.

use hem_analysis::{
    spnp, AnalysisConfig, AnalysisError, AnalysisTask, Priority, ResponseTime, TaskResult,
};
use hem_event_models::ModelRef;
use hem_time::Time;

use crate::frame::CanFrameConfig;

/// Bus-wide timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanBusConfig {
    /// Duration of one bit on the wire, in ticks.
    pub bit_time: Time,
}

impl CanBusConfig {
    /// Creates a bus configuration.
    ///
    /// # Panics
    ///
    /// Panics if `bit_time < 1`.
    #[must_use]
    pub fn new(bit_time: Time) -> Self {
        assert!(bit_time >= Time::ONE, "bit time must be at least one tick");
        CanBusConfig { bit_time }
    }

    /// The `[C⁻, C⁺]` transmission-time interval of a frame on this bus.
    #[must_use]
    pub fn transmission_time(&self, frame: &CanFrameConfig) -> ResponseTime {
        ResponseTime::new(
            self.bit_time * frame.best_case_bits() as i64,
            self.bit_time * frame.worst_case_bits() as i64,
        )
    }
}

/// A frame queued on the bus: wire format, arbitration priority, and the
/// activating (frame-trigger) event stream.
#[derive(Debug, Clone)]
pub struct BusFrame {
    /// Frame name, reported in analysis results.
    pub name: String,
    /// Wire format (payload length, identifier format).
    pub config: CanFrameConfig,
    /// Arbitration priority (lower = wins, like CAN identifiers).
    pub priority: Priority,
    /// The frame-activation event stream (for a HEM-packed frame: the
    /// hierarchy's *outer* stream).
    pub input: ModelRef,
}

impl BusFrame {
    /// Creates a bus frame description.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        config: CanFrameConfig,
        priority: Priority,
        input: ModelRef,
    ) -> Self {
        BusFrame {
            name: name.into(),
            config,
            priority,
            input,
        }
    }

    /// Lowers the frame to a generic [`AnalysisTask`] on the given bus.
    #[must_use]
    pub fn to_analysis_task(&self, bus: &CanBusConfig) -> AnalysisTask {
        let t = bus.transmission_time(&self.config);
        AnalysisTask::new(
            self.name.clone(),
            t.r_minus,
            t.r_plus,
            self.priority,
            self.input.clone(),
        )
    }
}

/// Lowers every frame on a bus to its generic [`AnalysisTask`].
///
/// The lowered set is what the per-frame entry point [`analyze_one`]
/// (and the parallel engine's bus jobs) share: lowering once and
/// analysing each frame against the shared set avoids re-deriving
/// transmission times per job.
#[must_use]
pub fn lower(frames: &[BusFrame], bus: &CanBusConfig) -> Vec<AnalysisTask> {
    frames.iter().map(|f| f.to_analysis_task(bus)).collect()
}

/// Analyses the single frame at `index` against all frames on the bus
/// (SPNP arbitration).
///
/// # Panics
///
/// Panics if `index` is out of bounds.
///
/// # Errors
///
/// Propagates [`AnalysisError`] from the underlying SPNP analysis
/// (duplicate priorities, bus overload).
pub fn analyze_one(
    frames: &[BusFrame],
    index: usize,
    bus: &CanBusConfig,
    config: &AnalysisConfig,
) -> Result<TaskResult, AnalysisError> {
    spnp::analyze_one(&lower(frames, bus), index, config)
}

/// Analyses all frames on a CAN bus (SPNP arbitration).
///
/// Returns per-frame worst-case response times in input order; these are
/// the `[r⁻, r⁺]` intervals fed to the HEM transport step
/// (`HierarchicalEventModel::process`).
///
/// # Errors
///
/// Propagates [`AnalysisError`] from the underlying SPNP analysis
/// (duplicate priorities, bus overload).
pub fn analyze(
    frames: &[BusFrame],
    bus: &CanBusConfig,
    config: &AnalysisConfig,
) -> Result<Vec<TaskResult>, AnalysisError> {
    spnp::analyze(&lower(frames, bus), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameFormat;
    use hem_event_models::{EventModelExt, StandardEventModel};

    fn frame(name: &str, payload: u8, prio: u32, period: i64) -> BusFrame {
        BusFrame::new(
            name,
            CanFrameConfig::new(FrameFormat::Standard, payload).unwrap(),
            Priority::new(prio),
            StandardEventModel::periodic(Time::new(period))
                .unwrap()
                .shared(),
        )
    }

    #[test]
    fn transmission_times_scale_with_bit_time() {
        let cfg = CanFrameConfig::new(FrameFormat::Standard, 4).unwrap();
        let slow = CanBusConfig::new(Time::new(2));
        let t = slow.transmission_time(&cfg);
        assert_eq!(t.r_plus, Time::new(2 * 95));
        assert_eq!(t.r_minus, Time::new(2 * 79));
    }

    #[test]
    fn two_frame_bus_analysis() {
        let bus = CanBusConfig::new(Time::new(1));
        let frames = vec![frame("f1", 4, 1, 250), frame("f2", 2, 2, 400)];
        let r = analyze(&frames, &bus, &AnalysisConfig::default()).unwrap();
        // f1 (95 bits): blocked by f2's 75-bit transmission → 75 + 95.
        assert_eq!(r[0].response.r_plus, Time::new(170));
        // f2 (75 bits): one f1 interference → 95 + 75.
        assert_eq!(r[1].response.r_plus, Time::new(170));
        // Best cases are the unstuffed transmissions.
        assert_eq!(r[0].response.r_minus, Time::new(79));
        assert_eq!(r[1].response.r_minus, Time::new(63));
    }

    #[test]
    fn duplicate_identifiers_rejected() {
        let bus = CanBusConfig::new(Time::new(1));
        let frames = vec![frame("a", 1, 3, 100), frame("b", 1, 3, 100)];
        assert!(analyze(&frames, &bus, &AnalysisConfig::default()).is_err());
    }

    #[test]
    fn analyze_one_matches_whole_bus_analysis() {
        let bus = CanBusConfig::new(Time::new(1));
        let frames = vec![frame("f1", 4, 1, 250), frame("f2", 2, 2, 400)];
        let whole = analyze(&frames, &bus, &AnalysisConfig::default()).unwrap();
        for (i, expected) in whole.iter().enumerate() {
            let one = analyze_one(&frames, i, &bus, &AnalysisConfig::default()).unwrap();
            assert_eq!(&one, expected);
        }
    }

    #[test]
    #[should_panic(expected = "bit time")]
    fn zero_bit_time_rejected() {
        let _ = CanBusConfig::new(Time::ZERO);
    }

    #[test]
    fn to_analysis_task_carries_fields() {
        let bus = CanBusConfig::new(Time::new(1));
        let f = frame("x", 8, 5, 500);
        let t = f.to_analysis_task(&bus);
        assert_eq!(t.name, "x");
        assert_eq!(t.wcet, Time::new(135));
        assert_eq!(t.bcet, Time::new(111));
        assert_eq!(t.priority, Priority::new(5));
    }
}
