//! CAN frame formats and wire lengths.

use std::error::Error;
use std::fmt;

/// CAN identifier format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameFormat {
    /// Classic 11-bit identifier (CAN 2.0A).
    Standard,
    /// Extended 29-bit identifier (CAN 2.0B).
    Extended,
}

impl FrameFormat {
    /// Number of frame bits *exposed to bit stuffing* apart from the data
    /// field: 34 for standard frames, 54 for extended frames (SOF,
    /// identifier(s), control bits and the 15-bit CRC).
    #[must_use]
    pub const fn stuffable_overhead_bits(self) -> u64 {
        match self {
            FrameFormat::Standard => 34,
            FrameFormat::Extended => 54,
        }
    }
}

/// Error for invalid CAN frame configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanError {
    /// Payload length exceeds the classic-CAN maximum of 8 bytes.
    PayloadTooLarge(u8),
    /// Identifier out of range for its format (11 / 29 bits).
    InvalidIdentifier(u32),
}

impl fmt::Display for CanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CanError::PayloadTooLarge(n) => {
                write!(f, "payload of {n} bytes exceeds the CAN maximum of 8")
            }
            CanError::InvalidIdentifier(id) => {
                write!(f, "identifier {id:#x} out of range for its format")
            }
        }
    }
}

impl Error for CanError {}

/// Static description of one CAN frame's wire format.
///
/// Wire lengths follow the classic worst-case formula (Tindell/Davis):
/// with `s` data bytes and `g` stuffable overhead bits, the frame
/// occupies at most
///
/// ```text
/// g + 8s + 13 + ⌊(g + 8s − 1) / 4⌋   bits
/// ```
///
/// (13 bits — CRC delimiter, ACK, EOF and interframe space — are exempt
/// from stuffing), and at least `g + 8s + 13` bits when no stuff bits are
/// needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CanFrameConfig {
    format: FrameFormat,
    payload_bytes: u8,
}

impl CanFrameConfig {
    /// Creates a frame configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CanError::PayloadTooLarge`] if `payload_bytes > 8`.
    pub fn new(format: FrameFormat, payload_bytes: u8) -> Result<Self, CanError> {
        if payload_bytes > 8 {
            return Err(CanError::PayloadTooLarge(payload_bytes));
        }
        Ok(CanFrameConfig {
            format,
            payload_bytes,
        })
    }

    /// The identifier format.
    #[must_use]
    pub fn format(&self) -> FrameFormat {
        self.format
    }

    /// Number of data bytes.
    #[must_use]
    pub fn payload_bytes(&self) -> u8 {
        self.payload_bytes
    }

    /// Maximum wire length in bits (worst-case bit stuffing).
    #[must_use]
    pub fn worst_case_bits(&self) -> u64 {
        let g = self.format.stuffable_overhead_bits();
        let data = 8 * self.payload_bytes as u64;
        g + data + 13 + (g + data - 1) / 4
    }

    /// Minimum wire length in bits (no stuff bits).
    #[must_use]
    pub fn best_case_bits(&self) -> u64 {
        let g = self.format.stuffable_overhead_bits();
        g + 8 * self.payload_bytes as u64 + 13
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_frame_lengths_match_literature() {
        // Known values: 0-byte standard frame 55 bits worst case, 8-byte
        // frame 135 bits; best cases 47 and 111.
        let empty = CanFrameConfig::new(FrameFormat::Standard, 0).unwrap();
        assert_eq!(empty.worst_case_bits(), 55);
        assert_eq!(empty.best_case_bits(), 47);
        let full = CanFrameConfig::new(FrameFormat::Standard, 8).unwrap();
        assert_eq!(full.worst_case_bits(), 135);
        assert_eq!(full.best_case_bits(), 111);
    }

    #[test]
    fn extended_frame_lengths_match_literature() {
        // 8-byte extended frame: 54 + 64 + 13 + ⌊117/4⌋ = 131 + 29 = 160.
        let full = CanFrameConfig::new(FrameFormat::Extended, 8).unwrap();
        assert_eq!(full.worst_case_bits(), 160);
        assert_eq!(full.best_case_bits(), 131);
    }

    #[test]
    fn paper_payloads() {
        // Table 2 of the paper: F1 carries 4 bytes, F2 carries 2 bytes.
        let f1 = CanFrameConfig::new(FrameFormat::Standard, 4).unwrap();
        let f2 = CanFrameConfig::new(FrameFormat::Standard, 2).unwrap();
        assert_eq!(f1.worst_case_bits(), 34 + 32 + 13 + 16); // 95
        assert_eq!(f2.worst_case_bits(), 34 + 16 + 13 + 12); // 75
        assert!(f1.worst_case_bits() > f2.worst_case_bits());
    }

    #[test]
    fn monotone_in_payload() {
        let mut prev = 0;
        for s in 0..=8u8 {
            let c = CanFrameConfig::new(FrameFormat::Standard, s).unwrap();
            assert!(c.worst_case_bits() > prev);
            assert!(c.best_case_bits() <= c.worst_case_bits());
            prev = c.worst_case_bits();
        }
    }

    #[test]
    fn oversized_payload_rejected() {
        let err = CanFrameConfig::new(FrameFormat::Standard, 9).unwrap_err();
        assert_eq!(err, CanError::PayloadTooLarge(9));
        assert!(err.to_string().contains("9 bytes"));
    }

    #[test]
    fn accessors() {
        let c = CanFrameConfig::new(FrameFormat::Extended, 3).unwrap();
        assert_eq!(c.format(), FrameFormat::Extended);
        assert_eq!(c.payload_bytes(), 3);
    }
}
