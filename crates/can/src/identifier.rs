//! CAN identifiers and their arbitration priority.

use std::fmt;

use hem_analysis::Priority;

use crate::frame::{CanError, FrameFormat};

/// A validated CAN identifier.
///
/// On the wire, arbitration is decided bit-by-bit: the numerically
/// *smaller* identifier wins, and a standard (11-bit) identifier beats
/// an extended (29-bit) identifier with the same leading bits. This type
/// captures both ranges and maps into the analysis [`Priority`] space so
/// that bus models can be specified with real message IDs.
///
/// # Examples
///
/// ```
/// use hem_can::{CanId, FrameFormat};
///
/// let engine = CanId::standard(0x0C0)?;
/// let diag = CanId::extended(0x18DA_F110)?;
/// assert!(engine.priority().is_higher_than(diag.priority()));
/// assert_eq!(engine.format(), FrameFormat::Standard);
/// assert_eq!(format!("{engine}"), "0x0C0");
/// # Ok::<(), hem_can::CanError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CanId {
    /// An 11-bit identifier (CAN 2.0A).
    Standard(u16),
    /// A 29-bit identifier (CAN 2.0B).
    Extended(u32),
}

impl CanId {
    /// Largest valid standard identifier.
    pub const MAX_STANDARD: u16 = 0x7FF;
    /// Largest valid extended identifier.
    pub const MAX_EXTENDED: u32 = 0x1FFF_FFFF;

    /// Creates a standard (11-bit) identifier.
    ///
    /// # Errors
    ///
    /// Returns [`CanError::InvalidIdentifier`] if `id > 0x7FF`.
    pub fn standard(id: u16) -> Result<Self, CanError> {
        if id > Self::MAX_STANDARD {
            return Err(CanError::InvalidIdentifier(u32::from(id)));
        }
        Ok(CanId::Standard(id))
    }

    /// Creates an extended (29-bit) identifier.
    ///
    /// # Errors
    ///
    /// Returns [`CanError::InvalidIdentifier`] if `id > 0x1FFF_FFFF`.
    pub fn extended(id: u32) -> Result<Self, CanError> {
        if id > Self::MAX_EXTENDED {
            return Err(CanError::InvalidIdentifier(id));
        }
        Ok(CanId::Extended(id))
    }

    /// The identifier's frame format.
    #[must_use]
    pub fn format(self) -> FrameFormat {
        match self {
            CanId::Standard(_) => FrameFormat::Standard,
            CanId::Extended(_) => FrameFormat::Extended,
        }
    }

    /// The raw identifier value.
    #[must_use]
    pub fn raw(self) -> u32 {
        match self {
            CanId::Standard(id) => u32::from(id),
            CanId::Extended(id) => id,
        }
    }

    /// The arbitration priority of this identifier.
    ///
    /// Encodes wire arbitration order: identifiers compare by their
    /// leading 11 bits first; on a tie, the standard frame wins (its RTR
    /// bit is dominant where the extended frame sends the recessive SRR),
    /// and extended frames then compare by their remaining 18 bits. The
    /// mapping is order-preserving into the `u32` priority space:
    /// `base-11 bits · 2¹⁹ + (0 for standard | 1 + low-18 bits)`.
    #[must_use]
    pub fn priority(self) -> Priority {
        match self {
            CanId::Standard(id) => Priority::new(u32::from(id) << 19),
            CanId::Extended(id) => {
                let base = id >> 18; // leading 11 bits
                let rest = id & 0x3_FFFF; // trailing 18 bits
                Priority::new((base << 19) + 1 + rest)
            }
        }
    }
}

impl fmt::Display for CanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CanId::Standard(id) => f.pad(&format!("0x{id:03X}")),
            CanId::Extended(id) => f.pad(&format!("0x{id:08X}x")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_validated() {
        assert!(CanId::standard(0x7FF).is_ok());
        assert!(CanId::standard(0x800).is_err());
        assert!(CanId::extended(0x1FFF_FFFF).is_ok());
        assert!(CanId::extended(0x2000_0000).is_err());
    }

    #[test]
    fn arbitration_order_lower_id_wins() {
        let a = CanId::standard(0x100).unwrap();
        let b = CanId::standard(0x101).unwrap();
        assert!(a.priority().is_higher_than(b.priority()));
    }

    #[test]
    fn standard_beats_extended_with_same_leading_bits() {
        // Extended ID whose leading 11 bits equal the standard ID.
        let std_id = CanId::standard(0x123).unwrap();
        let ext_id = CanId::extended(0x123 << 18).unwrap();
        assert!(std_id.priority().is_higher_than(ext_id.priority()));
        // But a numerically smaller leading part still wins overall.
        let smaller_ext = CanId::extended(0x122 << 18 | 0x3_FFFF).unwrap();
        assert!(smaller_ext.priority().is_higher_than(std_id.priority()));
    }

    #[test]
    fn extended_ids_order_by_full_value() {
        let a = CanId::extended(0x18DA_F110).unwrap();
        let b = CanId::extended(0x18DA_F111).unwrap();
        assert!(a.priority().is_higher_than(b.priority()));
    }

    #[test]
    fn priority_mapping_is_injective_on_samples() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for id in (0..0x7FFu16).step_by(13) {
            assert!(seen.insert(CanId::standard(id).unwrap().priority()));
        }
        for id in (0..0x1FFF_FFFFu32).step_by(7_777_777) {
            assert!(seen.insert(CanId::extended(id).unwrap().priority()));
        }
    }

    #[test]
    fn accessors_and_display() {
        let s = CanId::standard(0x0C0).unwrap();
        assert_eq!(s.raw(), 0xC0);
        assert_eq!(s.format(), FrameFormat::Standard);
        assert_eq!(s.to_string(), "0x0C0");
        let e = CanId::extended(0x18DAF110).unwrap();
        assert_eq!(e.format(), FrameFormat::Extended);
        assert_eq!(e.to_string(), "0x18DAF110x");
    }
}
