//! CAN bus timing substrate.
//!
//! The DATE'08 HEM paper's evaluation runs its frames over a CAN bus
//! (Table 2). The analysis needs two things from the bus model, both
//! provided here:
//!
//! * **per-frame transmission-time intervals** `[C⁻, C⁺]` — computed from
//!   the payload length and the CAN frame format, including worst-case
//!   bit stuffing ([`frame`]),
//! * **arbitration** — CAN is exactly static-priority non-preemptive
//!   scheduling by identifier, so the bus analysis ([`bus`]) delegates to
//!   [`hem_analysis::spnp`].
//!
//! # Examples
//!
//! ```
//! use hem_can::{CanBusConfig, CanFrameConfig, FrameFormat};
//! use hem_time::Time;
//!
//! // A standard-ID frame with 8 data bytes is at most 135 bits on the wire.
//! let cfg = CanFrameConfig::new(FrameFormat::Standard, 8)?;
//! assert_eq!(cfg.worst_case_bits(), 135);
//! assert_eq!(cfg.best_case_bits(), 111);
//!
//! // At 500 kbit/s with 2 µs ticks, one bit is one tick.
//! let bus = CanBusConfig::new(Time::new(1));
//! assert_eq!(bus.transmission_time(&cfg).r_plus, Time::new(135));
//! # Ok::<(), hem_can::CanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod frame;
pub mod identifier;
pub mod load;

pub use bus::{BusFrame, CanBusConfig};
pub use frame::{CanError, CanFrameConfig, FrameFormat};
pub use identifier::CanId;
pub use load::{bus_load, BusLoad, FrameLoad};
