//! Differential property suite for the analytic curve layer.
//!
//! Every model family with a closed-form lift promises *exactness*: the
//! [`AnalyticCurve`] returned by [`EventModel::analytic`] answers all
//! five characteristic functions — `δ⁻`, `δ⁺`, `η⁺`, `η⁻`, and
//! `max_simultaneous` — with exactly the values of the generic
//! (memoized / recursive) model it was lifted from. This suite drives
//! random parameters through each family, random OR-trees, and random
//! propagated-output chains and compares point-for-point.

use proptest::prelude::*;

use hem_event_models::ops::{AndJoin, DminShaper, OrJoin, OutputModel};
use hem_event_models::{
    AnalyticCurve, EventModel, EventModelExt, ModelRef, PeriodicBurstModel, SporadicModel,
    StandardEventModel,
};
use hem_time::Time;

/// Compares the lift against the generic model on all five functions.
///
/// A `None` lift is a legal fallback (caps overrun, LCM blowup — see
/// the taxonomy in `docs/CURVES.md`) and trivially satisfies the
/// property: the engine then stays on the generic path. Whenever a
/// curve *is* produced it must be exact. `δ±` are checked on a dense
/// low range plus a sparse high range (to cross the periodic-extension
/// onset several times over); `η±` on a grid of window widths derived
/// from the model's own `δ` values (the interesting breakpoints) plus
/// fixed offsets around them.
fn assert_equiv(model: &dyn EventModel, context: &str) {
    let Some(analytic) = model.analytic() else {
        return;
    };
    for n in 0..=96u64 {
        assert_eq!(
            analytic.delta_min(n),
            model.delta_min(n),
            "{context}: δ⁻({n})"
        );
        assert_eq!(
            analytic.delta_plus(n),
            model.delta_plus(n),
            "{context}: δ⁺({n})"
        );
    }
    for n in [128u64, 257, 513, 1025] {
        assert_eq!(
            analytic.delta_min(n),
            model.delta_min(n),
            "{context}: δ⁻({n})"
        );
        assert_eq!(
            analytic.delta_plus(n),
            model.delta_plus(n),
            "{context}: δ⁺({n})"
        );
    }
    let mut windows: Vec<Time> = vec![Time::ZERO, Time::ONE];
    for n in [2u64, 3, 5, 9, 17, 33] {
        let d = model.delta_min(n);
        windows.extend([d - Time::ONE, d, d + Time::ONE]);
        if let Some(p) = model.delta_plus(n).as_finite() {
            windows.extend([p - Time::ONE, p, p + Time::ONE]);
        }
    }
    for dt in windows {
        assert_eq!(
            analytic.eta_plus(dt),
            model.eta_plus(dt),
            "{context}: η⁺({dt})"
        );
        assert_eq!(
            analytic.eta_minus(dt),
            model.eta_minus(dt),
            "{context}: η⁻({dt})"
        );
    }
    assert_eq!(
        analytic.max_simultaneous(),
        model.max_simultaneous(),
        "{context}: max_simultaneous"
    );
}

/// A liftable leaf model from coarse random parameters.
fn leaf(kind: u8, period: i64, jitter: i64, dmin: i64, burst: u64) -> ModelRef {
    match kind % 4 {
        0 => StandardEventModel::new(
            Time::new(period),
            Time::new(jitter),
            Time::new(dmin.min(period)),
        )
        .expect("valid SEM")
        .shared(),
        1 => SporadicModel::new(Time::new(dmin.max(1)))
            .expect("valid")
            .shared(),
        2 => {
            let b = 2 + burst % 6;
            // (b − 1) · d < P keeps the burst model valid.
            let d = (period / b as i64).max(1) - 1;
            if d < 1 {
                StandardEventModel::periodic(Time::new(period))
                    .expect("valid")
                    .shared()
            } else {
                PeriodicBurstModel::new(Time::new(period), b, Time::new(d))
                    .expect("valid burst")
                    .shared()
            }
        }
        _ => StandardEventModel::periodic(Time::new(period))
            .expect("valid")
            .shared(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn standard_event_models_lift_exactly(
        period in 1i64..5_000,
        jitter in 0i64..20_000,
        dmin in 0i64..5_000,
    ) {
        let m = StandardEventModel::new(
            Time::new(period),
            Time::new(jitter),
            Time::new(dmin.min(period)),
        ).expect("valid");
        assert_equiv(&m, &format!("SEM(P={period}, J={jitter}, d={dmin})"));
    }

    #[test]
    fn burst_models_lift_exactly(
        period in 10i64..10_000,
        burst in 2u64..10,
        gap in 1i64..14,
    ) {
        // Keep (b − 1) · d < P.
        prop_assume!((burst as i64 - 1) * gap < period);
        let m = PeriodicBurstModel::new(Time::new(period), burst, Time::new(gap))
            .expect("valid");
        assert_equiv(&m, &format!("Burst(P={period}, b={burst}, d={gap})"));
    }

    #[test]
    fn sporadic_models_lift_exactly(dmin in 1i64..10_000) {
        let m = SporadicModel::new(Time::new(dmin)).expect("valid");
        assert_equiv(&m, &format!("Sporadic(d={dmin})"));
    }

    #[test]
    fn or_trees_lift_exactly(
        kinds in prop::collection::vec(0u8..4, 1..4),
        periods in prop::collection::vec(1i64..3_000, 4),
        jitters in prop::collection::vec(0i64..6_000, 4),
        nest in any::<bool>(),
    ) {
        let leaves: Vec<ModelRef> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| leaf(k, periods[i], jitters[i], 1 + periods[i] / 2, k as u64))
            .collect();
        let or: ModelRef = OrJoin::new(leaves.clone()).expect("non-empty").shared();
        let model: ModelRef = if nest && leaves.len() > 1 {
            // One extra OR level: OR(OR(leaves), leaf0).
            OrJoin::new(vec![or, leaves[0].clone()]).expect("non-empty").shared()
        } else {
            or
        };
        assert_equiv(model.as_ref(), &format!("OR-tree({kinds:?})"));
    }

    #[test]
    fn and_joins_lift_exactly(
        kinds in prop::collection::vec(0u8..4, 2..4),
        periods in prop::collection::vec(1i64..3_000, 4),
        jitters in prop::collection::vec(0i64..6_000, 4),
    ) {
        let leaves: Vec<ModelRef> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| leaf(k, periods[i], jitters[i], 1 + periods[i] / 2, k as u64))
            .collect();
        let m = AndJoin::new(leaves).expect("non-empty");
        assert_equiv(&m, &format!("AND({kinds:?})"));
    }

    #[test]
    fn propagated_outputs_lift_exactly(
        kind in 0u8..4,
        period in 20i64..4_000,
        jitter in 0i64..8_000,
        r_minus in 0i64..500,
        r_jitter in 0i64..2_000,
        chain in 1usize..=3,
    ) {
        // A task chain: each stage's output feeds the next stage.
        let mut model = leaf(kind, period, jitter, 1 + period / 2, kind as u64);
        for stage in 0..chain {
            let rm = Time::new(r_minus + stage as i64 * 13);
            let rp = rm + Time::new(r_jitter / (stage as i64 + 1));
            model = OutputModel::new(model, rm, rp).expect("valid response interval").shared();
        }
        assert_equiv(model.as_ref(), &format!("Output^{chain}(kind={kind})"));
    }

    #[test]
    fn shaped_streams_lift_exactly(
        kind in 0u8..4,
        period in 10i64..3_000,
        jitter in 0i64..9_000,
        dmin in 0i64..800,
    ) {
        let m = DminShaper::new(
            leaf(kind, period, jitter, 1 + period / 3, kind as u64),
            Time::new(dmin),
        ).expect("valid");
        assert_equiv(&m, &format!("Shaper(kind={kind}, d={dmin})"));
    }

    #[test]
    fn mixed_pipelines_lift_exactly(
        periods in prop::collection::vec(50i64..2_000, 2),
        jitter in 0i64..4_000,
        r_minus in 1i64..200,
        shape in 0i64..300,
    ) {
        // OR of two sources → task output → shaper: the composite shape
        // the engine actually builds for gateway topologies.
        let a = StandardEventModel::periodic_with_jitter(
            Time::new(periods[0]), Time::new(jitter),
        ).expect("valid").shared();
        let b = SporadicModel::new(Time::new(periods[1])).expect("valid").shared();
        let or = OrJoin::new(vec![a, b]).expect("non-empty").shared();
        let out = OutputModel::new(or, Time::new(r_minus), Time::new(r_minus * 2))
            .expect("valid")
            .shared();
        let m = DminShaper::new(out, Time::new(shape)).expect("valid");
        assert_equiv(&m, "OR→Θ→shaper pipeline");
    }
}

/// Guard against the fast path silently never engaging: the shapes the
/// paper's systems are built from must produce a lift, not a fallback.
#[test]
fn common_shapes_do_lift() {
    let sem = StandardEventModel::periodic_with_jitter(Time::new(2_500), Time::new(400))
        .expect("valid")
        .shared();
    let sporadic = SporadicModel::new(Time::new(900)).expect("valid").shared();
    let burst = PeriodicBurstModel::new(Time::new(4_000), 3, Time::new(200))
        .expect("valid")
        .shared();
    for m in [&sem, &sporadic, &burst] {
        assert!(m.analytic().is_some(), "leaf must lift");
    }
    let or: ModelRef = OrJoin::new(vec![sem.clone(), sporadic, burst])
        .expect("non-empty")
        .shared();
    assert!(or.analytic().is_some(), "OR of paper shapes must lift");
    let out = OutputModel::new(or, Time::new(40), Time::new(140))
        .expect("valid")
        .shared();
    assert!(out.analytic().is_some(), "propagated output must lift");
    let shaped = DminShaper::new(out, Time::new(25)).expect("valid");
    assert!(shaped.analytic().is_some(), "shaped stream must lift");
}

/// The lift of a lift is the identity — `AnalyticCurve::analytic`
/// returns an equal curve, so repeated engine iterations cannot drift.
#[test]
fn analytic_lift_is_idempotent() {
    let m =
        StandardEventModel::new(Time::new(700), Time::new(1_900), Time::new(45)).expect("valid");
    let first: AnalyticCurve = m.analytic().expect("lifts");
    let second: AnalyticCurve = first.analytic().expect("re-lifts");
    for n in 0..=200u64 {
        assert_eq!(first.delta_min(n), second.delta_min(n));
        assert_eq!(first.delta_plus(n), second.delta_plus(n));
    }
}
