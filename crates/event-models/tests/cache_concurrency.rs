//! Concurrency contract of the lock-striped [`CachedModel`].
//!
//! The parallel engine shares one cache per derived model across all
//! analysis workers, and its counter determinism rests on two
//! properties exercised here under real thread contention:
//!
//! * **compute-once** — concurrent queries for the same key perform
//!   exactly one inner evaluation and all observe the same value;
//! * **schedule-independent accounting** — evaluations equal the number
//!   of queries and misses equal the number of distinct keys, no matter
//!   how the queries interleave across threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use hem_event_models::{CachedModel, EventModel};
use hem_obs::{Counter, MemoryRecorder};
use hem_time::{Time, TimeBound};

/// A deterministic model that counts how often each curve function is
/// actually evaluated (i.e. how often the cache misses through to it).
#[derive(Debug, Default)]
struct CountingModel {
    calls: AtomicU64,
}

impl CountingModel {
    fn calls(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }
}

impl EventModel for CountingModel {
    fn delta_min(&self, n: u64) -> Time {
        self.calls.fetch_add(1, Ordering::SeqCst);
        Time::new(100 * n.saturating_sub(1) as i64)
    }

    fn delta_plus(&self, n: u64) -> TimeBound {
        self.calls.fetch_add(1, Ordering::SeqCst);
        TimeBound::finite(120 * n.saturating_sub(1) as i64)
    }

    fn eta_plus(&self, dt: Time) -> u64 {
        self.calls.fetch_add(1, Ordering::SeqCst);
        (dt.ticks().max(0) as u64).div_ceil(100)
    }

    fn eta_minus(&self, dt: Time) -> u64 {
        self.calls.fetch_add(1, Ordering::SeqCst);
        (dt.ticks().max(0) as u64) / 120
    }
}

/// Hammers one shared cache from `threads` threads, each issuing every
/// query in `keys` `repeats` times (all threads use the same key set,
/// maximising same-key contention).
fn hammer(cache: &Arc<CachedModel>, threads: usize, keys: &[u64], repeats: usize) {
    let barrier = Arc::new(Barrier::new(threads));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let cache = cache.clone();
            let barrier = barrier.clone();
            let keys = keys.to_vec();
            scope.spawn(move || {
                barrier.wait();
                for r in 0..repeats {
                    // Rotate the starting point per thread and round so
                    // the threads collide on different keys over time.
                    let shift = (t * 7 + r) % keys.len();
                    for &k in keys[shift..].iter().chain(&keys[..shift]) {
                        assert_eq!(
                            cache.delta_min(k),
                            Time::new(100 * k.saturating_sub(1) as i64)
                        );
                        assert_eq!(cache.eta_plus(Time::new(k as i64)), k.div_ceil(100));
                    }
                }
            });
        }
    });
}

#[test]
fn stress_compute_once_across_threads() {
    let inner = Arc::new(CountingModel::default());
    let cache = Arc::new(CachedModel::new(inner.clone() as _));
    let keys: Vec<u64> = (0..512).collect();
    let threads = 8;
    let repeats = 4;
    hammer(&cache, threads, &keys, repeats);
    // Two curve functions per key per pass — but the inner model must
    // have been consulted exactly once per (function, key), regardless
    // of the 8-way interleaving.
    assert_eq!(inner.calls(), 2 * keys.len() as u64);
    assert_eq!(cache.cached_entries(), 2 * keys.len());
}

#[test]
fn counter_totals_are_schedule_independent() {
    let (recorder, handle) = MemoryRecorder::handle();
    let inner = Arc::new(CountingModel::default());
    let cache = Arc::new(CachedModel::recorded(inner as _, handle));
    let keys: Vec<u64> = (1..=128).collect();
    let threads = 8;
    let repeats = 3;
    hammer(&cache, threads, &keys, repeats);
    cache.flush_recorded();
    let snap = recorder.snapshot();
    // Evaluations = queries issued: 2 curve functions × keys × repeats
    // × threads. Misses = distinct (function, key) pairs. Both are
    // workload properties, independent of which thread got there first.
    let queries = 2 * keys.len() as u64 * repeats as u64 * threads as u64;
    let distinct = 2 * keys.len() as u64;
    assert_eq!(snap.counter(Counter::CurveEvaluations), queries);
    assert_eq!(snap.counter(Counter::CacheMisses), distinct);
    assert_eq!(snap.counter(Counter::CacheHits), queries - distinct);
}

#[test]
fn same_key_burst_evaluates_inner_exactly_once() {
    // All threads released simultaneously onto the *same* key: the
    // stripe lock must serialise them into one inner computation.
    for _ in 0..32 {
        let inner = Arc::new(CountingModel::default());
        let cache = Arc::new(CachedModel::new(inner.clone() as _));
        let threads = 8;
        let barrier = Arc::new(Barrier::new(threads));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let cache = cache.clone();
                let barrier = barrier.clone();
                scope.spawn(move || {
                    barrier.wait();
                    assert_eq!(cache.delta_min(42), Time::new(4_100));
                });
            }
        });
        assert_eq!(inner.calls(), 1, "compute-once violated under burst");
    }
}

#[test]
fn flush_from_one_thread_sees_all_threads_counts() {
    let (recorder, handle) = MemoryRecorder::handle();
    let inner = Arc::new(CountingModel::default());
    let cache = Arc::new(CachedModel::recorded(inner as _, handle));
    let threads = 4;
    std::thread::scope(|scope| {
        for t in 0..threads as u64 {
            let cache = cache.clone();
            scope.spawn(move || {
                // Disjoint key ranges per thread: every query misses.
                for k in (t * 64)..(t * 64 + 64) {
                    let _ = cache.eta_minus(Time::new(k as i64));
                }
            });
        }
    });
    cache.flush_recorded();
    let snap = recorder.snapshot();
    assert_eq!(snap.counter(Counter::CurveEvaluations), threads as u64 * 64);
    assert_eq!(snap.counter(Counter::CacheMisses), threads as u64 * 64);
    assert_eq!(snap.counter(Counter::CacheHits), 0);
    // Nothing left behind: a second flush (or the drop) adds zero.
    cache.flush_recorded();
    assert_eq!(
        recorder.snapshot().counter(Counter::CurveEvaluations),
        threads as u64 * 64
    );
}
