//! Conservative standard-event-model approximation of arbitrary models.
//!
//! SymTA/S-style tools represent every stream by a parameterized
//! standard event model `(P, J, d_min)` (paper §2: SEMs "can lack in
//! precision when it comes to approximating arbitrary event streams").
//! This module fits a conservative SEM around any [`EventModel`]: the
//! approximation admits **at least** every event sequence of the
//! original (`η⁺` never smaller, `η⁻` never larger), so analyses using
//! it remain sound — just more pessimistic. That pessimism is exactly
//! what the `FlatSem` baseline mode quantifies.

use hem_time::{div_ceil, Time};

use crate::{EventModel, ModelError, StandardEventModel};

/// Fits a SEM around `model` that is conservative for the **upper**
/// arrival curves: `δ⁻` never larger, `η⁺` never smaller than the
/// original — the direction used by all interference computations.
///
/// The fit:
///
/// * `P = ⌊δ⁻(h) / (h − 1)⌋` for the horizon `h` — a lower bound on the
///   sustainable period. For super-additive `δ⁻` (every exact model),
///   Fekete's lemma gives `δ⁻(h)/(h−1) ≤` the long-run slope, so the
///   bound holds for *all* `n`, not just the horizon,
/// * `d_min = δ⁻(2)` (capped at `P`),
/// * `J = max_{n ≤ h} ((n−1)·P − δ⁻(n))` — the smallest jitter putting
///   the SEM's `δ⁻` below the model's on the horizon; super-additivity
///   extends the bound beyond it.
///
/// # Caveat — lower curves are NOT preserved
///
/// A single rational rate cannot conservatively bound both curves of,
/// say, an OR-join of incommensurate periods: this fit may
/// *under*-estimate maximum distances (`δ⁺`) and hence over-promise
/// guaranteed arrivals (`η⁻`). Use it only where upper curves matter —
/// e.g. the `FlatSem` baseline's interference terms — never to derive
/// arrival guarantees or pending-signal bounds.
///
/// # Errors
///
/// Returns [`ModelError::InvalidParameter`] if `horizon < 2` or the
/// model admits no sustainable period within the horizon.
///
/// # Examples
///
/// ```
/// use hem_event_models::ops::OrJoin;
/// use hem_event_models::{approx, EventModel, EventModelExt, StandardEventModel};
/// use hem_time::Time;
///
/// let a = StandardEventModel::periodic(Time::new(250))?.shared();
/// let b = StandardEventModel::periodic(Time::new(450))?.shared();
/// let or = OrJoin::new(vec![a, b])?;
/// let sem = approx::sem_approximation(&or, 50)?;
/// // Conservative: the SEM admits at least as many events per window.
/// for dt in [100, 500, 2_000].map(Time::new) {
///     assert!(sem.eta_plus(dt) >= or.eta_plus(dt));
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn sem_approximation(
    model: &dyn EventModel,
    horizon: u64,
) -> Result<StandardEventModel, ModelError> {
    if horizon < 2 {
        return Err(ModelError::invalid(
            "SEM approximation needs a horizon of at least two events",
        ));
    }
    // Sustainable period estimate from the densest long window.
    let span = model.delta_min(horizon);
    let period = Time::new(span.ticks() / (horizon as i64 - 1));
    if period < Time::ONE {
        return Err(ModelError::invalid(format!(
            "model admits {horizon} events within {span} ticks: no sustainable period ≥ 1"
        )));
    }
    let dmin = model.delta_min(2).min(period);
    // Smallest jitter putting the SEM's δ⁻ at or below the model's.
    let mut jitter = Time::ZERO;
    for n in 2..=horizon {
        let nominal = period * (n as i64 - 1);
        jitter = jitter.max(nominal - model.delta_min(n));
    }
    StandardEventModel::new(period, jitter.clamp_non_negative(), dmin)
}

/// The smallest horizon (event count) at which the rate estimate of
/// [`sem_approximation`] stabilizes for an eventually-periodic model:
/// one full hyperperiod worth of events, `⌈hyperperiod / min_period⌉ + 1`.
///
/// Convenience for callers that know the component periods.
///
/// # Panics
///
/// Panics if any period is < 1.
#[must_use]
pub fn suggested_horizon(periods: &[Time]) -> u64 {
    assert!(
        periods.iter().all(|p| *p >= Time::ONE),
        "periods must be positive"
    );
    let min_p = periods.iter().copied().min().unwrap_or(Time::ONE);
    let hyper = periods
        .iter()
        .fold(1i64, |acc, p| lcm(acc, p.ticks()).min(1 << 40));
    div_ceil(hyper, min_p.ticks()) as u64 + 1
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: i64, b: i64) -> i64 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OrJoin;
    use crate::{EventModelExt, SporadicModel};

    #[test]
    fn sem_refit_is_tight_and_conservative() {
        // Approximating a SEM recovers a near-identical conservative fit:
        // the floor-based rate estimate may shave one tick off P, which
        // the jitter then compensates.
        let m = StandardEventModel::new(Time::new(100), Time::new(30), Time::new(10)).unwrap();
        let fit = sem_approximation(&m, 64).unwrap();
        assert!(fit.period() >= Time::new(99) && fit.period() <= Time::new(100));
        for n in 2..=200u64 {
            assert!(fit.delta_min(n) <= m.delta_min(n), "δ⁻({n})");
        }
        for dt in (1..30_000).step_by(101).map(Time::new) {
            assert!(fit.eta_plus(dt) >= m.eta_plus(dt), "η⁺({dt})");
        }
        // d_min of the fit is the model's tightest pair distance δ⁻(2)
        // = max(10, 100 − 30) = 70 — tighter than the declared d_min
        // and still conservative.
        assert_eq!(fit.dmin(), Time::new(70));
    }

    #[test]
    fn or_join_approximation_is_conservative() {
        let a = StandardEventModel::periodic(Time::new(250))
            .unwrap()
            .shared();
        let b = StandardEventModel::periodic(Time::new(450))
            .unwrap()
            .shared();
        let or = OrJoin::new(vec![a, b]).unwrap();
        let horizon = suggested_horizon(&[Time::new(250), Time::new(450)]);
        let sem = sem_approximation(&or, horizon).unwrap();
        // Upper-curve conservatism well beyond the fitting horizon
        // (guaranteed by super-additivity of the exact OR curve).
        for n in 2..=120u64 {
            assert!(sem.delta_min(n) <= or.delta_min(n), "δ⁻({n})");
        }
        for dt in (1..20_000).step_by(73).map(Time::new) {
            assert!(sem.eta_plus(dt) >= or.eta_plus(dt), "η⁺({dt})");
        }
    }

    #[test]
    fn approximation_is_strictly_pessimistic_for_or() {
        // The OR of incommensurate periods is not SEM-representable:
        // somewhere the SEM admits strictly more events.
        let a = StandardEventModel::periodic(Time::new(250))
            .unwrap()
            .shared();
        let b = StandardEventModel::periodic(Time::new(450))
            .unwrap()
            .shared();
        let or = OrJoin::new(vec![a, b]).unwrap();
        let sem = sem_approximation(&or, 38).unwrap();
        let mut strictly = false;
        for dt in (1..20_000).step_by(97).map(Time::new) {
            assert!(sem.eta_plus(dt) >= or.eta_plus(dt));
            strictly |= sem.eta_plus(dt) > or.eta_plus(dt);
        }
        assert!(strictly, "SEM fit should over-approximate somewhere");
    }

    #[test]
    fn sporadic_fit_keeps_upper_curve() {
        let sp = SporadicModel::new(Time::new(70)).unwrap();
        let sem = sem_approximation(&sp, 32).unwrap();
        assert_eq!(sem.period(), Time::new(70));
        assert_eq!(sem.dmin(), Time::new(70));
        // η⁺ is matched; η⁻ is over-promised (the documented caveat).
        for dt in (1..2_000).step_by(41).map(Time::new) {
            assert!(sem.eta_plus(dt) >= sp.eta_plus(dt));
        }
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let m = StandardEventModel::periodic(Time::new(100)).unwrap();
        assert!(sem_approximation(&m, 1).is_err());
        // A model with unbounded simultaneity within the horizon has no
        // sustainable period.
        let bursty =
            StandardEventModel::periodic_with_jitter(Time::new(10), Time::new(1_000)).unwrap();
        assert!(sem_approximation(&bursty, 5).is_err());
        assert!(sem_approximation(&bursty, 200).is_ok());
    }

    #[test]
    fn suggested_horizon_covers_hyperperiod() {
        let h = suggested_horizon(&[Time::new(250), Time::new(450)]);
        // lcm = 2250, min period 250 → 9 + 1.
        assert_eq!(h, 10);
    }
}
