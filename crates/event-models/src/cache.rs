//! Memoizing wrapper for expensive derived models.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

use hem_obs::{Counter, RecorderHandle};
use hem_time::{Time, TimeBound};

use crate::{EventModel, ModelRef};

/// Number of independently locked shards per cache. A small power of
/// two: curve keys are spread by a multiplicative hash, so even 8
/// stripes make same-instant collisions between a handful of workers
/// unlikely, while keeping the per-cache footprint negligible.
const STRIPES: usize = 8;

/// One lock stripe: the four curve memo tables for the keys hashing to
/// this stripe, plus locally accumulated counter deltas (flushed in
/// bulk by [`CachedModel::flush_recorded`] instead of per query, so the
/// hot path never touches the recorder's lock).
#[derive(Debug, Default)]
struct Shard {
    delta_min: HashMap<u64, Time>,
    delta_plus: HashMap<u64, TimeBound>,
    eta_plus: HashMap<Time, u64>,
    eta_minus: HashMap<Time, u64>,
    evaluations: u64,
    misses: u64,
}

/// A memoizing wrapper around any event model.
///
/// Derived models — OR-joins, packed hierarchies, inner updates — answer
/// each query by recursing into their children; inside a busy-window
/// fixed point the same `δ±(n)`/`η±(Δt)` values are requested thousands
/// of times. `CachedModel` memoizes all four functions, turning repeated
/// queries into hash lookups while remaining a drop-in [`EventModel`].
///
/// The cache is safe to share across analysis workers: it is
/// lock-striped (keys spread over `STRIPES` independently locked
/// shards) and **compute-once** — the shard lock is held while the
/// wrapped model is evaluated, so concurrent queries for the same key
/// perform exactly one inner evaluation and every caller observes the
/// same value. Holding the lock during evaluation cannot deadlock:
/// model graphs are acyclic (`Arc`-shared DAGs), so recursion only ever
/// acquires locks of *other* cache instances, following the DAG's
/// partial order.
///
/// Compute-once also makes the hit/miss accounting independent of
/// thread interleaving: misses equal the number of *distinct keys*
/// evaluated and evaluations equal the number of queries issued — both
/// properties of the workload, not of the schedule. This is what lets
/// the parallel engine report bit-identical cache counters for any
/// thread count.
///
/// # Examples
///
/// ```
/// use hem_event_models::ops::OrJoin;
/// use hem_event_models::{CachedModel, EventModel, EventModelExt, StandardEventModel};
/// use hem_time::Time;
///
/// let or = OrJoin::new(vec![
///     StandardEventModel::periodic(Time::new(250))?.shared(),
///     StandardEventModel::periodic(Time::new(450))?.shared(),
/// ])?;
/// let cached = CachedModel::new(or.shared());
/// assert_eq!(cached.delta_min(5), cached.delta_min(5)); // second hit is O(1)
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CachedModel {
    inner: ModelRef,
    recorder: RecorderHandle,
    /// `recorder.enabled()`, resolved once at construction: curve
    /// queries are the hottest path of the analysis and must not pay a
    /// dynamic dispatch per query when recording is off.
    recording: bool,
    shards: [Mutex<Shard>; STRIPES],
}

impl CachedModel {
    /// Wraps a model with memoization.
    #[must_use]
    pub fn new(inner: ModelRef) -> Self {
        CachedModel::recorded(inner, RecorderHandle::noop())
    }

    /// Wraps a model with memoization that reports
    /// [`Counter::CurveEvaluations`] / [`Counter::CacheHits`] /
    /// [`Counter::CacheMisses`] to the given recorder.
    ///
    /// Counts are accumulated inside the cache and reach the recorder
    /// when [`CachedModel::flush_recorded`] is called (the engine
    /// flushes at deterministic points) or when the cache is dropped.
    #[must_use]
    pub fn recorded(inner: ModelRef, recorder: RecorderHandle) -> Self {
        CachedModel {
            inner,
            recording: recorder.enabled(),
            recorder,
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
        }
    }

    /// The wrapped model.
    #[must_use]
    pub fn inner(&self) -> &ModelRef {
        &self.inner
    }

    /// The shard responsible for `key` (identically distributed for the
    /// `n`- and `Δt`-keyed tables; Fibonacci hashing spreads the small,
    /// dense keys of busy-window queries across stripes).
    fn shard(&self, key: u64) -> MutexGuard<'_, Shard> {
        let idx = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 61) as usize % STRIPES;
        self.shards[idx].lock().expect("cache shard poisoned")
    }

    /// Flushes the accumulated evaluation/hit/miss counts to the
    /// recorder passed at construction.
    ///
    /// Totals are drained (a second flush reports nothing new). The
    /// parallel engine calls this at the end of every global iteration —
    /// a point reached with all workers quiescent — so counter order at
    /// the recorder is deterministic; dropping the cache flushes any
    /// remainder.
    pub fn flush_recorded(&self) {
        if !self.recording {
            return;
        }
        let mut evaluations = 0u64;
        let mut misses = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            evaluations += std::mem::take(&mut shard.evaluations);
            misses += std::mem::take(&mut shard.misses);
        }
        if evaluations > 0 {
            self.recorder.add(Counter::CurveEvaluations, evaluations);
            self.recorder.add(Counter::CacheHits, evaluations - misses);
            self.recorder.add(Counter::CacheMisses, misses);
        }
    }

    /// Clones this cache's memo tables into a fresh cache reporting to
    /// `recorder`, with zeroed pending counter deltas.
    ///
    /// This is the cross-run retention primitive of the incremental
    /// engine: a converged run's caches are forked into the next run so
    /// entities whose input models are unchanged start with every curve
    /// already memoized. The fork carries **values only** — evaluation
    /// and miss deltas accumulated but not yet flushed stay with the
    /// original, so the new run's counter stream reflects only its own
    /// queries (pre-warmed keys count as hits, never as misses).
    #[must_use]
    pub fn fork(&self, recorder: RecorderHandle) -> CachedModel {
        self.fork_onto(self.inner.clone(), recorder)
    }

    /// Like [`CachedModel::fork`], but wrapping `inner` instead of this
    /// cache's own model.
    ///
    /// The caller asserts that `inner` is *value-equivalent* to the
    /// model the memoized entries were computed from — the incremental
    /// engine proves this via the damage cone (an entity outside the
    /// cone has bit-identical input models across runs). Re-wiring onto
    /// the new run's model graph keeps cache misses from evaluating —
    /// and keeping alive — the previous run's models.
    #[must_use]
    pub fn fork_onto(&self, inner: ModelRef, recorder: RecorderHandle) -> CachedModel {
        let forked = CachedModel::recorded(inner, recorder);
        for (src, dst) in self.shards.iter().zip(&forked.shards) {
            let src = src.lock().expect("cache shard poisoned");
            let mut dst = dst.lock().expect("cache shard poisoned");
            dst.delta_min = src.delta_min.clone();
            dst.delta_plus = src.delta_plus.clone();
            dst.eta_plus = src.eta_plus.clone();
            dst.eta_minus = src.eta_minus.clone();
        }
        forked
    }

    /// Total number of memoized entries across all stripes (diagnostic).
    #[must_use]
    pub fn cached_entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock().expect("cache shard poisoned");
                s.delta_min.len() + s.delta_plus.len() + s.eta_plus.len() + s.eta_minus.len()
            })
            .sum()
    }
}

impl Drop for CachedModel {
    fn drop(&mut self) {
        self.flush_recorded();
    }
}

macro_rules! memoized {
    ($self:ident, $table:ident, $key:expr, $raw_key:expr) => {{
        let mut shard = $self.shard($raw_key);
        shard.evaluations += 1;
        match shard.$table.get(&$key) {
            Some(v) => *v,
            None => {
                // Compute while holding the stripe: concurrent queries
                // for this key block here and then hit.
                let v = $self.inner.$table($key);
                shard.$table.insert($key, v);
                shard.misses += 1;
                v
            }
        }
    }};
}

impl EventModel for CachedModel {
    fn delta_min(&self, n: u64) -> Time {
        memoized!(self, delta_min, n, n)
    }

    fn delta_plus(&self, n: u64) -> TimeBound {
        memoized!(self, delta_plus, n, n)
    }

    fn eta_plus(&self, dt: Time) -> u64 {
        memoized!(self, eta_plus, dt, dt.ticks() as u64)
    }

    fn eta_minus(&self, dt: Time) -> u64 {
        memoized!(self, eta_minus, dt, dt.ticks() as u64)
    }

    // An analytic lift sees through the cache: the wrapped model's curve
    // (if any) IS the cached model's curve, since memoization never
    // changes values. Exposing it lets the engine swap the inner model
    // for its lift while keeping this cache — and its key/counter
    // traffic — exactly in place.
    fn analytic(&self) -> Option<crate::AnalyticCurve> {
        self.inner.analytic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OrJoin;
    use crate::{EventModelExt, StandardEventModel};

    fn or_model() -> ModelRef {
        OrJoin::new(vec![
            StandardEventModel::periodic(Time::new(250))
                .unwrap()
                .shared(),
            StandardEventModel::periodic_with_jitter(Time::new(450), Time::new(40))
                .unwrap()
                .shared(),
        ])
        .unwrap()
        .shared()
    }

    #[test]
    fn transparent_equivalence() {
        let raw = or_model();
        let cached = CachedModel::new(raw.clone());
        for n in 0..=20u64 {
            assert_eq!(cached.delta_min(n), raw.delta_min(n));
            assert_eq!(cached.delta_plus(n), raw.delta_plus(n));
        }
        for dt in (0..1500).step_by(31).map(Time::new) {
            assert_eq!(cached.eta_plus(dt), raw.eta_plus(dt));
            assert_eq!(cached.eta_minus(dt), raw.eta_minus(dt));
        }
    }

    #[test]
    fn caches_fill_and_repeat_hits_are_stable() {
        let cached = CachedModel::new(or_model());
        assert_eq!(cached.cached_entries(), 0);
        let first = cached.delta_min(7);
        let entries_after_one = cached.cached_entries();
        assert!(entries_after_one >= 1);
        assert_eq!(cached.delta_min(7), first);
        assert_eq!(cached.cached_entries(), entries_after_one);
        let _ = cached.eta_plus(Time::new(999));
        assert!(cached.cached_entries() > entries_after_one);
    }

    #[test]
    fn inner_accessor() {
        let raw = or_model();
        let cached = CachedModel::new(raw.clone());
        assert_eq!(cached.inner().delta_min(3), raw.delta_min(3));
    }

    #[test]
    fn recorded_cache_counts_hits_and_misses_on_flush() {
        let (rec, handle) = hem_obs::MemoryRecorder::handle();
        let cached = CachedModel::recorded(or_model(), handle);
        let _ = cached.delta_min(7); // miss
        let _ = cached.delta_min(7); // hit
        let _ = cached.eta_plus(Time::new(100)); // miss
                                                 // Counts are buffered in the cache until flushed.
        assert_eq!(rec.snapshot().counter(Counter::CurveEvaluations), 0);
        cached.flush_recorded();
        let snap = rec.snapshot();
        assert_eq!(snap.counter(Counter::CurveEvaluations), 3);
        assert_eq!(snap.counter(Counter::CacheMisses), 2);
        assert_eq!(snap.counter(Counter::CacheHits), 1);
        // Flushing again reports nothing new.
        cached.flush_recorded();
        assert_eq!(rec.snapshot().counter(Counter::CurveEvaluations), 3);
    }

    #[test]
    fn drop_flushes_remaining_counts() {
        let (rec, handle) = hem_obs::MemoryRecorder::handle();
        {
            let cached = CachedModel::recorded(or_model(), handle);
            let _ = cached.delta_min(1);
            let _ = cached.delta_min(1);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counter(Counter::CurveEvaluations), 2);
        assert_eq!(snap.counter(Counter::CacheMisses), 1);
        assert_eq!(snap.counter(Counter::CacheHits), 1);
    }

    #[test]
    fn fork_carries_entries_but_not_pending_counts() {
        let (rec, handle) = hem_obs::MemoryRecorder::handle();
        let original = CachedModel::recorded(or_model(), handle);
        let v = original.delta_min(7); // miss, left unflushed
        let entries = original.cached_entries();

        let (rec2, handle2) = hem_obs::MemoryRecorder::handle();
        let forked = original.fork(handle2);
        assert_eq!(forked.cached_entries(), entries);
        // The pre-warmed key is a hit in the fork, not a miss.
        assert_eq!(forked.delta_min(7), v);
        forked.flush_recorded();
        let snap = rec2.snapshot();
        assert_eq!(snap.counter(Counter::CurveEvaluations), 1);
        assert_eq!(snap.counter(Counter::CacheHits), 1);
        assert_eq!(snap.counter(Counter::CacheMisses), 0);
        // The original keeps its own pending miss.
        original.flush_recorded();
        assert_eq!(rec.snapshot().counter(Counter::CacheMisses), 1);
    }

    #[test]
    fn fork_onto_serves_seeded_values_and_misses_hit_new_inner() {
        let original = CachedModel::new(or_model());
        let seeded_value = original.delta_min(3);
        // Re-wire onto an equivalent model instance: seeded keys answer
        // from the memo tables, fresh keys evaluate the new inner.
        let replacement = or_model();
        let forked = original.fork_onto(replacement.clone(), RecorderHandle::noop());
        assert_eq!(forked.delta_min(3), seeded_value);
        assert_eq!(
            forked.eta_plus(Time::new(777)),
            replacement.eta_plus(Time::new(777))
        );
        assert!(forked.cached_entries() > original.cached_entries());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CachedModel>();
    }
}
