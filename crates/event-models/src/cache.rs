//! Memoizing wrapper for expensive derived models.

use std::collections::HashMap;
use std::sync::Mutex;

use hem_obs::{Counter, RecorderHandle};
use hem_time::{Time, TimeBound};

use crate::{EventModel, ModelRef};

/// A memoizing wrapper around any event model.
///
/// Derived models — OR-joins, packed hierarchies, inner updates — answer
/// each query by recursing into their children; inside a busy-window
/// fixed point the same `δ±(n)`/`η±(Δt)` values are requested thousands
/// of times. `CachedModel` memoizes all four functions, turning repeated
/// queries into hash lookups while remaining a drop-in [`EventModel`].
///
/// # Examples
///
/// ```
/// use hem_event_models::ops::OrJoin;
/// use hem_event_models::{CachedModel, EventModel, EventModelExt, StandardEventModel};
/// use hem_time::Time;
///
/// let or = OrJoin::new(vec![
///     StandardEventModel::periodic(Time::new(250))?.shared(),
///     StandardEventModel::periodic(Time::new(450))?.shared(),
/// ])?;
/// let cached = CachedModel::new(or.shared());
/// assert_eq!(cached.delta_min(5), cached.delta_min(5)); // second hit is O(1)
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CachedModel {
    inner: ModelRef,
    recorder: RecorderHandle,
    /// `recorder.enabled()`, resolved once at construction: curve
    /// queries are the hottest path of the analysis and must not pay a
    /// dynamic dispatch per query when recording is off.
    recording: bool,
    delta_min: Mutex<HashMap<u64, Time>>,
    delta_plus: Mutex<HashMap<u64, TimeBound>>,
    eta_plus: Mutex<HashMap<Time, u64>>,
    eta_minus: Mutex<HashMap<Time, u64>>,
}

impl CachedModel {
    /// Wraps a model with memoization.
    #[must_use]
    pub fn new(inner: ModelRef) -> Self {
        CachedModel::recorded(inner, RecorderHandle::noop())
    }

    /// Wraps a model with memoization that reports
    /// [`Counter::CurveEvaluations`] / [`Counter::CacheHits`] /
    /// [`Counter::CacheMisses`] to the given recorder.
    #[must_use]
    pub fn recorded(inner: ModelRef, recorder: RecorderHandle) -> Self {
        CachedModel {
            inner,
            recording: recorder.enabled(),
            recorder,
            delta_min: Mutex::new(HashMap::new()),
            delta_plus: Mutex::new(HashMap::new()),
            eta_plus: Mutex::new(HashMap::new()),
            eta_minus: Mutex::new(HashMap::new()),
        }
    }

    /// The wrapped model.
    #[must_use]
    pub fn inner(&self) -> &ModelRef {
        &self.inner
    }

    #[inline]
    fn note(&self, missed: bool) {
        if self.recording {
            self.recorder.add(Counter::CurveEvaluations, 1);
            let outcome = if missed {
                Counter::CacheMisses
            } else {
                Counter::CacheHits
            };
            self.recorder.add(outcome, 1);
        }
    }

    /// Total number of memoized entries across all four caches
    /// (diagnostic).
    #[must_use]
    pub fn cached_entries(&self) -> usize {
        self.delta_min.lock().expect("poisoned").len()
            + self.delta_plus.lock().expect("poisoned").len()
            + self.eta_plus.lock().expect("poisoned").len()
            + self.eta_minus.lock().expect("poisoned").len()
    }
}

impl EventModel for CachedModel {
    fn delta_min(&self, n: u64) -> Time {
        let mut missed = false;
        let v = *self
            .delta_min
            .lock()
            .expect("poisoned")
            .entry(n)
            .or_insert_with(|| {
                missed = true;
                self.inner.delta_min(n)
            });
        self.note(missed);
        v
    }

    fn delta_plus(&self, n: u64) -> TimeBound {
        let mut missed = false;
        let v = *self
            .delta_plus
            .lock()
            .expect("poisoned")
            .entry(n)
            .or_insert_with(|| {
                missed = true;
                self.inner.delta_plus(n)
            });
        self.note(missed);
        v
    }

    fn eta_plus(&self, dt: Time) -> u64 {
        let mut missed = false;
        let v = *self
            .eta_plus
            .lock()
            .expect("poisoned")
            .entry(dt)
            .or_insert_with(|| {
                missed = true;
                self.inner.eta_plus(dt)
            });
        self.note(missed);
        v
    }

    fn eta_minus(&self, dt: Time) -> u64 {
        let mut missed = false;
        let v = *self
            .eta_minus
            .lock()
            .expect("poisoned")
            .entry(dt)
            .or_insert_with(|| {
                missed = true;
                self.inner.eta_minus(dt)
            });
        self.note(missed);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OrJoin;
    use crate::{EventModelExt, StandardEventModel};

    fn or_model() -> ModelRef {
        OrJoin::new(vec![
            StandardEventModel::periodic(Time::new(250))
                .unwrap()
                .shared(),
            StandardEventModel::periodic_with_jitter(Time::new(450), Time::new(40))
                .unwrap()
                .shared(),
        ])
        .unwrap()
        .shared()
    }

    #[test]
    fn transparent_equivalence() {
        let raw = or_model();
        let cached = CachedModel::new(raw.clone());
        for n in 0..=20u64 {
            assert_eq!(cached.delta_min(n), raw.delta_min(n));
            assert_eq!(cached.delta_plus(n), raw.delta_plus(n));
        }
        for dt in (0..1500).step_by(31).map(Time::new) {
            assert_eq!(cached.eta_plus(dt), raw.eta_plus(dt));
            assert_eq!(cached.eta_minus(dt), raw.eta_minus(dt));
        }
    }

    #[test]
    fn caches_fill_and_repeat_hits_are_stable() {
        let cached = CachedModel::new(or_model());
        assert_eq!(cached.cached_entries(), 0);
        let first = cached.delta_min(7);
        let entries_after_one = cached.cached_entries();
        assert!(entries_after_one >= 1);
        assert_eq!(cached.delta_min(7), first);
        assert_eq!(cached.cached_entries(), entries_after_one);
        let _ = cached.eta_plus(Time::new(999));
        assert!(cached.cached_entries() > entries_after_one);
    }

    #[test]
    fn inner_accessor() {
        let raw = or_model();
        let cached = CachedModel::new(raw.clone());
        assert_eq!(cached.inner().delta_min(3), raw.delta_min(3));
    }

    #[test]
    fn recorded_cache_counts_hits_and_misses() {
        let (rec, handle) = hem_obs::MemoryRecorder::handle();
        let cached = CachedModel::recorded(or_model(), handle);
        let _ = cached.delta_min(7); // miss
        let _ = cached.delta_min(7); // hit
        let _ = cached.eta_plus(Time::new(100)); // miss
        let snap = rec.snapshot();
        assert_eq!(snap.counter(Counter::CurveEvaluations), 3);
        assert_eq!(snap.counter(Counter::CacheMisses), 2);
        assert_eq!(snap.counter(Counter::CacheHits), 1);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CachedModel>();
    }
}
