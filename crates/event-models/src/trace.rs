//! Event models extracted from recorded timestamp traces.

use hem_time::{Time, TimeBound};

use crate::{CurveBuilder, CurveModel, EventModel, ModelError};

/// An event model derived conservatively from a finite timestamp trace.
///
/// For a trace of `m` events the model's curves are, for `n ≤ m`,
///
/// * `δ⁻(n)` — the smallest span of any `n` consecutive trace events,
/// * `δ⁺(n)` — the largest such span,
///
/// and beyond the trace length:
///
/// * `δ⁻` is extended super-additively with stride `(m − 1, δ⁻(m))` —
///   i.e. any `n > m` events are assumed to repeat the densest full-trace
///   packing, a conservative lower bound,
/// * `δ⁺` is [`TimeBound::Infinite`] — the trace gives no evidence of a
///   minimum rate beyond its own length.
///
/// `TraceModel` therefore over-approximates every stream whose windows of
/// up to `m` events behave like some window of the trace, which is the
/// property the validation experiments need (analysis bounds computed from
/// a `TraceModel` must cover the trace that produced it).
///
/// # Examples
///
/// ```
/// use hem_event_models::{EventModel, TraceModel};
/// use hem_time::{Time, TimeBound};
///
/// let trace = [0, 95, 210, 300, 395].map(Time::new);
/// let m = TraceModel::from_timestamps(trace)?;
/// assert_eq!(m.delta_min(2), Time::new(90));   // 300 − 210
/// assert_eq!(m.delta_plus(2), TimeBound::finite(115)); // 210 − 95
/// assert_eq!(m.event_count(), 5);
/// # Ok::<(), hem_event_models::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceModel {
    curve: CurveModel,
    event_count: u64,
    span: Time,
}

impl TraceModel {
    /// Builds a trace model from event timestamps (any order; duplicates
    /// allowed, representing simultaneous events).
    ///
    /// # Errors
    ///
    /// Returns an error if the trace has fewer than two events or spans
    /// zero time (no rate can be inferred).
    pub fn from_timestamps(timestamps: impl IntoIterator<Item = Time>) -> Result<Self, ModelError> {
        let mut ts: Vec<Time> = timestamps.into_iter().collect();
        ts.sort_unstable();
        let m = ts.len() as u64;
        if m < 2 {
            return Err(ModelError::invalid(
                "trace must contain at least two events",
            ));
        }
        let span = *ts.last().expect("non-empty") - ts[0];
        if span < Time::ONE {
            return Err(ModelError::invalid(
                "trace must span at least one tick to infer a rate",
            ));
        }
        let mut builder = CurveBuilder::new().extension(m - 1, span);
        for n in 2..=m as usize {
            let mut dmin = Time::MAX;
            let mut dplus = Time::ZERO;
            for w in ts.windows(n) {
                let d = w[n - 1] - w[0];
                dmin = dmin.min(d);
                dplus = dplus.max(d);
            }
            builder = builder.push_delta_min(dmin);
            // The trace provides no maximum-distance evidence at its own
            // length: the stream may simply stop. Only spans that are
            // strictly inside the trace yield a finite δ⁺.
            builder = builder.push_delta_plus(if (n as u64) < m {
                TimeBound::Finite(dplus)
            } else {
                TimeBound::Infinite
            });
        }
        Ok(TraceModel {
            curve: builder.build()?,
            event_count: m,
            span,
        })
    }

    /// Number of events in the originating trace.
    #[must_use]
    pub fn event_count(&self) -> u64 {
        self.event_count
    }

    /// Time spanned by the originating trace.
    #[must_use]
    pub fn span(&self) -> Time {
        self.span
    }

    /// The underlying δ-curve representation.
    #[must_use]
    pub fn as_curve(&self) -> &CurveModel {
        &self.curve
    }
}

impl EventModel for TraceModel {
    fn delta_min(&self, n: u64) -> Time {
        self.curve.delta_min(n)
    }

    fn delta_plus(&self, n: u64) -> TimeBound {
        self.curve.delta_plus(n)
    }

    fn analytic(&self) -> Option<crate::AnalyticCurve> {
        self.curve.analytic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_trace_recovers_period() {
        let ts: Vec<Time> = (0..10).map(|i| Time::new(i * 100)).collect();
        let m = TraceModel::from_timestamps(ts).unwrap();
        assert_eq!(m.event_count(), 10);
        assert_eq!(m.span(), Time::new(900));
        for n in 2..=10u64 {
            assert_eq!(m.delta_min(n), Time::new(100) * (n as i64 - 1));
        }
        // Extension: δ⁻(19) = δ⁻(10) + 900 = 1800.
        assert_eq!(m.delta_min(19), Time::new(1800));
        // δ⁺ beyond the trace is unbounded.
        assert_eq!(m.delta_plus(10), TimeBound::Infinite);
        assert_eq!(m.delta_plus(11), TimeBound::Infinite);
        assert_eq!(m.delta_plus(9), TimeBound::finite(800));
    }

    #[test]
    fn jittery_trace_bounds_hold() {
        let ts = [0, 95, 210, 300, 395, 505].map(Time::new);
        let m = TraceModel::from_timestamps(ts).unwrap();
        // δ⁻(2): min adjacent gap = 90; δ⁺(2): max adjacent gap = 115.
        assert_eq!(m.delta_min(2), Time::new(90));
        assert_eq!(m.delta_plus(2), TimeBound::finite(115));
        // Every window of the trace is within the model bounds.
        let sorted = [0i64, 95, 210, 300, 395, 505];
        for n in 2..=6usize {
            for w in sorted.windows(n) {
                let d = Time::new(w[n - 1] - w[0]);
                assert!(m.delta_min(n as u64) <= d);
                assert!(TimeBound::from(d) <= m.delta_plus(n as u64));
            }
        }
    }

    #[test]
    fn simultaneous_events_supported() {
        let ts = [0, 0, 100, 100, 200].map(Time::new);
        let m = TraceModel::from_timestamps(ts).unwrap();
        assert_eq!(m.delta_min(2), Time::ZERO);
        assert_eq!(m.max_simultaneous(), 2);
    }

    #[test]
    fn unordered_input_is_sorted() {
        let a = TraceModel::from_timestamps([300, 0, 100, 200].map(Time::new)).unwrap();
        let b = TraceModel::from_timestamps([0, 100, 200, 300].map(Time::new)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_degenerate_traces() {
        assert!(TraceModel::from_timestamps([Time::ZERO]).is_err());
        assert!(TraceModel::from_timestamps([]).is_err());
        assert!(TraceModel::from_timestamps([Time::ZERO, Time::ZERO]).is_err());
    }

    #[test]
    fn curve_accessor() {
        let m = TraceModel::from_timestamps([0, 100, 200].map(Time::new)).unwrap();
        assert_eq!(m.as_curve().extension(), (2, Time::new(200)));
    }
}
