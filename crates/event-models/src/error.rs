//! Error type for event-model construction and validation.

use std::error::Error;
use std::fmt;

/// Error returned when constructing or validating an event model.
///
/// # Examples
///
/// ```
/// use hem_event_models::StandardEventModel;
/// use hem_time::Time;
///
/// // A zero period is rejected.
/// let err = StandardEventModel::periodic(Time::ZERO).unwrap_err();
/// assert!(err.to_string().contains("period"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A constructor argument is out of range.
    InvalidParameter(String),
    /// A model violates the `EventModel` contract.
    Inconsistent(String),
}

impl ModelError {
    /// Creates an [`ModelError::InvalidParameter`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        ModelError::InvalidParameter(msg.into())
    }

    /// Creates an [`ModelError::Inconsistent`].
    pub fn inconsistent(msg: impl Into<String>) -> Self {
        ModelError::Inconsistent(msg.into())
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ModelError::Inconsistent(msg) => write!(f, "inconsistent model: {msg}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ModelError::invalid("period must be positive").to_string(),
            "invalid parameter: period must be positive"
        );
        assert_eq!(
            ModelError::inconsistent("δ⁻ not monotone").to_string(),
            "inconsistent model: δ⁻ not monotone"
        );
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(ModelError::invalid("x"));
        assert!(e.source().is_none());
    }
}
