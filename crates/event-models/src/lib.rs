//! Flat event models and stream combinators for Compositional Performance
//! Analysis (CPA).
//!
//! An *event stream* is the set of all event sequences that can be observed
//! at some point of a system (e.g. the activations of a task). Following
//! Richter's framework — restated in §2–3 of the DATE'08 HEM paper — a
//! stream is characterized by four functions:
//!
//! * `δ⁻(n)` — the minimum time interval spanned by any `n` consecutive
//!   events ([`EventModel::delta_min`]),
//! * `δ⁺(n)` — the maximum such interval ([`EventModel::delta_plus`],
//!   possibly infinite),
//! * `η⁺(Δt)` — the maximum number of events in any window of length `Δt`
//!   ([`EventModel::eta_plus`], paper eq. (1)),
//! * `η⁻(Δt)` — the minimum number ([`EventModel::eta_minus`], eq. (2)).
//!
//! The paper (and this crate) treats `F = (δ⁻, δ⁺)` as the canonical pair
//! and derives `η±` from it; the [`convert`] module implements eqs. (1),(2)
//! and their pseudo-inverses.
//!
//! # Provided models
//!
//! * [`StandardEventModel`] — the classic `(P, J, d_min)` parameterization
//!   with exact closed forms,
//! * [`SporadicModel`] — minimum-distance-only streams (`δ⁺ = ∞`),
//! * [`CurveModel`] — explicit δ-curves with periodic extension, the
//!   general-purpose representation for derived streams,
//! * [`TraceModel`] — δ-curves extracted conservatively from recorded
//!   event timestamp traces.
//!
//! # Provided operations
//!
//! * [`ops::OrJoin`] — OR-activation combination (paper eqs. (3),(4)),
//! * [`ops::AndJoin`] — AND-activation combination,
//! * [`ops::OutputModel`] — output-stream calculation `Θ_τ` from response
//!   times `[r⁻, r⁺]` (paper §3),
//! * [`ops::DminShaper`] — greedy minimum-distance shaper.
//!
//! # Examples
//!
//! ```
//! use hem_event_models::{EventModel, StandardEventModel};
//! use hem_time::Time;
//!
//! // A 250-tick periodic source with 40 ticks of jitter.
//! let s = StandardEventModel::periodic_with_jitter(Time::new(250), Time::new(40))?;
//! assert_eq!(s.eta_plus(Time::new(500)), 3); // jitter admits a third event
//! assert_eq!(s.delta_min(2), Time::new(210));
//! # Ok::<(), hem_event_models::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod approx;
mod burst;
mod cache;
pub mod convert;
mod curve;
mod error;
pub mod ops;
pub mod sampling;
mod standard;
mod trace;

use std::fmt::Debug;
use std::sync::Arc;

pub use analytic::{AnalyticCurve, PlusCombine};
pub use burst::PeriodicBurstModel;
pub use cache::CachedModel;
pub use curve::{CurveBuilder, CurveModel};
pub use error::ModelError;
pub use standard::{SporadicModel, StandardEventModel};
pub use trace::TraceModel;

use hem_time::{Time, TimeBound};

/// Shared, thread-safe handle to any event model.
///
/// Stream combinators compose models of heterogeneous concrete types, so
/// they store children as trait objects behind an [`Arc`].
pub type ModelRef = Arc<dyn EventModel>;

/// The four characteristic functions of an event stream.
///
/// Implementors must provide the distance functions `δ⁻`/`δ⁺`; the arrival
/// functions `η⁺`/`η⁻` have default implementations via the paper's
/// eqs. (1),(2) (see [`convert`]) and should be overridden when a cheaper
/// closed form exists.
///
/// # Contract
///
/// For every well-formed model:
///
/// * `δ⁻(n) = δ⁺(n) = 0` for `n ≤ 1`,
/// * `δ⁻` and `δ⁺` are non-negative and non-decreasing in `n`,
/// * `δ⁻(n) ≤ δ⁺(n)` for all `n`,
/// * `δ⁻` has a positive long-run rate: `δ⁻(n) → ∞` as `n → ∞`
///   (every real stream is rate-bounded; this guarantees `η⁺` is finite).
///
/// [`check_consistency`] verifies these properties on a finite prefix.
pub trait EventModel: Debug + Send + Sync {
    /// `δ⁻(n)`: the minimum time interval spanned by any `n` consecutive
    /// events of the stream. Returns [`Time::ZERO`] for `n ≤ 1`.
    fn delta_min(&self, n: u64) -> Time;

    /// `δ⁺(n)`: the maximum time interval spanned by `n` consecutive
    /// events, or [`TimeBound::Infinite`] when no finite bound exists.
    /// Returns zero for `n ≤ 1`.
    fn delta_plus(&self, n: u64) -> TimeBound;

    /// `η⁺(Δt)`: the maximum number of events in any half-open time window
    /// of length `Δt` (paper eq. (1)). Zero for `Δt ≤ 0`.
    ///
    /// # Panics
    ///
    /// The default implementation panics if the model violates the
    /// rate-boundedness contract (its `δ⁻` never reaches `Δt`).
    fn eta_plus(&self, dt: Time) -> u64 {
        convert::eta_plus_from_delta_min(&|n| self.delta_min(n), dt)
    }

    /// `η⁻(Δt)`: the minimum number of events in any open time window of
    /// length `Δt` (paper eq. (2)). Zero when `δ⁺(2)` is unbounded.
    fn eta_minus(&self, dt: Time) -> u64 {
        convert::eta_minus_from_delta_plus(&|n| self.delta_plus(n), dt)
    }

    /// The largest number of events that can arrive simultaneously, i.e.
    /// the largest `k` with `δ⁻(k) = 0`.
    ///
    /// This is the `k` used by the paper's inner update function (Def. 9).
    fn max_simultaneous(&self) -> u64 {
        convert::max_simultaneous_from_delta_min(&|n| self.delta_min(n))
    }

    /// Closed-form lift of this model, if its shape admits one.
    ///
    /// Returns an [`AnalyticCurve`] that is bit-for-bit equal to this
    /// model on all four characteristic functions, or `None` when the
    /// model's shape has no (cheap) closed form — callers must then use
    /// the generic lazy path. See the [`analytic`] module docs for the
    /// fallback taxonomy.
    fn analytic(&self) -> Option<AnalyticCurve> {
        None
    }
}

impl EventModel for Arc<dyn EventModel> {
    fn delta_min(&self, n: u64) -> Time {
        self.as_ref().delta_min(n)
    }
    fn delta_plus(&self, n: u64) -> TimeBound {
        self.as_ref().delta_plus(n)
    }
    fn eta_plus(&self, dt: Time) -> u64 {
        self.as_ref().eta_plus(dt)
    }
    fn eta_minus(&self, dt: Time) -> u64 {
        self.as_ref().eta_minus(dt)
    }
    fn max_simultaneous(&self) -> u64 {
        self.as_ref().max_simultaneous()
    }
    fn analytic(&self) -> Option<AnalyticCurve> {
        self.as_ref().analytic()
    }
}

/// Extension helpers available on every sized event model.
pub trait EventModelExt: EventModel + Sized + 'static {
    /// Wraps the model in a shared [`ModelRef`] handle.
    ///
    /// # Examples
    ///
    /// ```
    /// use hem_event_models::{EventModel, EventModelExt, StandardEventModel};
    /// use hem_time::Time;
    ///
    /// let m = StandardEventModel::periodic(Time::new(100))?.shared();
    /// assert_eq!(m.eta_plus(Time::new(100)), 1);
    /// # Ok::<(), hem_event_models::ModelError>(())
    /// ```
    fn shared(self) -> ModelRef {
        Arc::new(self)
    }
}

impl<T: EventModel + Sized + 'static> EventModelExt for T {}

/// Verifies the [`EventModel`] contract on the prefix `n ∈ [0, up_to]`.
///
/// Checks monotonicity of `δ⁻`/`δ⁺`, non-negativity, `δ⁻ ≤ δ⁺`, and zero
/// at `n ≤ 1`. These must hold for every model, exact or approximate.
///
/// *Exact* distance functions additionally satisfy super-additivity of
/// `δ⁻`; use [`check_super_additivity`] for that — derived conservative
/// bounds (e.g. the paper's inner update function, Def. 9) may violate it
/// without being unsound.
///
/// # Errors
///
/// Returns the first violated property as a [`ModelError::Inconsistent`].
pub fn check_consistency(model: &dyn EventModel, up_to: u64) -> Result<(), ModelError> {
    if model.delta_min(0) != Time::ZERO
        || model.delta_min(1) != Time::ZERO
        || model.delta_plus(0) != TimeBound::ZERO
        || model.delta_plus(1) != TimeBound::ZERO
    {
        return Err(ModelError::inconsistent("δ(n) must be zero for n ≤ 1"));
    }
    let mut prev_min = Time::ZERO;
    let mut prev_plus = TimeBound::ZERO;
    for n in 2..=up_to {
        let dmin = model.delta_min(n);
        let dplus = model.delta_plus(n);
        if dmin.is_negative() {
            return Err(ModelError::inconsistent(format!("δ⁻({n}) is negative")));
        }
        if dmin < prev_min {
            return Err(ModelError::inconsistent(format!(
                "δ⁻ not monotone at n = {n}"
            )));
        }
        if dplus < prev_plus {
            return Err(ModelError::inconsistent(format!(
                "δ⁺ not monotone at n = {n}"
            )));
        }
        if TimeBound::from(dmin) > dplus {
            return Err(ModelError::inconsistent(format!("δ⁻({n}) exceeds δ⁺({n})")));
        }
        prev_min = dmin;
        prev_plus = dplus;
    }
    Ok(())
}

/// Verifies super-additivity of `δ⁻` on the prefix:
/// `δ⁻(a + b − 1) ≥ δ⁻(a) + δ⁻(b)`.
///
/// Every *exact* distance function satisfies this (spanning `a + b − 1`
/// events contains back-to-back spans of `a` and `b` events sharing one
/// boundary event). Conservative approximations may not.
///
/// # Errors
///
/// Returns the first violated pair as a [`ModelError::Inconsistent`].
pub fn check_super_additivity(model: &dyn EventModel, up_to: u64) -> Result<(), ModelError> {
    for a in 2..=up_to {
        for b in 2..=up_to {
            let joined = a + b - 1;
            if joined > up_to {
                break;
            }
            if model.delta_min(joined) < model.delta_min(a) + model.delta_min(b) {
                return Err(ModelError::inconsistent(format!(
                    "δ⁻ not super-additive at ({a}, {b})"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_accepts_standard_model() {
        let m = StandardEventModel::new(Time::new(100), Time::new(30), Time::new(5)).unwrap();
        check_consistency(&m, 50).unwrap();
        check_super_additivity(&m, 50).unwrap();
    }

    #[test]
    fn consistency_rejects_decreasing_curve() {
        #[derive(Debug)]
        struct Broken;
        impl EventModel for Broken {
            fn delta_min(&self, n: u64) -> Time {
                match n {
                    0 | 1 => Time::ZERO,
                    2 => Time::new(10),
                    _ => Time::new(5), // decreasing: invalid
                }
            }
            fn delta_plus(&self, n: u64) -> TimeBound {
                if n <= 1 {
                    TimeBound::ZERO
                } else {
                    TimeBound::INFINITE
                }
            }
        }
        assert!(check_consistency(&Broken, 5).is_err());
    }

    #[test]
    fn consistency_rejects_delta_min_above_delta_plus() {
        #[derive(Debug)]
        struct Crossed;
        impl EventModel for Crossed {
            fn delta_min(&self, n: u64) -> Time {
                if n <= 1 {
                    Time::ZERO
                } else {
                    Time::new(100) * (n as i64 - 1)
                }
            }
            fn delta_plus(&self, n: u64) -> TimeBound {
                if n <= 1 {
                    TimeBound::ZERO
                } else {
                    TimeBound::finite(50) * (n as i64 - 1)
                }
            }
        }
        assert!(check_consistency(&Crossed, 5).is_err());
    }

    #[test]
    fn model_ref_delegates() {
        let m: ModelRef = StandardEventModel::periodic(Time::new(10))
            .unwrap()
            .shared();
        assert_eq!(m.delta_min(3), Time::new(20));
        assert_eq!(m.delta_plus(3), TimeBound::finite(20));
        assert_eq!(m.eta_plus(Time::new(25)), 3);
        assert_eq!(m.eta_minus(Time::new(25)), 2);
        assert_eq!(m.max_simultaneous(), 1);
    }
}
