//! Helpers for tabulating event-model functions (used by the figure
//! harnesses and by validation tests).

use hem_time::{Time, TimeBound};

use crate::EventModel;

/// One step of an `η⁺` staircase: for windows `Δt ≥ at`, at least `count`
/// events are admitted (until the next step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EtaStep {
    /// Smallest window length at which the staircase reaches `count`.
    pub at: Time,
    /// The `η⁺` value from `at` (inclusive) onwards.
    pub count: u64,
}

/// The exact breakpoints of `η⁺(Δt)` for `Δt ∈ (0, up_to]`.
///
/// `η⁺` is a right-continuous staircase; it jumps to value `n` at
/// `Δt = δ⁻(n) + 1`. This enumerates the jumps directly from `δ⁻` instead
/// of scanning every window length — exactly what's needed to plot the
/// paper's Figure 4.
///
/// # Examples
///
/// ```
/// use hem_event_models::{sampling, StandardEventModel};
/// use hem_time::Time;
///
/// let m = StandardEventModel::periodic(Time::new(100))?;
/// let steps = sampling::eta_plus_steps(&m, Time::new(250));
/// let pts: Vec<(i64, u64)> = steps.iter().map(|s| (s.at.ticks(), s.count)).collect();
/// assert_eq!(pts, vec![(1, 1), (101, 2), (201, 3)]);
/// # Ok::<(), hem_event_models::ModelError>(())
/// ```
#[must_use]
pub fn eta_plus_steps(model: &dyn EventModel, up_to: Time) -> Vec<EtaStep> {
    let mut steps = Vec::new();
    if up_to < Time::ONE {
        return steps;
    }
    let mut n = 1u64;
    loop {
        let at = model.delta_min(n) + Time::ONE;
        if at > up_to {
            break;
        }
        // Simultaneous arrivals share a breakpoint: keep the largest count.
        let count = {
            // Advance n while the next δ⁻ is identical.
            let mut top = n;
            while model.delta_min(top + 1) + Time::ONE == at {
                top += 1;
            }
            top
        };
        steps.push(EtaStep { at, count });
        n = count + 1;
    }
    steps
}

/// The exact breakpoints of `η⁻(Δt)` for `Δt ∈ (0, up_to]`.
///
/// `η⁻` jumps to value `n` at `Δt = δ⁺(n + 1)` (eq. (2) pseudo-inverse);
/// streams without arrival guarantees (`δ⁺(2) = ∞`) yield an empty
/// staircase.
#[must_use]
pub fn eta_minus_steps(model: &dyn EventModel, up_to: Time) -> Vec<EtaStep> {
    let mut steps = Vec::new();
    if up_to < Time::ONE {
        return steps;
    }
    let mut n = 1u64;
    while let TimeBound::Finite(at) = model.delta_plus(n + 1) {
        if at > up_to {
            break;
        }
        // Simultaneous guarantee jumps share a breakpoint.
        let count = {
            let mut top = n;
            while model.delta_plus(top + 2) == TimeBound::Finite(at) {
                top += 1;
            }
            top
        };
        if at >= Time::ONE {
            steps.push(EtaStep { at, count });
        }
        n = count + 1;
    }
    steps
}

/// Samples `η⁺(Δt)` on a regular grid `Δt = step, 2·step, …, up_to`.
///
/// # Panics
///
/// Panics if `step < 1`.
#[must_use]
pub fn eta_plus_series(model: &dyn EventModel, up_to: Time, step: Time) -> Vec<(Time, u64)> {
    assert!(step >= Time::ONE, "sampling step must be at least one tick");
    let mut out = Vec::new();
    let mut dt = step;
    while dt <= up_to {
        out.push((dt, model.eta_plus(dt)));
        dt += step;
    }
    out
}

/// Tabulates `δ⁻(n)` and `δ⁺(n)` for `n ∈ [2, n_max]`.
#[must_use]
pub fn delta_table(model: &dyn EventModel, n_max: u64) -> Vec<(u64, Time, TimeBound)> {
    (2..=n_max)
        .map(|n| (n, model.delta_min(n), model.delta_plus(n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OrJoin;
    use crate::{EventModelExt, StandardEventModel};

    #[test]
    fn steps_match_pointwise_eta() {
        let m = StandardEventModel::periodic_with_jitter(Time::new(100), Time::new(30)).unwrap();
        let steps = eta_plus_steps(&m, Time::new(1000));
        // Reconstruct η⁺ from the staircase and compare pointwise.
        for dt in 1..=1000i64 {
            let dt = Time::new(dt);
            let from_steps = steps
                .iter()
                .rev()
                .find(|s| s.at <= dt)
                .map_or(0, |s| s.count);
            assert_eq!(from_steps, m.eta_plus(dt), "Δt = {dt}");
        }
    }

    #[test]
    fn simultaneous_arrivals_merge_into_one_step() {
        let a = StandardEventModel::periodic(Time::new(100))
            .unwrap()
            .shared();
        let b = StandardEventModel::periodic(Time::new(100))
            .unwrap()
            .shared();
        let or = OrJoin::new(vec![a, b]).unwrap();
        let steps = eta_plus_steps(&or, Time::new(150));
        assert_eq!(steps.len(), 2);
        assert_eq!(
            steps[0],
            EtaStep {
                at: Time::new(1),
                count: 2
            }
        );
        assert_eq!(
            steps[1],
            EtaStep {
                at: Time::new(101),
                count: 4
            }
        );
    }

    #[test]
    fn eta_minus_steps_match_pointwise() {
        let m = StandardEventModel::periodic_with_jitter(Time::new(100), Time::new(30)).unwrap();
        let steps = eta_minus_steps(&m, Time::new(1_000));
        for dt in 1..=1_000i64 {
            let dt = Time::new(dt);
            let from_steps = steps
                .iter()
                .rev()
                .find(|s| s.at <= dt)
                .map_or(0, |s| s.count);
            assert_eq!(from_steps, m.eta_minus(dt), "Δt = {dt}");
        }
    }

    #[test]
    fn eta_minus_steps_empty_for_sporadic() {
        use crate::SporadicModel;
        let sp = SporadicModel::new(Time::new(50)).unwrap();
        assert!(eta_minus_steps(&sp, Time::new(100_000)).is_empty());
    }

    #[test]
    fn series_grid() {
        let m = StandardEventModel::periodic(Time::new(100)).unwrap();
        let series = eta_plus_series(&m, Time::new(300), Time::new(100));
        assert_eq!(
            series,
            vec![
                (Time::new(100), 1),
                (Time::new(200), 2),
                (Time::new(300), 3),
            ]
        );
    }

    #[test]
    fn delta_table_contents() {
        let m = StandardEventModel::periodic(Time::new(50)).unwrap();
        let t = delta_table(&m, 4);
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].0, 2);
        assert_eq!(t[0].1, Time::new(50));
        assert_eq!(t[2].2, TimeBound::finite(150));
    }

    #[test]
    fn empty_ranges() {
        let m = StandardEventModel::periodic(Time::new(50)).unwrap();
        assert!(eta_plus_steps(&m, Time::ZERO).is_empty());
        assert!(eta_plus_series(&m, Time::ZERO, Time::ONE).is_empty());
    }
}
