//! Periodic burst event model.

use hem_time::{Time, TimeBound};

use crate::{AnalyticCurve, EventModel, ModelError};

/// A deterministic periodic burst pattern: every `period`, a burst of
/// `burst` events spaced `inner_distance` apart.
///
/// Bursts are how packetized producers (DMA transfers, fragmented
/// messages, multi-sample sensor reads) appear at a resource. The
/// pattern is deterministic up to phase, so `δ⁻` and `δ⁺` are the
/// min/max over the burst offset at which a window may start:
///
/// ```text
/// span(o, n) = ⌊(o+n−1)/b⌋·P + ((o+n−1) mod b − o)·d
/// δ⁻(n) = min_{o<b} span(o, n),   δ⁺(n) = max_{o<b} span(o, n)
/// ```
///
/// # Examples
///
/// ```
/// use hem_event_models::{EventModel, PeriodicBurstModel};
/// use hem_time::{Time, TimeBound};
///
/// // Pairs of events 1 tick apart, every 100 ticks.
/// let m = PeriodicBurstModel::new(Time::new(100), 2, Time::new(1))?;
/// assert_eq!(m.delta_min(2), Time::new(1));    // within a burst
/// assert_eq!(m.delta_plus(2), TimeBound::finite(99)); // across bursts
/// assert_eq!(m.eta_plus(Time::new(102)), 4);   // two full bursts
/// # Ok::<(), hem_event_models::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeriodicBurstModel {
    period: Time,
    burst: u64,
    inner_distance: Time,
}

impl PeriodicBurstModel {
    /// Creates a burst model.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] unless `period ≥ 1`,
    /// `burst ≥ 1`, `inner_distance ≥ 0`, and the burst fits into one
    /// period (`(burst − 1) · inner_distance < period`).
    pub fn new(period: Time, burst: u64, inner_distance: Time) -> Result<Self, ModelError> {
        if period < Time::ONE {
            return Err(ModelError::invalid("burst period must be positive"));
        }
        if burst == 0 {
            return Err(ModelError::invalid("burst size must be at least one"));
        }
        if inner_distance.is_negative() {
            return Err(ModelError::invalid("inner distance must be non-negative"));
        }
        if inner_distance * (burst as i64 - 1) >= period {
            return Err(ModelError::invalid(format!(
                "burst of {burst} events spaced {inner_distance} does not fit into period {period}"
            )));
        }
        Ok(PeriodicBurstModel {
            period,
            burst,
            inner_distance,
        })
    }

    /// The outer burst period `P`.
    #[must_use]
    pub fn period(&self) -> Time {
        self.period
    }

    /// Events per burst `b`.
    #[must_use]
    pub fn burst(&self) -> u64 {
        self.burst
    }

    /// Distance between events within a burst `d`.
    #[must_use]
    pub fn inner_distance(&self) -> Time {
        self.inner_distance
    }

    /// Span of `n` consecutive events starting at burst offset `o`.
    fn span(&self, o: u64, n: u64) -> Time {
        let end = o + n - 1;
        let periods = (end / self.burst) as i64;
        let end_offset = (end % self.burst) as i64;
        self.period * periods + self.inner_distance * (end_offset - o as i64)
    }

    fn extremal_span(&self, n: u64, max: bool) -> Time {
        let spans = (0..self.burst).map(|o| self.span(o, n));
        if max {
            spans.max().expect("burst ≥ 1")
        } else {
            spans.min().expect("burst ≥ 1")
        }
    }
}

impl EventModel for PeriodicBurstModel {
    fn delta_min(&self, n: u64) -> Time {
        if n <= 1 {
            Time::ZERO
        } else {
            self.extremal_span(n, false)
        }
    }

    fn delta_plus(&self, n: u64) -> TimeBound {
        if n <= 1 {
            TimeBound::ZERO
        } else {
            TimeBound::Finite(self.extremal_span(n, true))
        }
    }

    fn max_simultaneous(&self) -> u64 {
        if self.inner_distance.is_zero() {
            self.burst
        } else {
            1
        }
    }

    fn analytic(&self) -> Option<AnalyticCurve> {
        AnalyticCurve::periodic_burst(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_consistency, check_super_additivity, CurveBuilder};

    #[test]
    fn degenerates_to_periodic_for_burst_one() {
        let m = PeriodicBurstModel::new(Time::new(250), 1, Time::ZERO).unwrap();
        for n in 2..=10u64 {
            assert_eq!(m.delta_min(n), Time::new(250) * (n as i64 - 1));
            assert_eq!(m.delta_plus(n), TimeBound::finite(250 * (n as i64 - 1)));
        }
        assert_eq!(m.max_simultaneous(), 1);
    }

    #[test]
    fn matches_hand_built_curve() {
        // Same pattern as the curve-model example: pairs 1 tick apart
        // every 100.
        let m = PeriodicBurstModel::new(Time::new(100), 2, Time::new(1)).unwrap();
        let curve = CurveBuilder::new()
            .delta_min_ticks([1, 100, 101])
            .delta_plus_ticks([99, 100, 199])
            .extension(2, Time::new(100))
            .build()
            .unwrap();
        for n in 0..=12u64 {
            assert_eq!(m.delta_min(n), curve.delta_min(n), "δ⁻({n})");
            assert_eq!(m.delta_plus(n), curve.delta_plus(n), "δ⁺({n})");
        }
    }

    #[test]
    fn simultaneous_burst() {
        let m = PeriodicBurstModel::new(Time::new(500), 3, Time::ZERO).unwrap();
        assert_eq!(m.delta_min(3), Time::ZERO);
        assert_eq!(m.delta_min(4), Time::new(500));
        assert_eq!(m.max_simultaneous(), 3);
        assert_eq!(m.eta_plus(Time::new(1)), 3);
    }

    #[test]
    fn is_consistent_and_super_additive() {
        for (p, b, d) in [(100, 2, 1), (500, 3, 0), (1000, 4, 50), (70, 7, 9)] {
            let m = PeriodicBurstModel::new(Time::new(p), b, Time::new(d)).unwrap();
            check_consistency(&m, 30).unwrap();
            check_super_additivity(&m, 30).unwrap();
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(PeriodicBurstModel::new(Time::ZERO, 1, Time::ZERO).is_err());
        assert!(PeriodicBurstModel::new(Time::new(100), 0, Time::ZERO).is_err());
        assert!(PeriodicBurstModel::new(Time::new(100), 2, Time::new(-1)).is_err());
        // Burst spills over the period.
        assert!(PeriodicBurstModel::new(Time::new(100), 3, Time::new(50)).is_err());
    }

    #[test]
    fn accessors() {
        let m = PeriodicBurstModel::new(Time::new(100), 2, Time::new(5)).unwrap();
        assert_eq!(m.period(), Time::new(100));
        assert_eq!(m.burst(), 2);
        assert_eq!(m.inner_distance(), Time::new(5));
    }
}
