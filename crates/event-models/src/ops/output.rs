//! The output-stream operation `Θ_τ` (paper §3).

use std::sync::Mutex;

use hem_time::{Time, TimeBound};

use crate::{AnalyticCurve, EventModel, ModelError, ModelRef};

/// The output event stream of a task with response times `[r⁻, r⁺]`.
///
/// Processing by an analysed task turns the activating input stream into
/// an output stream whose distances the paper gives as
///
/// ```text
/// δ'⁻(n) = max( δ_in⁻(n) − (r⁺ − r⁻),  δ'⁻(n−1) + r⁻ )
/// δ'⁺(n) = δ_in⁺(n) + (r⁺ − r⁻)
/// ```
///
/// — the response-time jitter `r⁺ − r⁻` compresses minimum distances (up
/// to the back-to-back completion separation `r⁻`) and stretches maximum
/// distances. The recursion is memoized internally so repeated queries are
/// amortized O(1).
///
/// For standard event models the closed form
/// [`StandardEventModel::propagated`](crate::StandardEventModel::propagated)
/// produces the classic `(P, J + r⁺ − r⁻, max(d, r⁻))` result; this
/// generic operation matches it and also applies to arbitrary curves.
///
/// # Examples
///
/// ```
/// use hem_event_models::{EventModel, EventModelExt, StandardEventModel};
/// use hem_event_models::ops::OutputModel;
/// use hem_time::Time;
///
/// let input = StandardEventModel::periodic(Time::new(250))?.shared();
/// let out = OutputModel::new(input, Time::new(10), Time::new(60))?;
/// assert_eq!(out.delta_min(2), Time::new(200)); // 250 − 50 jitter
/// # Ok::<(), hem_event_models::ModelError>(())
/// ```
#[derive(Debug)]
pub struct OutputModel {
    input: ModelRef,
    r_minus: Time,
    r_plus: Time,
    /// Memo for the δ'⁻ recursion; `memo[n]` holds δ'⁻(n), seeded for
    /// n = 0, 1.
    memo: Mutex<Vec<Time>>,
}

impl OutputModel {
    /// Creates the output model of a task processing `input` with
    /// response times in `[r_minus, r_plus]`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] unless
    /// `0 ≤ r_minus ≤ r_plus`.
    pub fn new(input: ModelRef, r_minus: Time, r_plus: Time) -> Result<Self, ModelError> {
        if r_minus.is_negative() || r_minus > r_plus {
            return Err(ModelError::invalid(format!(
                "response interval must satisfy 0 ≤ r⁻ ≤ r⁺, got [{r_minus}, {r_plus}]"
            )));
        }
        Ok(OutputModel {
            input,
            r_minus,
            r_plus,
            memo: Mutex::new(vec![Time::ZERO, Time::ZERO]),
        })
    }

    /// The response-time jitter `r⁺ − r⁻` added by the task.
    #[must_use]
    pub fn response_jitter(&self) -> Time {
        self.r_plus - self.r_minus
    }

    /// The minimum response time `r⁻`.
    #[must_use]
    pub fn r_minus(&self) -> Time {
        self.r_minus
    }

    /// The maximum response time `r⁺`.
    #[must_use]
    pub fn r_plus(&self) -> Time {
        self.r_plus
    }
}

impl EventModel for OutputModel {
    fn delta_min(&self, n: u64) -> Time {
        if n <= 1 {
            return Time::ZERO;
        }
        let jitter = self.response_jitter();
        let mut memo = self.memo.lock().expect("memo poisoned");
        while (memo.len() as u64) <= n {
            let k = memo.len() as u64;
            let prev = *memo.last().expect("memo seeded");
            let v = (self.input.delta_min(k) - jitter)
                .max(prev + self.r_minus)
                .clamp_non_negative();
            memo.push(v);
        }
        memo[n as usize]
    }

    fn delta_plus(&self, n: u64) -> TimeBound {
        if n <= 1 {
            return TimeBound::ZERO;
        }
        // The serialization floor of δ'⁻ also lifts the maximum distance:
        // when completions are spread at least r⁻ apart, the n-th output
        // is at least (n−1)·r⁻ after the first. Taking the max keeps the
        // model internally consistent even for response intervals that
        // the input rate cannot actually sustain.
        (self.input.delta_plus(n) + self.response_jitter()).max(self.delta_min(n).into())
    }

    fn analytic(&self) -> Option<AnalyticCurve> {
        self.input.analytic()?.output(self.r_minus, self.r_plus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventModelExt, SporadicModel, StandardEventModel};

    #[test]
    fn matches_sem_closed_form() {
        let sem = StandardEventModel::periodic_with_jitter(Time::new(250), Time::new(30)).unwrap();
        let closed = sem.propagated(Time::new(10), Time::new(80)).unwrap();
        let generic = OutputModel::new(sem.shared(), Time::new(10), Time::new(80)).unwrap();
        for n in 0..=30u64 {
            assert_eq!(generic.delta_min(n), closed.delta_min(n), "δ⁻({n})");
            assert_eq!(generic.delta_plus(n), closed.delta_plus(n), "δ⁺({n})");
        }
    }

    #[test]
    fn zero_jitter_task_preserves_distances() {
        let sem = StandardEventModel::periodic(Time::new(100)).unwrap();
        let out = OutputModel::new(sem.shared(), Time::new(20), Time::new(20)).unwrap();
        for n in 2..=10u64 {
            assert_eq!(out.delta_min(n), sem.delta_min(n));
            assert_eq!(out.delta_plus(n), sem.delta_plus(n));
        }
    }

    #[test]
    fn back_to_back_floor_applies() {
        // Input arrives in bursts (δ⁻ = 0); outputs are separated by at
        // least r⁻ each.
        let burst = StandardEventModel::periodic_with_jitter(Time::new(100), Time::new(300))
            .unwrap()
            .shared();
        let out = OutputModel::new(burst, Time::new(7), Time::new(9)).unwrap();
        assert_eq!(out.delta_min(2), Time::new(7));
        assert_eq!(out.delta_min(3), Time::new(14));
        assert_eq!(out.delta_min(4), Time::new(21));
    }

    #[test]
    fn delta_plus_shifts_by_jitter() {
        let sem = StandardEventModel::periodic(Time::new(100))
            .unwrap()
            .shared();
        let out = OutputModel::new(sem, Time::new(5), Time::new(45)).unwrap();
        assert_eq!(out.delta_plus(2), TimeBound::finite(140));
        assert_eq!(out.delta_plus(5), TimeBound::finite(440));
        assert_eq!(out.response_jitter(), Time::new(40));
        assert_eq!(out.r_minus(), Time::new(5));
        assert_eq!(out.r_plus(), Time::new(45));
    }

    #[test]
    fn infinite_delta_plus_stays_infinite() {
        let sp = SporadicModel::new(Time::new(50)).unwrap().shared();
        let out = OutputModel::new(sp, Time::ZERO, Time::new(10)).unwrap();
        assert_eq!(out.delta_plus(2), TimeBound::Infinite);
    }

    #[test]
    fn rejects_invalid_response_interval() {
        let sem = StandardEventModel::periodic(Time::new(100))
            .unwrap()
            .shared();
        assert!(OutputModel::new(sem.clone(), Time::new(20), Time::new(10)).is_err());
        assert!(OutputModel::new(sem, Time::new(-1), Time::new(10)).is_err());
    }

    #[test]
    fn memoization_is_order_independent() {
        let sem = StandardEventModel::periodic_with_jitter(Time::new(100), Time::new(60))
            .unwrap()
            .shared();
        let a = OutputModel::new(sem.clone(), Time::new(5), Time::new(25)).unwrap();
        let b = OutputModel::new(sem, Time::new(5), Time::new(25)).unwrap();
        // Query a high n first on one instance, low-to-high on the other.
        let high_first = a.delta_min(20);
        for n in 2..=20u64 {
            assert_eq!(a.delta_min(n), b.delta_min(n), "δ'⁻({n})");
        }
        assert_eq!(high_first, b.delta_min(20));
    }
}
