//! Greedy minimum-distance shaper.

use hem_time::{Time, TimeBound};

use crate::{AnalyticCurve, EventModel, ModelError, ModelRef};

/// A greedy shaper that enforces a minimum distance `d` between events.
///
/// Shapers are used to decouple interference (paper §3 mentions them as
/// another stream operation alongside `Θ_τ`): a burst at the input is
/// spread out so consecutive output events are at least `d` apart, while
/// events already spaced wider pass through unchanged:
///
/// ```text
/// δ'⁻(n) = max( δ_in⁻(n), (n−1)·d )
/// δ'⁺(n) = max( δ_in⁺(n), (n−1)·d )
/// ```
///
/// (a delayed burst may also *stretch* maximum distances up to the shaping
/// grid, hence the `max` in `δ'⁺`).
///
/// # Examples
///
/// ```
/// use hem_event_models::{EventModel, EventModelExt, StandardEventModel};
/// use hem_event_models::ops::DminShaper;
/// use hem_time::Time;
///
/// let bursty = StandardEventModel::periodic_with_jitter(Time::new(100), Time::new(500))?.shared();
/// let shaped = DminShaper::new(bursty, Time::new(20))?;
/// assert_eq!(shaped.delta_min(2), Time::new(20));
/// # Ok::<(), hem_event_models::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DminShaper {
    input: ModelRef,
    dmin: Time,
}

impl DminShaper {
    /// Creates a shaper enforcing minimum distance `dmin` on `input`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `dmin < 0`.
    pub fn new(input: ModelRef, dmin: Time) -> Result<Self, ModelError> {
        if dmin.is_negative() {
            return Err(ModelError::invalid(format!(
                "shaper distance must be non-negative, got {dmin}"
            )));
        }
        Ok(DminShaper { input, dmin })
    }

    /// The enforced minimum distance.
    #[must_use]
    pub fn dmin(&self) -> Time {
        self.dmin
    }
}

impl EventModel for DminShaper {
    fn delta_min(&self, n: u64) -> Time {
        if n <= 1 {
            return Time::ZERO;
        }
        self.input.delta_min(n).max(self.dmin * (n as i64 - 1))
    }

    fn delta_plus(&self, n: u64) -> TimeBound {
        if n <= 1 {
            return TimeBound::ZERO;
        }
        self.input
            .delta_plus(n)
            .max(TimeBound::Finite(self.dmin * (n as i64 - 1)))
    }

    fn analytic(&self) -> Option<AnalyticCurve> {
        self.input.analytic()?.shaped(self.dmin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventModelExt, StandardEventModel};

    #[test]
    fn spreads_bursts() {
        let bursty = StandardEventModel::periodic_with_jitter(Time::new(100), Time::new(500))
            .unwrap()
            .shared();
        let shaped = DminShaper::new(bursty.clone(), Time::new(20)).unwrap();
        assert_eq!(bursty.delta_min(2), Time::ZERO);
        assert_eq!(shaped.delta_min(2), Time::new(20));
        assert_eq!(shaped.delta_min(4), Time::new(60));
        assert_eq!(shaped.max_simultaneous(), 1);
        assert_eq!(shaped.dmin(), Time::new(20));
    }

    #[test]
    fn wide_streams_pass_through() {
        let slow = StandardEventModel::periodic(Time::new(1000))
            .unwrap()
            .shared();
        let shaped = DminShaper::new(slow.clone(), Time::new(20)).unwrap();
        for n in 2..=6u64 {
            assert_eq!(shaped.delta_min(n), slow.delta_min(n));
            assert_eq!(shaped.delta_plus(n), slow.delta_plus(n));
        }
    }

    #[test]
    fn eta_plus_capped_by_shaping() {
        let bursty = StandardEventModel::periodic_with_jitter(Time::new(100), Time::new(500))
            .unwrap()
            .shared();
        let shaped = DminShaper::new(bursty, Time::new(20)).unwrap();
        // Within a 41-tick window at most 3 events survive the shaper.
        assert_eq!(shaped.eta_plus(Time::new(41)), 3);
    }

    #[test]
    fn rejects_negative_distance() {
        let m = StandardEventModel::periodic(Time::new(100))
            .unwrap()
            .shared();
        assert!(DminShaper::new(m, Time::new(-1)).is_err());
    }
}
