//! Stream operations: combinations of event streams and output-model
//! calculation.
//!
//! In the CPA system model (paper §3, Def. 2), a *stream operation* maps
//! input event-stream function tuples to output tuples. This module
//! provides:
//!
//! * [`OrJoin`] — OR-activation combination (paper eqs. (3),(4)),
//! * [`AndJoin`] — AND-activation combination,
//! * [`OutputModel`] — the task output-stream operation `Θ_τ`,
//! * [`DminShaper`] — a greedy minimum-distance shaper.
//!
//! All operations are lazy event models themselves: they implement
//! [`EventModel`](crate::EventModel) by querying their inputs on demand,
//! so chains of operations compose without materialization. Use
//! [`CurveModel::sample`](crate::CurveModel::sample) to freeze a deep
//! chain into an explicit curve when query cost matters.

mod and;
mod closure;
mod or;
mod output;
mod shaper;

pub use and::AndJoin;
pub use closure::AdditiveClosure;
pub use or::OrJoin;
pub use output::OutputModel;
pub use shaper::DminShaper;
