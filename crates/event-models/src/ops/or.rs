//! OR-activation combination of event streams (paper eqs. (3),(4)).

use hem_time::{Time, TimeBound};

use crate::{convert, AnalyticCurve, EventModel, ModelError, ModelRef};

/// The OR-combination of several event streams.
///
/// A task activated by *any* event of its inputs sees the union stream.
/// The paper gives its distance functions as minima/maxima over
/// *contribution vectors* `K = (k₁ … k_m)`, `Σkᵢ = n`:
///
/// ```text
/// δ_or⁻(n) = min over K of  maxᵢ δᵢ⁻(kᵢ)            (3)
/// δ_or⁺(n) = max over K (Σkᵢ = n−2) of minᵢ δᵢ⁺(kᵢ+2)   (4)
/// ```
///
/// Enumerating contribution vectors is exponential; the paper's own proof
/// shows eq. (3) equals the smallest window admitting
/// `n = Σᵢ ηᵢ⁺(Δt)` events and eq. (4) the largest window guaranteeing at
/// most `n − 2`, so this type computes both by inverting the *summed*
/// arrival functions (see [`convert`]) — exact and polynomial.
///
/// # Examples
///
/// ```
/// use hem_event_models::{EventModel, EventModelExt, StandardEventModel};
/// use hem_event_models::ops::OrJoin;
/// use hem_time::Time;
///
/// let a = StandardEventModel::periodic(Time::new(100))?.shared();
/// let b = StandardEventModel::periodic(Time::new(150))?.shared();
/// let or = OrJoin::new(vec![a, b])?;
/// // Both streams may fire together: δ⁻(2) = 0.
/// assert_eq!(or.delta_min(2), Time::ZERO);
/// // Combined max arrivals add up.
/// assert_eq!(or.eta_plus(Time::new(300)), 3 + 2);
/// # Ok::<(), hem_event_models::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OrJoin {
    inputs: Vec<ModelRef>,
}

impl OrJoin {
    /// Combines the given input streams.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `inputs` is empty.
    pub fn new(inputs: Vec<ModelRef>) -> Result<Self, ModelError> {
        if inputs.is_empty() {
            return Err(ModelError::invalid(
                "OR-combination requires at least one input stream",
            ));
        }
        Ok(OrJoin { inputs })
    }

    /// The combined input streams.
    #[must_use]
    pub fn inputs(&self) -> &[ModelRef] {
        &self.inputs
    }
}

impl EventModel for OrJoin {
    fn delta_min(&self, n: u64) -> Time {
        if n <= 1 {
            return Time::ZERO;
        }
        // Placing all n events on a single input is one admissible
        // contribution vector, so minᵢ δᵢ⁻(n) bounds the result from above.
        let ub = self
            .inputs
            .iter()
            .map(|m| m.delta_min(n))
            .min()
            .expect("non-empty inputs")
            + Time::ONE;
        convert::delta_min_from_eta_plus(&|dt| self.eta_plus(dt), n, ub)
    }

    fn delta_plus(&self, n: u64) -> TimeBound {
        if n <= 1 {
            return TimeBound::ZERO;
        }
        convert::delta_plus_from_eta_minus(&|dt| self.eta_minus(dt), n)
    }

    fn eta_plus(&self, dt: Time) -> u64 {
        self.inputs.iter().map(|m| m.eta_plus(dt)).sum()
    }

    fn eta_minus(&self, dt: Time) -> u64 {
        self.inputs.iter().map(|m| m.eta_minus(dt)).sum()
    }

    fn analytic(&self) -> Option<AnalyticCurve> {
        let children: Vec<AnalyticCurve> = self
            .inputs
            .iter()
            .map(|m| m.analytic())
            .collect::<Option<_>>()?;
        AnalyticCurve::or_join(&children)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventModelExt, SporadicModel, StandardEventModel};

    /// Reference implementation of eq. (3): direct minimization over all
    /// contribution vectors for two inputs.
    fn delta_min_reference(a: &dyn EventModel, b: &dyn EventModel, n: u64) -> Time {
        (0..=n)
            .map(|ka| a.delta_min(ka).max(b.delta_min(n - ka)))
            .min()
            .expect("non-empty range")
    }

    /// Reference implementation of eq. (4) for two inputs.
    fn delta_plus_reference(a: &dyn EventModel, b: &dyn EventModel, n: u64) -> TimeBound {
        if n < 2 {
            return TimeBound::ZERO;
        }
        (0..=(n - 2))
            .map(|ka| a.delta_plus(ka + 2).min(b.delta_plus(n - 2 - ka + 2)))
            .max()
            .expect("non-empty range")
    }

    #[test]
    fn matches_contribution_vector_reference() {
        let a = StandardEventModel::periodic_with_jitter(Time::new(250), Time::new(30)).unwrap();
        let b = StandardEventModel::periodic(Time::new(400)).unwrap();
        let or = OrJoin::new(vec![a.shared(), b.shared()]).unwrap();
        for n in 2..=12u64 {
            assert_eq!(
                or.delta_min(n),
                delta_min_reference(&a, &b, n),
                "δ⁻({n}) mismatch"
            );
            assert_eq!(
                or.delta_plus(n),
                delta_plus_reference(&a, &b, n),
                "δ⁺({n}) mismatch"
            );
        }
    }

    #[test]
    fn matches_reference_with_sporadic_input() {
        let a = StandardEventModel::periodic(Time::new(100)).unwrap();
        let b = SporadicModel::new(Time::new(70)).unwrap();
        let or = OrJoin::new(vec![a.shared(), b.shared()]).unwrap();
        for n in 2..=10u64 {
            assert_eq!(or.delta_min(n), delta_min_reference(&a, &b, n), "δ⁻({n})");
            assert_eq!(or.delta_plus(n), delta_plus_reference(&a, &b, n), "δ⁺({n})");
        }
        // The sporadic stream contributes no guaranteed arrivals, but the
        // periodic one does: δ⁺ stays finite.
        assert!(or.delta_plus(5).is_finite());
    }

    #[test]
    fn all_sporadic_inputs_give_unbounded_delta_plus() {
        let a = SporadicModel::new(Time::new(50)).unwrap();
        let b = SporadicModel::new(Time::new(80)).unwrap();
        let or = OrJoin::new(vec![a.shared(), b.shared()]).unwrap();
        assert_eq!(or.delta_plus(2), TimeBound::Infinite);
        assert_eq!(or.eta_minus(Time::new(1_000_000)), 0);
    }

    #[test]
    fn eta_functions_sum() {
        let a = StandardEventModel::periodic(Time::new(100))
            .unwrap()
            .shared();
        let b = StandardEventModel::periodic(Time::new(150))
            .unwrap()
            .shared();
        let or = OrJoin::new(vec![a.clone(), b.clone()]).unwrap();
        for dt in [0i64, 1, 99, 100, 101, 149, 151, 300, 1000] {
            let dt = Time::new(dt);
            assert_eq!(or.eta_plus(dt), a.eta_plus(dt) + b.eta_plus(dt));
            assert_eq!(or.eta_minus(dt), a.eta_minus(dt) + b.eta_minus(dt));
        }
    }

    #[test]
    fn single_input_is_identity() {
        let a = StandardEventModel::periodic_with_jitter(Time::new(120), Time::new(20)).unwrap();
        let or = OrJoin::new(vec![a.shared()]).unwrap();
        for n in 0..=10u64 {
            assert_eq!(or.delta_min(n), a.delta_min(n));
            assert_eq!(or.delta_plus(n), a.delta_plus(n));
        }
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(OrJoin::new(vec![]).is_err());
    }

    #[test]
    fn simultaneous_arrivals_counted() {
        let a = StandardEventModel::periodic(Time::new(100))
            .unwrap()
            .shared();
        let b = StandardEventModel::periodic(Time::new(100))
            .unwrap()
            .shared();
        let c = StandardEventModel::periodic(Time::new(100))
            .unwrap()
            .shared();
        let or = OrJoin::new(vec![a, b, c]).unwrap();
        assert_eq!(or.delta_min(3), Time::ZERO);
        assert!(or.delta_min(4) > Time::ZERO);
        assert_eq!(or.max_simultaneous(), 3);
    }

    #[test]
    fn inputs_accessor() {
        let a = StandardEventModel::periodic(Time::new(100))
            .unwrap()
            .shared();
        let or = OrJoin::new(vec![a]).unwrap();
        assert_eq!(or.inputs().len(), 1);
    }
}
