//! Additive-closure tightening of conservative δ-curves.

use std::sync::Mutex;

use hem_time::{Time, TimeBound};

use crate::{EventModel, ModelRef};

/// Tightens a conservative model by additive closure.
///
/// Every *exact* distance function satisfies
///
/// ```text
/// δ⁻(n + m − 1) ≥ δ⁻(n) + δ⁻(m)      (super-additivity)
/// δ⁺(n + m − 1) ≤ δ⁺(n) + δ⁺(m)      (sub-additivity)
/// ```
///
/// (spanning `n + m − 1` events decomposes into back-to-back spans of
/// `n` and `m` events sharing a boundary event). Derived conservative
/// bounds — e.g. the paper's inner update function (Def. 9) — can
/// violate these, leaving slack on the table. The closure recovers it:
///
/// ```text
/// δ̂⁻(n) = max( δ⁻(n), max_{2 ≤ k < n} δ̂⁻(k) + δ̂⁻(n−k+1) )
/// δ̂⁺(n) = min( δ⁺(n), min_{2 ≤ k < n} δ̂⁺(k) + δ̂⁺(n−k+1) )
/// ```
///
/// If the input is a valid bound of a real stream, so is the closure
/// (induction over the same inequalities applied to the true stream),
/// and it is point-wise at least as tight. Results are memoized; the
/// closure of an already-exact model is the model itself.
///
/// # Examples
///
/// ```
/// use hem_event_models::ops::AdditiveClosure;
/// use hem_event_models::{CurveBuilder, EventModel, EventModelExt};
/// use hem_time::Time;
///
/// // A conservative curve with a dip at n = 4.
/// let loose = CurveBuilder::new()
///     .delta_min_ticks([100, 200, 220, 400])
///     .delta_plus_ticks([100, 200, 300, 400])
///     .extension(1, Time::new(100))
///     .build()?;
/// let tight = AdditiveClosure::new(loose.shared());
/// // δ⁻(4) lifts to δ̂⁻(2) + δ̂⁻(3) = 300.
/// assert_eq!(tight.delta_min(4), Time::new(300));
/// # Ok::<(), hem_event_models::ModelError>(())
/// ```
#[derive(Debug)]
pub struct AdditiveClosure {
    inner: ModelRef,
    dmin_memo: Mutex<Vec<Time>>,
    dplus_memo: Mutex<Vec<TimeBound>>,
}

impl AdditiveClosure {
    /// Wraps a model with additive-closure tightening.
    #[must_use]
    pub fn new(inner: ModelRef) -> Self {
        AdditiveClosure {
            inner,
            dmin_memo: Mutex::new(vec![Time::ZERO, Time::ZERO]),
            dplus_memo: Mutex::new(vec![TimeBound::ZERO, TimeBound::ZERO]),
        }
    }

    /// The wrapped model.
    #[must_use]
    pub fn inner(&self) -> &ModelRef {
        &self.inner
    }
}

impl EventModel for AdditiveClosure {
    fn delta_min(&self, n: u64) -> Time {
        if n <= 1 {
            return Time::ZERO;
        }
        let mut memo = self.dmin_memo.lock().expect("poisoned");
        while (memo.len() as u64) <= n {
            let m = memo.len() as u64;
            let mut best = self.inner.delta_min(m);
            for k in 2..m {
                // k and m−k+1 events sharing one boundary event.
                best = best.max(memo[k as usize] + memo[(m - k + 1) as usize]);
            }
            memo.push(best);
        }
        memo[n as usize]
    }

    fn delta_plus(&self, n: u64) -> TimeBound {
        if n <= 1 {
            return TimeBound::ZERO;
        }
        let mut memo = self.dplus_memo.lock().expect("poisoned");
        while (memo.len() as u64) <= n {
            let m = memo.len() as u64;
            let mut best = self.inner.delta_plus(m);
            for k in 2..m {
                best = best.min(memo[k as usize] + memo[(m - k + 1) as usize]);
            }
            memo.push(best);
        }
        memo[n as usize]
    }

    // The closure's fixed point has no general closed form (its
    // periodicity onset depends on the whole convolution structure), so
    // it deliberately stays on the generic memoized path: `analytic()`
    // keeps the default `None`. Closures only sit on the hot path when
    // `tighten_inner` is enabled, which is off by default.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        check_consistency, check_super_additivity, CurveBuilder, EventModelExt, StandardEventModel,
    };

    #[test]
    fn exact_models_are_fixed_points() {
        let sem = StandardEventModel::new(Time::new(100), Time::new(30), Time::new(10)).unwrap();
        let closed = AdditiveClosure::new(sem.shared());
        for n in 0..=30u64 {
            assert_eq!(closed.delta_min(n), sem.delta_min(n), "δ⁻({n})");
            assert_eq!(closed.delta_plus(n), sem.delta_plus(n), "δ⁺({n})");
        }
    }

    #[test]
    fn lifts_dips_in_delta_min() {
        let loose = CurveBuilder::new()
            .delta_min_ticks([100, 200, 220, 400])
            .delta_plus_ticks([100, 200, 300, 400])
            .extension(1, Time::new(100))
            .build()
            .unwrap();
        let tight = AdditiveClosure::new(loose.clone().shared());
        assert_eq!(loose.delta_min(4), Time::new(220));
        assert_eq!(tight.delta_min(4), Time::new(300)); // 100 + 200
                                                        // And the fix compounds: δ̂⁻(5) ≥ δ̂⁻(4) + δ̂⁻(2)... here the raw
                                                        // value 400 equals the combination 300 + 100.
        assert_eq!(tight.delta_min(5), Time::new(400));
        check_super_additivity(&tight, 20).unwrap();
        check_consistency(&tight, 20).unwrap();
    }

    #[test]
    fn caps_bulges_in_delta_plus() {
        // δ⁺(4) = 390 exceeds δ⁺(2) + δ⁺(3) = 330.
        let loose = CurveBuilder::new()
            .delta_min_ticks([50, 100, 150])
            .delta_plus_ticks([110, 220, 390])
            .extension(1, Time::new(110))
            .build()
            .unwrap();
        let tight = AdditiveClosure::new(loose.clone().shared());
        assert_eq!(loose.delta_plus(4), TimeBound::finite(390));
        assert_eq!(tight.delta_plus(4), TimeBound::finite(330));
    }

    #[test]
    fn tightens_the_inner_update_counterexample() {
        // The Def. 9 output that motivated splitting the consistency
        // checks: δ(2) = 90 (floor) and δ(5) = 668 < δ(2) + δ(4) = 669.
        let loose = CurveBuilder::new()
            .delta_min_ticks([90, 289, 579, 668])
            .delta_plus_ticks([1_000, 2_000, 3_000, 4_000])
            .extension(1, Time::new(700))
            .build()
            .unwrap();
        let tight = AdditiveClosure::new(loose.clone().shared());
        assert_eq!(loose.delta_min(5), Time::new(668));
        assert_eq!(tight.delta_min(5), Time::new(669));
        check_super_additivity(&tight, 12).unwrap();
    }

    #[test]
    fn infinite_delta_plus_passes_through() {
        use crate::SporadicModel;
        let sp = SporadicModel::new(Time::new(50)).unwrap();
        let closed = AdditiveClosure::new(sp.shared());
        assert_eq!(closed.delta_plus(4), TimeBound::Infinite);
        assert_eq!(closed.delta_min(4), Time::new(150));
    }

    #[test]
    fn monotone_improvement_only() {
        // Closure never loosens: δ̂⁻ ≥ δ⁻ and δ̂⁺ ≤ δ⁺ everywhere.
        let loose = CurveBuilder::new()
            .delta_min_ticks([10, 15, 40, 41, 90])
            .delta_plus_ticks([100, 130, 200, 260, 330])
            .extension(2, Time::new(100))
            .build()
            .unwrap();
        let tight = AdditiveClosure::new(loose.clone().shared());
        for n in 0..=25u64 {
            assert!(tight.delta_min(n) >= loose.delta_min(n), "δ⁻({n})");
            assert!(tight.delta_plus(n) <= loose.delta_plus(n), "δ⁺({n})");
        }
        assert_eq!(tight.inner().delta_min(2), Time::new(10));
    }
}
