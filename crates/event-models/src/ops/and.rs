//! AND-activation combination of event streams.

use hem_time::{Time, TimeBound};

use crate::{AnalyticCurve, EventModel, ModelError, ModelRef};

/// The AND-combination of several event streams.
///
/// A task with AND-activation waits for one event on *every* input before
/// it activates (Jersak's semantics, cited by the paper in §3). Assuming
/// adequate buffering, the i-th activation is produced by the i-th event
/// of each input, so the activation distances are bounded by the slowest
/// input:
///
/// ```text
/// δ_and⁻(n) = maxᵢ δᵢ⁻(n)
/// δ_and⁺(n) = maxᵢ δᵢ⁺(n)
/// ```
///
/// # Examples
///
/// ```
/// use hem_event_models::{EventModel, EventModelExt, StandardEventModel};
/// use hem_event_models::ops::AndJoin;
/// use hem_time::Time;
///
/// let fast = StandardEventModel::periodic(Time::new(100))?.shared();
/// let slow = StandardEventModel::periodic(Time::new(300))?.shared();
/// let and = AndJoin::new(vec![fast, slow])?;
/// // Activation rate is limited by the slow input.
/// assert_eq!(and.delta_min(2), Time::new(300));
/// # Ok::<(), hem_event_models::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AndJoin {
    inputs: Vec<ModelRef>,
}

impl AndJoin {
    /// Combines the given input streams.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `inputs` is empty.
    pub fn new(inputs: Vec<ModelRef>) -> Result<Self, ModelError> {
        if inputs.is_empty() {
            return Err(ModelError::invalid(
                "AND-combination requires at least one input stream",
            ));
        }
        Ok(AndJoin { inputs })
    }

    /// The combined input streams.
    #[must_use]
    pub fn inputs(&self) -> &[ModelRef] {
        &self.inputs
    }
}

impl EventModel for AndJoin {
    fn delta_min(&self, n: u64) -> Time {
        self.inputs
            .iter()
            .map(|m| m.delta_min(n))
            .max()
            .expect("non-empty inputs")
    }

    fn delta_plus(&self, n: u64) -> TimeBound {
        self.inputs
            .iter()
            .map(|m| m.delta_plus(n))
            .max()
            .expect("non-empty inputs")
    }

    fn analytic(&self) -> Option<AnalyticCurve> {
        let children: Vec<AnalyticCurve> = self
            .inputs
            .iter()
            .map(|m| m.analytic())
            .collect::<Option<_>>()?;
        AnalyticCurve::and_join(&children)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventModelExt, SporadicModel, StandardEventModel};

    #[test]
    fn slowest_input_dominates() {
        let fast = StandardEventModel::periodic(Time::new(100))
            .unwrap()
            .shared();
        let slow = StandardEventModel::periodic(Time::new(300))
            .unwrap()
            .shared();
        let and = AndJoin::new(vec![fast, slow]).unwrap();
        assert_eq!(and.delta_min(4), Time::new(900));
        assert_eq!(and.delta_plus(4), TimeBound::finite(900));
        assert_eq!(and.eta_plus(Time::new(301)), 2);
    }

    #[test]
    fn sporadic_input_removes_guarantees() {
        let p = StandardEventModel::periodic(Time::new(100))
            .unwrap()
            .shared();
        let s = SporadicModel::new(Time::new(50)).unwrap().shared();
        let and = AndJoin::new(vec![p, s]).unwrap();
        // δ⁻ is still bounded by the periodic input…
        assert_eq!(and.delta_min(2), Time::new(100));
        // …but δ⁺ is unbounded: the sporadic input may never fire.
        assert_eq!(and.delta_plus(2), TimeBound::Infinite);
        assert_eq!(and.eta_minus(Time::new(10_000)), 0);
    }

    #[test]
    fn single_input_is_identity() {
        let a = StandardEventModel::periodic_with_jitter(Time::new(120), Time::new(40)).unwrap();
        let and = AndJoin::new(vec![a.shared()]).unwrap();
        for n in 0..=8u64 {
            assert_eq!(and.delta_min(n), a.delta_min(n));
            assert_eq!(and.delta_plus(n), a.delta_plus(n));
        }
        assert_eq!(and.inputs().len(), 1);
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(AndJoin::new(vec![]).is_err());
    }
}
