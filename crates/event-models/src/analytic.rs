//! Closed-form analytic δ-curves: the memo-free fast path.
//!
//! An [`AnalyticCurve`] stores a δ-curve as a flat head array plus a
//! periodic extension — the same eventually-periodic shape as
//! [`CurveModel`], but with *separate* extension
//! strides for `δ⁻` and `δ⁺` (an OR of sporadic and periodic inputs has
//! different long-run rates on the two sides) and with every value
//! materialized eagerly by closed-form construction instead of lazily by
//! memoized recursion. Queries are O(1) array lookups (`δ±`) or a short
//! staircase inversion over O(1) lookups (`η±`); the query path touches
//! only the curve's own flat storage — no `Arc` hops, locks, or memo
//! tables.
//!
//! # Exactness contract
//!
//! Every constructor either returns a curve that is **bit-for-bit equal**
//! to the generic lazy evaluation it replaces — for all `n` and `Δt`, not
//! just the materialized head — or returns `None` so the caller falls
//! back to the generic path. Constructions derive the extension stride
//! from the input family, prove continuation by induction on the
//! defining recurrence, and additionally verify the extension against
//! direct evaluation for a full stride past the head; any mismatch or
//! any cap overrun refuses the lift. A fallback is never wrong, only
//! slower.
//!
//! The arrival functions are not stored: `η⁺`/`η⁻`/`max_simultaneous`
//! are answered by the exact inversions of [`convert`] running over the
//! O(1) δ lookups. By the Galois connection between δ and η (paper
//! eqs. (1)–(4)) these agree with the closed-form η overrides of the
//! source models, so a lifted curve is indistinguishable from its source
//! on all four functions.
//!
//! See `docs/CURVES.md` for the representation, the fallback taxonomy,
//! and how to force the generic path for debugging.

use hem_time::{div_ceil, Time, TimeBound};

use crate::{convert, CurveModel, EventModel, ModelRef};

/// Largest head (explicit per-`n` values) an analytic curve may store.
/// Constructions needing more refuse the lift.
const HEAD_CAP: u64 = 4096;

/// Largest extension stride (events per period).
const STRIDE_CAP: u64 = 1024;

/// Largest extension period in ticks.
const PERIOD_CAP: i64 = 1 << 42;

/// Largest burst size lifted eagerly (head construction is O(b²)).
const BURST_CAP: u64 = 256;

/// δ⁺ values at or beyond the [`convert::DT_HORIZON`] doubling horizon
/// are reported as `∞` by the generic η⁻ inversion; OR-combinations
/// refuse to lift rather than disagree near that boundary.
const PLUS_VALUE_CAP: i64 = convert::DT_HORIZON;

/// A δ-curve in closed form: flat heads plus periodic extensions.
///
/// `δ⁻(n)` is stored for `n ∈ [2, dmin.len() + 1]` and extended with
/// `(e⁻, Π⁻)`: beyond the head, `δ⁻(n) = δ⁻(n − k·e⁻) + k·Π⁻` for the
/// smallest `k` landing in the head. `δ⁺` has its own head and stride,
/// plus an optional `first_infinite_plus` marker after which `δ⁺ = ∞`.
///
/// Obtain one via [`EventModel::analytic`]; it is `Some` exactly for the
/// model families with a closed-form lift (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyticCurve {
    /// `dmin[i]` is `δ⁻(i + 2)`.
    dmin: Box<[Time]>,
    dmin_events: u64,
    dmin_period: Time,
    /// `dplus[i]` is `δ⁺(i + 2)`; covers only the finite range when
    /// `first_infinite_plus` is set.
    dplus: Box<[Time]>,
    dplus_events: u64,
    dplus_period: Time,
    /// Smallest `n` with `δ⁺(n) = ∞`, if any. When set, `dplus` holds
    /// exactly the finite values `n ∈ [2, first_infinite_plus − 1]` and
    /// the δ⁺ extension is never consulted.
    first_infinite_plus: Option<u64>,
}

/// Looks up a head value with periodic extension (saturating, matching
/// [`CurveModel`]'s extension arithmetic).
fn extended(head: &[Time], e: u64, period: Time, n: u64) -> Time {
    let last_n = head.len() as u64 + 1; // head covers n ∈ [2, last_n]
    if n <= last_n {
        return head[(n - 2) as usize];
    }
    let k = (n - last_n).div_ceil(e);
    let idx = n - k * e; // ∈ [last_n − e + 1, last_n], ≥ 2 by construction
    head[(idx - 2) as usize].saturating_add(period.saturating_mul(k as i64))
}

impl AnalyticCurve {
    /// Validating constructor: refuses (returns `None`) on any violation
    /// of the curve invariants instead of producing a curve that could
    /// disagree with the generic path.
    #[allow(clippy::too_many_arguments)]
    fn from_parts(
        dmin: Vec<Time>,
        dmin_events: u64,
        dmin_period: Time,
        dplus: Vec<Time>,
        dplus_events: u64,
        dplus_period: Time,
        first_infinite_plus: Option<u64>,
    ) -> Option<Self> {
        if dmin.is_empty() || dmin.len() as u64 + 1 > HEAD_CAP {
            return None;
        }
        if dmin_events == 0 || dmin_events > STRIDE_CAP || (dmin.len() as u64) < dmin_events {
            return None;
        }
        if dmin_period < Time::ONE || dmin_period.ticks() > PERIOD_CAP {
            return None;
        }
        if !monotone_non_negative(&dmin) {
            return None;
        }
        match first_infinite_plus {
            Some(f) => {
                // Finite prefix must cover exactly n ∈ [2, f − 1].
                if f < 2 || dplus.len() as u64 != f - 2 {
                    return None;
                }
                if !monotone_non_negative(&dplus) {
                    return None;
                }
            }
            None => {
                if dplus.is_empty() || dplus.len() as u64 + 1 > HEAD_CAP {
                    return None;
                }
                if dplus_events == 0
                    || dplus_events > STRIDE_CAP
                    || (dplus.len() as u64) < dplus_events
                {
                    return None;
                }
                if dplus_period < Time::ONE || dplus_period.ticks() > PERIOD_CAP {
                    return None;
                }
                if !monotone_non_negative(&dplus) {
                    return None;
                }
                // Extension continues monotonically past the head.
                let last_n = dplus.len() as u64 + 1;
                if extended(&dplus, dplus_events, dplus_period, last_n + 1) < dplus[dplus.len() - 1]
                {
                    return None;
                }
            }
        }
        let last_n = dmin.len() as u64 + 1;
        if extended(&dmin, dmin_events, dmin_period, last_n + 1) < dmin[dmin.len() - 1] {
            return None;
        }
        let curve = AnalyticCurve {
            dmin: dmin.into_boxed_slice(),
            dmin_events,
            dmin_period,
            dplus: dplus.into_boxed_slice(),
            dplus_events,
            dplus_period,
            first_infinite_plus,
        };
        // δ⁻ ≤ δ⁺ over the comparable heads.
        let shared = curve.dmin.len().max(curve.dplus.len()) as u64 + 1;
        for n in 2..=shared {
            if TimeBound::from(curve.delta_min(n)) > curve.delta_plus(n) {
                return None;
            }
        }
        Some(curve)
    }

    /// The stored `δ⁻` head (values for `n = 2, 3, …`).
    #[must_use]
    pub fn delta_min_head(&self) -> &[Time] {
        &self.dmin
    }

    /// The stored finite `δ⁺` head (values for `n = 2, 3, …`).
    #[must_use]
    pub fn delta_plus_head(&self) -> &[Time] {
        &self.dplus
    }

    /// The `δ⁻` extension as `(events, ticks)`.
    #[must_use]
    pub fn delta_min_extension(&self) -> (u64, Time) {
        (self.dmin_events, self.dmin_period)
    }

    /// The `δ⁺` extension as `(events, ticks)`; meaningless when
    /// [`AnalyticCurve::first_infinite_plus`] is set.
    #[must_use]
    pub fn delta_plus_extension(&self) -> (u64, Time) {
        (self.dplus_events, self.dplus_period)
    }

    /// Smallest `n` with `δ⁺(n) = ∞`, if any.
    #[must_use]
    pub fn first_infinite_plus(&self) -> Option<u64> {
        self.first_infinite_plus
    }
}

fn monotone_non_negative(values: &[Time]) -> bool {
    let mut prev = Time::ZERO;
    for &v in values {
        if v < prev || v.is_negative() {
            return false;
        }
        prev = v;
    }
    true
}

impl EventModel for AnalyticCurve {
    fn delta_min(&self, n: u64) -> Time {
        if n <= 1 {
            return Time::ZERO;
        }
        extended(&self.dmin, self.dmin_events, self.dmin_period, n)
    }

    fn delta_plus(&self, n: u64) -> TimeBound {
        if n <= 1 {
            return TimeBound::ZERO;
        }
        if matches!(self.first_infinite_plus, Some(f) if n >= f) {
            return TimeBound::Infinite;
        }
        TimeBound::Finite(extended(
            &self.dplus,
            self.dplus_events,
            self.dplus_period,
            n,
        ))
    }

    // η±/max_simultaneous deliberately use the exact generic inversions:
    // every probe is an O(1) head lookup, so the staircase searches cost
    // tens of nanoseconds — and sharing the inversion code guarantees
    // bit-for-bit agreement with the derived-model defaults.

    fn analytic(&self) -> Option<AnalyticCurve> {
        Some(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Base families.
// ---------------------------------------------------------------------------

impl AnalyticCurve {
    /// Lift of [`StandardEventModel`](crate::StandardEventModel)
    /// `(P, J, d_min)`.
    ///
    /// `δ⁺(n) = (n−1)P + J` is periodic with `(1, P)` from `n = 2`.
    /// `δ⁻(n) = max((n−1)d, (n−1)P − J)` enters the pure-period branch
    /// once `(n−1)(P − d) ≥ J`, after which `δ⁻(n+1) = δ⁻(n) + P`
    /// forever; the head covers the jitter-clamped region exactly.
    pub(crate) fn periodic_jitter(period: Time, jitter: Time, dmin: Time) -> Option<Self> {
        let stable_n = if period == dmin || jitter <= Time::ZERO {
            // max(d(n−1), P(n−1) − J) = P(n−1) − min(J, 0)·… — with
            // d = P or J = 0 the period branch wins from n = 2.
            2
        } else {
            // Smallest n with (n − 1)(P − d) ≥ J.
            1 + div_ceil(jitter.ticks(), (period - dmin).ticks()).max(1) as u64
        };
        if stable_n > HEAD_CAP {
            return None;
        }
        let head: Vec<Time> = (2..=stable_n)
            .map(|n| {
                let n1 = n as i64 - 1;
                (dmin * n1).max(period * n1 - jitter).clamp_non_negative()
            })
            .collect();
        Self::from_parts(head, 1, period, vec![period + jitter], 1, period, None)
    }

    /// Lift of [`SporadicModel`](crate::SporadicModel): `δ⁻(n) = (n−1)d`,
    /// `δ⁺(n) = ∞` for `n ≥ 2`.
    pub(crate) fn sporadic(dmin: Time) -> Option<Self> {
        Self::from_parts(vec![dmin], 1, dmin, Vec::new(), 1, Time::ONE, Some(2))
    }

    /// Lift of [`PeriodicBurstModel`](crate::PeriodicBurstModel): both
    /// curves are exactly periodic with `(b, P)` (`span(o, n + b) =
    /// span(o, n) + P` for every offset), so a head of one stride is
    /// exact everywhere.
    pub(crate) fn periodic_burst(model: &crate::PeriodicBurstModel) -> Option<Self> {
        let b = model.burst();
        if b > BURST_CAP {
            return None;
        }
        let head_n = b + 1;
        let mut dmin = Vec::with_capacity(b as usize);
        let mut dplus = Vec::with_capacity(b as usize);
        for n in 2..=head_n {
            dmin.push(model.delta_min(n));
            match model.delta_plus(n) {
                TimeBound::Finite(v) => dplus.push(v),
                TimeBound::Infinite => return None,
            }
        }
        Self::from_parts(dmin, b, model.period(), dplus, b, model.period(), None)
    }

    /// Lift of an explicit [`CurveModel`]: the representation is already
    /// eventually periodic, so the lift is a verbatim copy of prefixes
    /// and extension.
    pub(crate) fn from_curve_model(curve: &CurveModel) -> Option<Self> {
        let (e, period) = curve.extension();
        let dmin = curve.delta_min_prefix().to_vec();
        let fip = curve
            .delta_plus_prefix()
            .iter()
            .position(|v| v.is_infinite())
            .map(|i| i as u64 + 2);
        let dplus: Vec<Time> = curve
            .delta_plus_prefix()
            .iter()
            .take_while(|v| !v.is_infinite())
            .map(|v| match v {
                TimeBound::Finite(t) => *t,
                TimeBound::Infinite => unreachable!("take_while stops at ∞"),
            })
            .collect();
        Self::from_parts(dmin, e, period, dplus, e, period, fip)
    }
}

// ---------------------------------------------------------------------------
// Max-combination machinery (AND, shaper, inner update, pending, δ⁺ sides).
// ---------------------------------------------------------------------------

/// One term of a pointwise max-combination: an eventually periodic
/// integer sequence over `n ≥ 2`.
#[derive(Clone, Copy)]
enum Term<'a> {
    /// `head[i] = f(i + 2)` with extension `(e, Π)`, plus a constant
    /// offset (used for `± shift` in the inner update and pending
    /// combinations; the offset may be negative).
    Curve {
        head: &'a [Time],
        e: u64,
        period: Time,
        offset: Time,
    },
    /// The affine floor `(n − 1) · d` (exact rate `d` from `n = 2`;
    /// `d = 0` doubles as the non-negativity floor).
    Affine(Time),
}

impl Term<'_> {
    fn value(&self, n: u64) -> i64 {
        match *self {
            Term::Curve {
                head,
                e,
                period,
                offset,
            } => extended(head, e, period, n).ticks() + offset.ticks(),
            Term::Affine(d) => d.ticks() * (n as i64 - 1),
        }
    }

    /// Long-run rate as the fraction `num / den` (ticks per event).
    fn rate(&self) -> (i64, u64) {
        match *self {
            Term::Curve { e, period, .. } => (period.ticks(), e),
            Term::Affine(d) => (d.ticks(), 1),
        }
    }

    /// First `n` from which `f(n + e) = f(n) + Π` holds (the head's
    /// periodicity onset).
    fn onset(&self) -> u64 {
        match *self {
            Term::Curve { head, e, .. } => (head.len() as u64 + 1).saturating_sub(e - 1).max(2),
            Term::Affine(_) => 2,
        }
    }

    fn stride_events(&self) -> u64 {
        match *self {
            Term::Curve { e, .. } => e,
            Term::Affine(_) => 1,
        }
    }

    /// `max` over one stride of the scaled offset `e·f(n) − Π·n`; by
    /// periodicity this is the exact supremum for all `n ≥ onset`.
    fn scaled_sup(&self) -> i128 {
        let (num, den) = self.rate();
        let (num, den) = (num as i128, den as i128);
        let onset = self.onset();
        (onset..onset + self.stride_events())
            .map(|n| den * self.value(n) as i128 - num * n as i128)
            .max()
            .expect("stride ≥ 1")
    }
}

fn rate_cmp(a: (i64, u64), b: (i64, u64)) -> std::cmp::Ordering {
    (a.0 as i128 * b.1 as i128).cmp(&(b.0 as i128 * a.1 as i128))
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm_capped(a: u64, b: u64, cap: u64) -> Option<u64> {
    let g = gcd(a, b);
    let l = (a / g).checked_mul(b)?;
    (l <= cap).then_some(l)
}

fn floor_div(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    let q = a / b;
    if a % b != 0 && a < 0 {
        q - 1
    } else {
        q
    }
}

/// Pointwise max of the terms (always floored at zero), returned as an
/// eventually periodic head `(values for n ∈ [2, N], e, Π)`.
///
/// The stride is taken from the maximum-rate terms; slower terms are
/// proven to stay below the dominant composite past an exactly computed
/// crossover (affine bounds from the periodic scaled offsets), so the
/// extension is exact for every `n > N` — not merely spot-checked. A
/// defensive one-stride verification against direct evaluation guards
/// the implementation itself.
fn max_combine(terms: &[Term<'_>]) -> Option<(Vec<Time>, u64, Time)> {
    if terms.is_empty() {
        return None;
    }
    let max_rate = terms
        .iter()
        .map(Term::rate)
        .max_by(|a, b| rate_cmp(*a, *b))?;
    if max_rate.0 <= 0 {
        return None; // no positive long-run rate — cannot extend
    }
    let dominant: Vec<&Term<'_>> = terms
        .iter()
        .filter(|t| rate_cmp(t.rate(), max_rate) == std::cmp::Ordering::Equal)
        .collect();
    let mut e = 1u64;
    for t in &dominant {
        e = lcm_capped(e, t.stride_events(), STRIDE_CAP)?;
    }
    let (num, den) = dominant[0].rate();
    let period_ticks = num.checked_mul((e / den) as i64)?;
    if !(1..=PERIOD_CAP).contains(&period_ticks) {
        return None;
    }
    // Dominant composite g(n) = max over dominant terms: exactly
    // (e, Π)-periodic from the latest dominant onset.
    let onset_d = dominant.iter().map(|t| t.onset()).max().expect("non-empty");
    let g = |n: u64| -> i64 {
        dominant
            .iter()
            .map(|t| t.value(n))
            .max()
            .expect("non-empty")
    };
    let b_inf: i128 = (onset_d..onset_d + e)
        .map(|n| e as i128 * g(n) as i128 - period_ticks as i128 * n as i128)
        .min()
        .expect("stride ≥ 1");
    // Crossover for each strictly slower term (the implicit zero floor
    // is one of them): past n*, the dominant lower bound exceeds the
    // term's upper bound.
    let mut cross = 0u64;
    let mut onset_all = onset_d;
    let floor = Term::Affine(Time::ZERO);
    for t in terms.iter().chain(std::iter::once(&floor)) {
        onset_all = onset_all.max(t.onset());
        if rate_cmp(t.rate(), max_rate) == std::cmp::Ordering::Equal {
            continue;
        }
        let (tn, td) = t.rate();
        let denom = period_ticks as i128 * td as i128 - tn as i128 * e as i128;
        debug_assert!(denom > 0);
        let numer = t.scaled_sup() * e as i128 - b_inf * td as i128;
        let n_star = floor_div(numer, denom) + 1;
        if n_star > HEAD_CAP as i128 {
            return None;
        }
        cross = cross.max(n_star.max(0) as u64);
    }
    let head_n = (onset_d + e)
        .max(cross + e)
        .max(onset_all)
        .max(e + 1)
        .max(3);
    if head_n > HEAD_CAP {
        return None;
    }
    let direct = |n: u64| -> i64 {
        terms
            .iter()
            .map(|t| t.value(n))
            .max()
            .expect("non-empty")
            .max(0)
    };
    let head: Vec<Time> = (2..=head_n).map(|n| Time::new(direct(n))).collect();
    let period = Time::new(period_ticks);
    // Defensive: the extension must reproduce direct evaluation for a
    // full stride past the head.
    for n in head_n + 1..=head_n + e {
        if extended(&head, e, period, n) != Time::new(direct(n)) {
            return None;
        }
    }
    Some((head, e, period))
}

/// How the `δ⁺` side of [`AnalyticCurve::max_shifted`] is formed.
pub enum PlusCombine<'a> {
    /// `δ⁺(n) = ∞` for all `n ≥ 2` (pending-signal inner streams,
    /// paper eq. (8)).
    Infinite,
    /// Pointwise max of shifted `δ⁺` terms, an optional affine floor
    /// `(n − 1)·d`, and optionally the combination's own `δ⁻` (the
    /// `max(…, δ'⁻)` consistency floor of derived models).
    Max {
        /// `(curve, offset)` pairs: each contributes `δ⁺(n) + offset`.
        terms: &'a [(&'a AnalyticCurve, Time)],
        /// Optional affine floor `(n − 1)·d`.
        floor: Option<Time>,
        /// Also floor by the combined `δ⁻`.
        include_min: bool,
    },
}

impl AnalyticCurve {
    /// Exact lift of pointwise-max derivations:
    /// `δ⁻(n) = max(maxᵢ (cᵢ.δ⁻(n) + oᵢ), (n−1)·floor, 0)` with the
    /// `δ⁺` side given by `plus`.
    ///
    /// This is the shared closed form behind AND-joins, d_min shapers,
    /// the HEM inner update (Def. 9) and pending-signal streams
    /// (eqs. (7),(8)): each is a pointwise max of shifted child curves
    /// and affine floors. Returns `None` (fall back to the generic
    /// path) when the combination has no positive rate, overruns the
    /// head caps, or fails the defensive extension verification.
    #[must_use]
    pub fn max_shifted(
        min_terms: &[(&AnalyticCurve, Time)],
        min_floor: Option<Time>,
        plus: PlusCombine<'_>,
    ) -> Option<AnalyticCurve> {
        if min_terms.is_empty() {
            return None;
        }
        let mut terms: Vec<Term<'_>> = min_terms
            .iter()
            .map(|(c, offset)| Term::Curve {
                head: &c.dmin,
                e: c.dmin_events,
                period: c.dmin_period,
                offset: *offset,
            })
            .collect();
        if let Some(d) = min_floor {
            if d.is_negative() {
                return None;
            }
            terms.push(Term::Affine(d));
        }
        let (min_head, min_e, min_period) = max_combine(&terms)?;
        let (plus_head, plus_e, plus_period, fip) = match plus {
            PlusCombine::Infinite => (Vec::new(), 1, Time::ONE, Some(2)),
            PlusCombine::Max {
                terms: plus_terms,
                floor,
                include_min,
            } => {
                let fip = plus_terms
                    .iter()
                    .filter_map(|(c, _)| c.first_infinite_plus)
                    .min();
                match fip {
                    Some(f) => {
                        // Finite only on n ∈ [2, f − 1]: materialize the
                        // pointwise max there; no extension needed.
                        let direct = |n: u64| -> Option<i64> {
                            let mut best = 0i64;
                            for (c, offset) in plus_terms {
                                match c.delta_plus(n) {
                                    TimeBound::Finite(v) => {
                                        best = best.max(v.ticks() + offset.ticks());
                                    }
                                    TimeBound::Infinite => return None,
                                }
                            }
                            if let Some(d) = floor {
                                best = best.max(d.ticks() * (n as i64 - 1));
                            }
                            if include_min {
                                best = best.max(extended(&min_head, min_e, min_period, n).ticks());
                            }
                            Some(best)
                        };
                        let mut head = Vec::with_capacity((f - 2) as usize);
                        for n in 2..f {
                            head.push(Time::new(direct(n)?));
                        }
                        (head, 1, Time::ONE, Some(f))
                    }
                    None => {
                        let mut terms: Vec<Term<'_>> = plus_terms
                            .iter()
                            .map(|(c, offset)| Term::Curve {
                                head: &c.dplus,
                                e: c.dplus_events,
                                period: c.dplus_period,
                                offset: *offset,
                            })
                            .collect();
                        if let Some(d) = floor {
                            if d.is_negative() {
                                return None;
                            }
                            terms.push(Term::Affine(d));
                        }
                        if include_min {
                            terms.push(Term::Curve {
                                head: &min_head,
                                e: min_e,
                                period: min_period,
                                offset: Time::ZERO,
                            });
                        }
                        let (h, e, p) = max_combine(&terms)?;
                        (h, e, p, None)
                    }
                }
            }
        };
        Self::from_parts(
            min_head,
            min_e,
            min_period,
            plus_head,
            plus_e,
            plus_period,
            fip,
        )
    }

    /// Lift of [`ops::AndJoin`](crate::ops::AndJoin): `δ±(n) = maxᵢ δᵢ±(n)`.
    pub(crate) fn and_join(children: &[AnalyticCurve]) -> Option<AnalyticCurve> {
        let refs: Vec<(&AnalyticCurve, Time)> = children.iter().map(|c| (c, Time::ZERO)).collect();
        AnalyticCurve::max_shifted(
            &refs,
            None,
            PlusCombine::Max {
                terms: &refs,
                floor: None,
                include_min: false,
            },
        )
    }

    /// Lift of [`ops::DminShaper`](crate::ops::DminShaper):
    /// `δ'∓(n) = max(δ∓(n), (n−1)·d)`.
    pub(crate) fn shaped(&self, dmin: Time) -> Option<AnalyticCurve> {
        let refs = [(self, Time::ZERO)];
        AnalyticCurve::max_shifted(
            &refs,
            Some(dmin),
            PlusCombine::Max {
                terms: &refs,
                floor: Some(dmin),
                include_min: false,
            },
        )
    }
}

// ---------------------------------------------------------------------------
// OR-combination: k-way merge of the children's δ staircases.
// ---------------------------------------------------------------------------

/// Infinite nondecreasing value stream `δ(2), δ(3), …` of one child.
struct Stream<'a> {
    head: &'a [Time],
    e: u64,
    period: Time,
    next_n: u64,
    /// Stop after this many values (`u64::MAX` = never): finite δ⁺
    /// streams of eventually-sporadic children.
    remaining: u64,
    /// Memoized `extended(head, e, period, next_n)` — the merge peeks
    /// every stream once per emitted value, so recomputing the
    /// extension each time would dominate lift construction.
    cur: Option<i64>,
}

impl<'a> Stream<'a> {
    fn new(head: &'a [Time], e: u64, period: Time, remaining: u64) -> Self {
        let mut s = Stream {
            head,
            e,
            period,
            next_n: 2,
            remaining,
            cur: None,
        };
        s.refresh();
        s
    }

    fn refresh(&mut self) {
        self.cur = (self.remaining > 0)
            .then(|| extended(self.head, self.e, self.period, self.next_n).ticks());
    }

    fn peek(&self) -> Option<i64> {
        self.cur
    }

    fn pop(&mut self) {
        self.next_n += 1;
        self.remaining -= 1;
        self.refresh();
    }
}

/// Merges the streams in sorted order until `target` values are emitted
/// or every stream is exhausted. Values above `value_cap` abort (`None`).
fn merge_streams(streams: &mut [Stream<'_>], target: u64, value_cap: i64) -> Option<Vec<i64>> {
    let mut out = Vec::with_capacity(target as usize);
    while (out.len() as u64) < target {
        let mut best: Option<(usize, i64)> = None;
        for (i, s) in streams.iter().enumerate() {
            if let Some(v) = s.peek() {
                if best.is_none_or(|(_, bv)| v < bv) {
                    best = Some((i, v));
                }
            }
        }
        match best {
            Some((i, v)) => {
                if v > value_cap {
                    return None;
                }
                streams[i].pop();
                out.push(v);
            }
            None => break, // all exhausted (finite δ⁺ merge)
        }
    }
    Some(out)
}

/// Merges until `extra` values have been emitted from (and including)
/// the first value strictly above `onset_value`, bounded by `budget`.
/// Returns the merged prefix plus the onset index, or `None` when a
/// value exceeds `value_cap` or the onset was not reached in budget —
/// lift construction is on the hot path, so the merge must stop as
/// soon as the periodic tail is confirmed rather than filling the full
/// head cap.
fn merge_past_onset(
    streams: &mut [Stream<'_>],
    onset_value: i64,
    extra: u64,
    budget: u64,
    value_cap: i64,
) -> Option<(Vec<i64>, usize)> {
    let mut out: Vec<i64> = Vec::new();
    let mut idx_t: Option<usize> = None;
    while (out.len() as u64) < budget {
        let mut best: Option<(usize, i64)> = None;
        for (i, s) in streams.iter().enumerate() {
            if let Some(v) = s.peek() {
                if best.is_none_or(|(_, bv)| v < bv) {
                    best = Some((i, v));
                }
            }
        }
        let Some((i, v)) = best else {
            return None; // exhausted before the periodic tail
        };
        if v > value_cap {
            return None;
        }
        streams[i].pop();
        if idx_t.is_none() && v > onset_value {
            idx_t = Some(out.len());
        }
        out.push(v);
        if let Some(t) = idx_t {
            if out.len() as u64 >= t as u64 + extra {
                return Some((out, t));
            }
        }
    }
    None // budget exhausted before a full periodic stride
}

impl AnalyticCurve {
    /// Lift of [`ops::OrJoin`](crate::ops::OrJoin) (paper eqs. (3),(4)).
    ///
    /// The paper recovers the combined δ from the summed η; since
    /// `η⁺(Δt) − N = #{(i, m ≥ 2) : δᵢ⁻(m) < Δt}` and
    /// `η⁻(Δt) = #{(i, m ≥ 2) : δᵢ⁺(m) ≤ Δt}`, inverting the sums is
    /// exactly order-statistics selection on the merged per-child value
    /// streams: `δ⁻(n)` is the `(n − N)`-th smallest merged `δ⁻` value
    /// and `δ⁺(n)` the `(n − 1)`-th smallest merged `δ⁺` value. The
    /// merged stream repeats with `E = Σᵢ eᵢ·L/Πᵢ` events per
    /// `L = lcm(Πᵢ)` ticks once every child is past its head, which
    /// gives the extension.
    pub(crate) fn or_join(children: &[AnalyticCurve]) -> Option<AnalyticCurve> {
        if children.is_empty() {
            return None;
        }
        let n_children = children.len() as u64;

        // δ⁻ side: all streams are infinite.
        let mut l = 1u64;
        for c in children {
            l = lcm_capped(l, c.dmin_period.ticks() as u64, PERIOD_CAP as u64)?;
        }
        let mut e_total = 0u64;
        for c in children {
            e_total = e_total.checked_add(
                c.dmin_events
                    .checked_mul(l / c.dmin_period.ticks() as u64)?,
            )?;
        }
        if e_total == 0 || e_total > STRIDE_CAP {
            return None;
        }
        // All children are in their periodic extension for values above
        // the largest head-tail value; the merged pattern then repeats
        // (+L every E values).
        let onset_value = children
            .iter()
            .map(|c| c.dmin[c.dmin.len() - 1].ticks())
            .max()
            .expect("non-empty");
        let mut streams: Vec<Stream<'_>> = children
            .iter()
            .map(|c| Stream::new(&c.dmin, c.dmin_events, c.dmin_period, u64::MAX))
            .collect();
        let budget = HEAD_CAP.saturating_sub(n_children);
        let (merged, idx_t) =
            merge_past_onset(&mut streams, onset_value, e_total + 1, budget, i64::MAX)?;
        let merged = &merged[..];
        // Past the onset every child is in its pure periodic extension,
        // so the merged multiset over one `L`-window repeats exactly —
        // one period of head suffices. Verify the wraparound pair as a
        // defensive spot check (a full second period would only re-prove
        // the theorem at double the merge cost).
        debug_assert_eq!(merged.len(), idx_t + e_total as usize + 1);
        if merged[idx_t + e_total as usize] != merged[idx_t] + l as i64 {
            debug_assert!(
                false,
                "merged δ⁻ tail failed to repeat with (+{l} per {e_total})"
            );
            return None;
        }
        // δ⁻(n) = 0 for n ≤ N (the streams may fire simultaneously),
        // then the merged order statistics.
        let mut dmin = Vec::with_capacity((n_children - 1) as usize + merged.len());
        dmin.extend((2..=n_children).map(|_| Time::ZERO));
        dmin.extend(merged.iter().map(|&v| Time::new(v)));

        // δ⁺ side: children that go sporadic contribute finitely many
        // values; the long-run stride comes from the others.
        let finite_counts: Vec<u64> = children
            .iter()
            .map(|c| match c.first_infinite_plus {
                Some(f) => f - 2,
                None => u64::MAX,
            })
            .collect();
        let persistent: Vec<&AnalyticCurve> = children
            .iter()
            .zip(&finite_counts)
            .filter(|(_, &cnt)| cnt == u64::MAX)
            .map(|(c, _)| c)
            .collect();
        let mut pstreams: Vec<Stream<'_>> = children
            .iter()
            .zip(&finite_counts)
            .map(|(c, &cnt)| Stream::new(&c.dplus, c.dplus_events, c.dplus_period, cnt))
            .collect();
        let (dplus, plus_e, plus_period, fip) = if persistent.is_empty() {
            // Every child goes sporadic: finitely many finite values.
            let total: u64 = finite_counts.iter().sum();
            if total + 2 > HEAD_CAP {
                return None;
            }
            let merged = merge_streams(&mut pstreams, total, PLUS_VALUE_CAP)?;
            debug_assert_eq!(merged.len() as u64, total);
            let dplus: Vec<Time> = merged.into_iter().map(Time::new).collect();
            (dplus, 1, Time::ONE, Some(total + 2))
        } else {
            let mut lp = 1u64;
            for c in &persistent {
                lp = lcm_capped(lp, c.dplus_period.ticks() as u64, PERIOD_CAP as u64)?;
            }
            let mut ep = 0u64;
            for c in &persistent {
                ep = ep.checked_add(
                    c.dplus_events
                        .checked_mul(lp / c.dplus_period.ticks() as u64)?,
                )?;
            }
            if ep == 0 || ep > STRIDE_CAP {
                return None;
            }
            // Periodicity starts once the persistent children are past
            // their heads and the sporadic children are exhausted.
            let mut onset_value = persistent
                .iter()
                .map(|c| c.dplus[c.dplus.len() - 1].ticks())
                .max()
                .expect("non-empty");
            for (c, &cnt) in children.iter().zip(&finite_counts) {
                if cnt != u64::MAX && cnt > 0 {
                    onset_value = onset_value.max(c.dplus[c.dplus.len() - 1].ticks());
                }
            }
            let (merged, idx_t) =
                merge_past_onset(&mut pstreams, onset_value, ep + 1, HEAD_CAP, PLUS_VALUE_CAP)?;
            // Same single-period argument as the δ⁻ side.
            if merged[idx_t + ep as usize] != merged[idx_t] + lp as i64 {
                debug_assert!(
                    false,
                    "merged δ⁺ tail failed to repeat with (+{lp} per {ep})"
                );
                return None;
            }
            let dplus: Vec<Time> = merged.iter().map(|&v| Time::new(v)).collect();
            (dplus, ep, Time::new(lp as i64), None)
        };
        Self::from_parts(
            dmin,
            e_total,
            Time::new(l as i64),
            dplus,
            plus_e,
            plus_period,
            fip,
        )
    }
}

// ---------------------------------------------------------------------------
// Output-stream calculation Θ_τ (max-plus serialization filter).
// ---------------------------------------------------------------------------

impl AnalyticCurve {
    /// Lift of [`ops::OutputModel`](crate::ops::OutputModel):
    /// `δ'⁻(n) = max(δ⁻(n) − (r⁺−r⁻), δ'⁻(n−1) + r⁻)` and
    /// `δ'⁺(n) = max(δ⁺(n) + (r⁺−r⁻), δ'⁻(n))`.
    ///
    /// The recursion is run explicitly over the head (identical to the
    /// generic memoized recursion, with O(1) input lookups). Its tail is
    /// periodic with the input's stride when the input rate sustains
    /// `r⁻` — proven by induction from a single verified base point —
    /// and with `(1, r⁻)` when the serialization floor dominates, proven
    /// past an exact affine crossover.
    pub(crate) fn output(&self, r_minus: Time, r_plus: Time) -> Option<AnalyticCurve> {
        if r_minus.is_negative() || r_minus > r_plus {
            return None;
        }
        let jit = (r_plus - r_minus).ticks();
        let input_rate = (self.dmin_period.ticks(), self.dmin_events);
        let onset = (self.dmin.len() as u64 + 1)
            .saturating_sub(self.dmin_events - 1)
            .max(2);
        // x[n] = δ'⁻(n), computed by the exact recursion (x ≥ 0 always:
        // x(1) = 0 and r⁻ ≥ 0 keep the clamp vacuous).
        let mut x = vec![0i64; 2];
        let grow_to = |x: &mut Vec<i64>, n: u64| {
            while (x.len() as u64) <= n {
                let k = x.len() as u64;
                let prev = x[x.len() - 1];
                let v = (self.delta_min(k).ticks() - jit)
                    .max(prev + r_minus.ticks())
                    .max(0);
                x.push(v);
            }
        };
        let (head_n, e, period) =
            if rate_cmp(input_rate, (r_minus.ticks(), 1)) != std::cmp::Ordering::Less {
                // Input at least as fast-growing as the floor: the tail
                // follows the input stride. Find a base point n₀ ≥ onset
                // with x(n₀+e) = x(n₀) + Π; induction then gives
                // x(n+e) = x(n) + Π for all n ≥ n₀.
                let e = self.dmin_events;
                let pi = self.dmin_period.ticks();
                let mut base = None;
                for n in onset..HEAD_CAP.saturating_sub(e) {
                    grow_to(&mut x, n + e);
                    if x[(n + e) as usize] == x[n as usize] + pi {
                        base = Some(n);
                        break;
                    }
                }
                let n0 = base?;
                (n0 + e, e, self.dmin_period)
            } else {
                // Floor dominates (r⁻ > input rate, so r⁻ ≥ 1): once the
                // input's affine upper bound stays below the floor's path,
                // x(n+1) = x(n) + r⁻ forever.
                let sup = Term::Curve {
                    head: &self.dmin,
                    e: self.dmin_events,
                    period: self.dmin_period,
                    offset: Time::ZERO,
                }
                .scaled_sup();
                let (pi, e_in) = (input_rate.0 as i128, input_rate.1 as i128);
                let mut base = None;
                for n in onset..HEAD_CAP {
                    grow_to(&mut x, n);
                    // e·(x(n) + r⁻ + jit) ≥ A + Π·(n+1) ⇒ every later input
                    // value arrives before the serialization floor.
                    if e_in * (x[n as usize] + r_minus.ticks() + jit) as i128
                        >= sup + pi * (n as i128 + 1)
                    {
                        base = Some(n);
                        break;
                    }
                }
                let n0 = base?;
                (n0 + 1, 1, r_minus)
            };
        grow_to(&mut x, head_n + 2 * e);
        let min_head: Vec<Time> = (2..=head_n).map(|n| Time::new(x[n as usize])).collect();
        // Defensive: extension must reproduce the recursion for two
        // strides past the head.
        for n in head_n + 1..=head_n + 2 * e {
            if extended(&min_head, e, period, n).ticks() != x[n as usize] {
                return None;
            }
        }
        // δ⁺ side: the input's δ⁺ shifted by the response jitter, floored
        // by the freshly computed δ'⁻ (the consistency floor of the
        // generic operation).
        let (plus_head, plus_e, plus_period, fip) = match self.first_infinite_plus {
            Some(f) => {
                let mut head = Vec::with_capacity((f - 2) as usize);
                for n in 2..f {
                    let inp = match self.delta_plus(n) {
                        TimeBound::Finite(v) => v.ticks() + jit,
                        TimeBound::Infinite => return None,
                    };
                    head.push(Time::new(
                        inp.max(extended(&min_head, e, period, n).ticks()),
                    ));
                }
                (head, 1, Time::ONE, Some(f))
            }
            None => {
                let terms = [
                    Term::Curve {
                        head: &self.dplus,
                        e: self.dplus_events,
                        period: self.dplus_period,
                        offset: Time::new(jit),
                    },
                    Term::Curve {
                        head: &min_head,
                        e,
                        period,
                        offset: Time::ZERO,
                    },
                ];
                let (h, pe, pp) = max_combine(&terms)?;
                (h, pe, pp, None)
            }
        };
        Self::from_parts(min_head, e, period, plus_head, plus_e, plus_period, fip)
    }
}

/// Lifts a shared model handle, if its concrete type supports it.
///
/// Convenience wrapper over [`EventModel::analytic`] for call sites
/// holding a [`ModelRef`].
#[must_use]
pub fn lift(model: &ModelRef) -> Option<AnalyticCurve> {
    model.analytic()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{AndJoin, DminShaper, OrJoin, OutputModel};
    use crate::{EventModelExt, PeriodicBurstModel, SporadicModel, StandardEventModel};

    fn assert_equiv(analytic: &AnalyticCurve, generic: &dyn EventModel, n_max: u64, dt_max: i64) {
        for n in 0..=n_max {
            assert_eq!(analytic.delta_min(n), generic.delta_min(n), "δ⁻({n})");
            assert_eq!(analytic.delta_plus(n), generic.delta_plus(n), "δ⁺({n})");
        }
        for dt in 0..=dt_max {
            let dt = Time::new(dt);
            assert_eq!(analytic.eta_plus(dt), generic.eta_plus(dt), "η⁺({dt})");
            assert_eq!(analytic.eta_minus(dt), generic.eta_minus(dt), "η⁻({dt})");
        }
        assert_eq!(analytic.max_simultaneous(), generic.max_simultaneous());
    }

    #[test]
    fn sem_lift_is_exact() {
        for (p, j, d) in [
            (250, 0, 0),
            (100, 30, 0),
            (100, 250, 10),
            (7, 13, 3),
            (1, 0, 0),
            (400, 399, 1),
            (10, 10, 10),
        ] {
            let m = StandardEventModel::new(Time::new(p), Time::new(j), Time::new(d)).unwrap();
            let a = m.analytic().expect("SEM lifts");
            assert_equiv(&a, &m, 64, 1_500);
        }
    }

    #[test]
    fn sporadic_lift_is_exact() {
        let m = SporadicModel::new(Time::new(50)).unwrap();
        let a = m.analytic().expect("sporadic lifts");
        assert_equiv(&a, &m, 40, 800);
        assert_eq!(a.first_infinite_plus(), Some(2));
    }

    #[test]
    fn burst_lift_is_exact() {
        for (p, b, d) in [(100, 2, 1), (500, 3, 0), (1000, 4, 50), (70, 7, 9)] {
            let m = PeriodicBurstModel::new(Time::new(p), b, Time::new(d)).unwrap();
            let a = m.analytic().expect("burst lifts");
            assert_equiv(&a, &m, 50, 1_200);
        }
    }

    #[test]
    fn curve_model_lift_is_exact() {
        let m = crate::CurveBuilder::new()
            .delta_min_ticks([1, 100, 101])
            .delta_plus_ticks([99, 100, 199])
            .extension(2, Time::new(100))
            .build()
            .unwrap();
        let a = m.analytic().expect("curve lifts");
        assert_equiv(&a, &m, 40, 1_000);
    }

    #[test]
    fn curve_model_with_infinite_tail_lifts() {
        let m = crate::CurveBuilder::new()
            .delta_min_ticks([10, 20])
            .delta_plus_bounds([TimeBound::finite(30), TimeBound::Infinite])
            .extension(1, Time::new(10))
            .build()
            .unwrap();
        let a = m.analytic().expect("lift");
        assert_equiv(&a, &m, 30, 400);
        assert_eq!(a.first_infinite_plus(), Some(3));
    }

    #[test]
    fn or_join_lift_is_exact() {
        let children = vec![
            StandardEventModel::periodic(Time::new(250))
                .unwrap()
                .shared(),
            StandardEventModel::periodic_with_jitter(Time::new(450), Time::new(40))
                .unwrap()
                .shared(),
        ];
        let or = OrJoin::new(children).unwrap();
        let a = or.analytic().expect("OR lifts");
        assert_equiv(&a, &or, 64, 3_000);
    }

    #[test]
    fn or_join_with_sporadic_child_is_exact() {
        let or = OrJoin::new(vec![
            StandardEventModel::periodic(Time::new(100))
                .unwrap()
                .shared(),
            SporadicModel::new(Time::new(70)).unwrap().shared(),
        ])
        .unwrap();
        let a = or.analytic().expect("OR lifts");
        // The sporadic child contributes no δ⁺ values: the periodic
        // child alone guarantees arrivals, so δ⁺ stays finite.
        assert_eq!(a.first_infinite_plus(), None);
        assert_equiv(&a, &or, 50, 2_000);
    }

    #[test]
    fn or_join_all_sporadic_goes_infinite() {
        let or = OrJoin::new(vec![
            SporadicModel::new(Time::new(50)).unwrap().shared(),
            SporadicModel::new(Time::new(80)).unwrap().shared(),
        ])
        .unwrap();
        let a = or.analytic().expect("OR lifts");
        assert_eq!(a.first_infinite_plus(), Some(2));
        assert_equiv(&a, &or, 40, 1_000);
    }

    #[test]
    fn and_join_lift_is_exact() {
        let and = AndJoin::new(vec![
            StandardEventModel::periodic_with_jitter(Time::new(100), Time::new(30))
                .unwrap()
                .shared(),
            StandardEventModel::periodic(Time::new(160))
                .unwrap()
                .shared(),
        ])
        .unwrap();
        let a = and.analytic().expect("AND lifts");
        assert_equiv(&a, &and, 48, 2_500);
    }

    #[test]
    fn shaper_lift_is_exact() {
        let input = StandardEventModel::periodic_with_jitter(Time::new(100), Time::new(250))
            .unwrap()
            .shared();
        let shaped = DminShaper::new(input, Time::new(30)).unwrap();
        let a = shaped.analytic().expect("shaper lifts");
        assert_equiv(&a, &shaped, 48, 2_500);
    }

    #[test]
    fn output_lift_is_exact() {
        for (p, j, rm, rp) in [(250, 0, 10, 60), (100, 60, 5, 25), (100, 300, 7, 9)] {
            let input = StandardEventModel::periodic_with_jitter(Time::new(p), Time::new(j))
                .unwrap()
                .shared();
            let out = OutputModel::new(input, Time::new(rm), Time::new(rp)).unwrap();
            let a = out.analytic().expect("output lifts");
            assert_equiv(&a, &out, 64, 2_500);
        }
    }

    #[test]
    fn output_of_sporadic_keeps_infinite_plus() {
        let input = SporadicModel::new(Time::new(50)).unwrap().shared();
        let out = OutputModel::new(input, Time::ZERO, Time::new(10)).unwrap();
        let a = out.analytic().expect("output lifts");
        assert_eq!(a.first_infinite_plus(), Some(2));
        assert_equiv(&a, &out, 40, 1_000);
    }

    #[test]
    fn output_floor_dominated_regime_is_exact() {
        // r⁻ = 40 exceeds the input's 100/4 sustained rate? No — make
        // the floor genuinely dominant: burst input (rate 25/event) with
        // r⁻ = 40.
        let input = StandardEventModel::periodic_with_jitter(Time::new(25), Time::new(5))
            .unwrap()
            .shared();
        let out = OutputModel::new(input, Time::new(40), Time::new(45)).unwrap();
        let a = out.analytic().expect("output lifts");
        assert_equiv(&a, &out, 64, 3_000);
    }

    #[test]
    fn nested_combination_lifts() {
        // OR of (propagated SEM, burst) shaped and post-processed: the
        // whole derived tree lifts bottom-up.
        let sem = StandardEventModel::periodic_with_jitter(Time::new(300), Time::new(40))
            .unwrap()
            .shared();
        let propagated = OutputModel::new(sem, Time::new(10), Time::new(30))
            .unwrap()
            .shared();
        let burst = PeriodicBurstModel::new(Time::new(200), 2, Time::new(3))
            .unwrap()
            .shared();
        let or = OrJoin::new(vec![propagated, burst]).unwrap().shared();
        let shaped = DminShaper::new(or, Time::new(5)).unwrap();
        let a = shaped.analytic().expect("nested tree lifts");
        assert_equiv(&a, &shaped, 80, 4_000);
    }

    #[test]
    fn additive_closure_falls_back() {
        let loose = crate::CurveBuilder::new()
            .delta_min_ticks([100, 200, 220, 400])
            .delta_plus_ticks([100, 200, 300, 400])
            .extension(1, Time::new(100))
            .build()
            .unwrap();
        let tight = crate::ops::AdditiveClosure::new(loose.shared());
        assert!(
            tight.analytic().is_none(),
            "closure is a documented fallback"
        );
    }

    #[test]
    fn extension_boundary_around_stride_multiples() {
        // Satellite: δ(n) around events_per_period multiples of the head
        // end must agree with the generic extension on both sides.
        let m = crate::CurveBuilder::new()
            .delta_min_ticks([1, 100, 101, 200])
            .delta_plus_ticks([99, 100, 199, 200])
            .extension(2, Time::new(100))
            .build()
            .unwrap();
        let a = m.analytic().expect("lift");
        let head_n = a.delta_min_head().len() as u64 + 1;
        let (e, _) = a.delta_min_extension();
        for k in 0..5u64 {
            for off in [0, 1] {
                let n = head_n + k * e + off;
                assert_eq!(a.delta_min(n), m.delta_min(n), "δ⁻({n})");
                assert_eq!(a.delta_plus(n), m.delta_plus(n), "δ⁺({n})");
            }
        }
    }

    #[test]
    fn pseudo_inverse_consistency_at_breakpoints() {
        // Satellite: η⁺/δ⁻ round-trip exactly at segment breakpoints
        // Δt = δ⁻(n) and Δt = δ⁻(n) ± 1.
        let or = OrJoin::new(vec![
            StandardEventModel::periodic(Time::new(250))
                .unwrap()
                .shared(),
            StandardEventModel::periodic(Time::new(450))
                .unwrap()
                .shared(),
        ])
        .unwrap();
        let a = or.analytic().expect("lift");
        for n in 2..=40u64 {
            let d = a.delta_min(n);
            // The defining adjunction at the breakpoint Δt = δ⁻(n):
            // η⁺(δ⁻(n)) ≤ n − 1 (a window of exactly δ⁻(n) cannot be
            // *smaller* than the minimum span of n events) and
            // η⁺(δ⁻(n) + 1) ≥ n (one tick more admits them).
            assert!(a.eta_plus(d) <= n - 1);
            assert!(a.eta_plus(d + Time::ONE) >= n);
            assert_eq!(a.eta_plus(d + Time::ONE), or.eta_plus(d + Time::ONE));
            assert_eq!(
                convert::delta_min_from_eta_plus(
                    &|dt| a.eta_plus(dt),
                    n,
                    a.delta_min(n) + Time::ONE
                ),
                d,
                "δ⁻/η⁺ round trip at n = {n}"
            );
        }
    }

    #[test]
    fn max_shifted_infinite_plus() {
        let signal = StandardEventModel::periodic(Time::new(900)).unwrap();
        let frames = StandardEventModel::periodic(Time::new(250)).unwrap();
        let s = signal.analytic().unwrap();
        let f = frames.analytic().unwrap();
        let combined = AnalyticCurve::max_shifted(
            &[(&s, Time::new(-100)), (&f, Time::ZERO)],
            None,
            PlusCombine::Infinite,
        )
        .expect("combines");
        assert_eq!(combined.first_infinite_plus(), Some(2));
        for n in 2..=30u64 {
            let expected = (signal.delta_min(n) - Time::new(100))
                .max(frames.delta_min(n))
                .clamp_non_negative();
            assert_eq!(combined.delta_min(n), expected, "δ⁻({n})");
            assert_eq!(combined.delta_plus(n), TimeBound::Infinite);
        }
    }

    #[test]
    fn cached_model_delegates_lift() {
        let or = OrJoin::new(vec![
            StandardEventModel::periodic(Time::new(250))
                .unwrap()
                .shared(),
            StandardEventModel::periodic(Time::new(450))
                .unwrap()
                .shared(),
        ])
        .unwrap()
        .shared();
        let cached = crate::CachedModel::new(or.clone());
        let a = cached.analytic().expect("cache delegates to inner");
        assert_equiv(&a, &or, 40, 2_000);
    }

    #[test]
    fn lift_helper_works_on_model_refs() {
        let m: ModelRef = StandardEventModel::periodic(Time::new(100))
            .unwrap()
            .shared();
        assert!(lift(&m).is_some());
    }
}
