//! Conversions between the distance functions `δ±(n)` and the arrival
//! functions `η±(Δt)`.
//!
//! These implement eqs. (1) and (2) of the DATE'08 paper,
//!
//! ```text
//! η⁺(Δt) = max { n ≥ 2 : δ⁻(n) < Δt } ∪ { 1 }          (1)
//! η⁻(Δt) = min { n ≥ 0 : δ⁺(n + 2) > Δt }              (2)
//! ```
//!
//! together with the pseudo-inverses used by the OR-combination
//! (eqs. (3),(4)): the paper's proof observes that the minimum over all
//! contribution vectors equals the smallest window containing
//! `n = Σᵢ ηᵢ⁺(Δt)` events, so `δ⁻` of a combined stream is recovered by
//! inverting the summed `η⁺` (and dually for `δ⁺` from `η⁻`).
//!
//! All functions operate on closures so they apply to any model or
//! combination of models without trait-object ceremony.

use hem_time::{Time, TimeBound};

/// Hard cap on event-count searches.
///
/// Reaching it means the queried model has no positive long-run rate
/// (e.g. `δ⁻(n) = 0` for all `n`), which violates the
/// [`EventModel`](crate::EventModel) contract.
pub const MAX_EVENT_SEARCH: u64 = 1 << 40;

/// Horizon for window-size searches when inverting `η⁻`.
///
/// If the minimum-arrival count has not reached the target within a window
/// of this length, the corresponding `δ⁺` is reported as
/// [`TimeBound::Infinite`]. The value is far beyond any system horizon
/// (harmlessly conservative).
pub const DT_HORIZON: i64 = 1 << 46;

/// `η⁺(Δt)` from `δ⁻(n)` — paper eq. (1).
///
/// Returns 0 for `Δt ≤ 0`; otherwise the largest `n` with `δ⁻(n) < Δt`.
///
/// # Panics
///
/// Panics if the search exceeds [`MAX_EVENT_SEARCH`] events, i.e. the
/// model has no positive long-run event rate.
pub fn eta_plus_from_delta_min(delta_min: &dyn Fn(u64) -> Time, dt: Time) -> u64 {
    if dt <= Time::ZERO {
        return 0;
    }
    // δ⁻(1) = 0 < Δt, so at least one event fits.
    let mut lo = 1u64; // invariant: δ⁻(lo) < Δt
    let mut hi = 2u64;
    while delta_min(hi) < dt {
        lo = hi;
        hi = hi.saturating_mul(2);
        assert!(
            hi <= MAX_EVENT_SEARCH,
            "η⁺ search exceeded {MAX_EVENT_SEARCH} events: model has no positive rate"
        );
    }
    // Now δ⁻(lo) < Δt ≤ δ⁻(hi); binary-search the boundary.
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if delta_min(mid) < dt {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// `η⁻(Δt)` from `δ⁺(n)` — paper eq. (2).
///
/// Returns 0 for `Δt ≤ 0` and whenever `δ⁺(2)` already exceeds `Δt`
/// (in particular for streams with unbounded `δ⁺`).
pub fn eta_minus_from_delta_plus(delta_plus: &dyn Fn(u64) -> TimeBound, dt: Time) -> u64 {
    if dt <= Time::ZERO {
        return 0;
    }
    let dt = TimeBound::from(dt);
    if delta_plus(2) > dt {
        return 0;
    }
    // Find the smallest n with δ⁺(n + 2) > Δt. Invariant: δ⁺(lo + 2) ≤ Δt.
    let mut lo = 0u64;
    let mut hi = 1u64;
    while delta_plus(hi + 2) <= dt {
        lo = hi;
        hi = hi.saturating_mul(2);
        assert!(
            hi <= MAX_EVENT_SEARCH,
            "η⁻ search exceeded {MAX_EVENT_SEARCH} events: δ⁺ does not grow"
        );
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if delta_plus(mid + 2) <= dt {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Pseudo-inverse of `η⁺`: recovers `δ⁻(n)` as
/// `min { Δt ≥ 1 : η⁺(Δt) ≥ n } − 1`.
///
/// `upper_bound` must be a window length already known to satisfy
/// `η⁺(upper_bound) ≥ n` (for an OR-combination, `minᵢ δᵢ⁻(n) + 1` works:
/// putting all `n` events on the single stream with the smallest spread
/// achieves it).
///
/// # Panics
///
/// Panics (debug assertion) if `upper_bound` does not actually admit `n`
/// events.
pub fn delta_min_from_eta_plus(eta_plus: &dyn Fn(Time) -> u64, n: u64, upper_bound: Time) -> Time {
    if n <= 1 {
        return Time::ZERO;
    }
    debug_assert!(
        eta_plus(upper_bound) >= n,
        "upper_bound {upper_bound} does not admit {n} events"
    );
    // Binary search the smallest Δt ∈ [1, upper_bound] with η⁺(Δt) ≥ n.
    let mut lo = Time::ZERO; // invariant: η⁺(lo) < n
    let mut hi = upper_bound; // invariant: η⁺(hi) ≥ n
    while (hi - lo).ticks() > 1 {
        let mid = lo + (hi - lo) / 2;
        if eta_plus(mid) >= n {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi - Time::ONE
}

/// Pseudo-inverse of `η⁻`: recovers `δ⁺(n)` as
/// `min { Δt : η⁻(Δt) ≥ n − 1 }`, or [`TimeBound::Infinite`] when the
/// minimum arrival count never reaches `n − 1` within [`DT_HORIZON`].
///
/// The identity follows from eq. (2): `η⁻(Δt) ≥ m ⟺ δ⁺(m + 1) ≤ Δt`,
/// hence the smallest window guaranteeing `n − 1` events is exactly
/// `δ⁺(n)`.
pub fn delta_plus_from_eta_minus(eta_minus: &dyn Fn(Time) -> u64, n: u64) -> TimeBound {
    if n <= 1 {
        return TimeBound::ZERO;
    }
    let target = n - 1;
    let mut hi = Time::ONE;
    while eta_minus(hi) < target {
        if hi.ticks() > DT_HORIZON {
            return TimeBound::Infinite;
        }
        hi = hi * 2;
    }
    let mut lo = Time::ZERO; // invariant: η⁻(lo) < target
    while (hi - lo).ticks() > 1 {
        let mid = lo + (hi - lo) / 2;
        if eta_minus(mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    TimeBound::Finite(hi)
}

/// The largest `k ≥ 1` with `δ⁻(k) = 0`: the maximum number of events that
/// can arrive simultaneously.
///
/// # Panics
///
/// Panics if more than [`MAX_EVENT_SEARCH`] simultaneous events are
/// possible (an invalid model).
pub fn max_simultaneous_from_delta_min(delta_min: &dyn Fn(u64) -> Time) -> u64 {
    let mut lo = 1u64; // δ⁻(1) = 0 by contract
    let mut hi = 2u64;
    while delta_min(hi) == Time::ZERO {
        lo = hi;
        hi = hi.saturating_mul(2);
        assert!(
            hi <= MAX_EVENT_SEARCH,
            "unbounded simultaneous events: model has no positive rate"
        );
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if delta_min(mid) == Time::ZERO {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    /// δ⁻ of a strictly periodic stream with period `p`.
    fn periodic_delta_min(p: i64) -> impl Fn(u64) -> Time {
        move |n| {
            if n <= 1 {
                Time::ZERO
            } else {
                Time::new(p * (n as i64 - 1))
            }
        }
    }

    fn periodic_delta_plus(p: i64) -> impl Fn(u64) -> TimeBound {
        move |n| {
            if n <= 1 {
                TimeBound::ZERO
            } else {
                TimeBound::finite(p * (n as i64 - 1))
            }
        }
    }

    #[test]
    fn eta_plus_periodic() {
        let d = periodic_delta_min(10);
        // Window of 1 tick: one event. Window of 10: still one (second event
        // is exactly 10 away, and δ⁻(2) = 10 is not < 10). Window of 11: two.
        assert_eq!(eta_plus_from_delta_min(&d, Time::ZERO), 0);
        assert_eq!(eta_plus_from_delta_min(&d, Time::new(1)), 1);
        assert_eq!(eta_plus_from_delta_min(&d, Time::new(10)), 1);
        assert_eq!(eta_plus_from_delta_min(&d, Time::new(11)), 2);
        assert_eq!(eta_plus_from_delta_min(&d, Time::new(100)), 10);
        assert_eq!(eta_plus_from_delta_min(&d, Time::new(101)), 11);
    }

    #[test]
    fn eta_minus_periodic() {
        let d = periodic_delta_plus(10);
        // Eq. (2): η⁻(Δt) = min { n : δ⁺(n+2) > Δt }. For a strict period
        // of 10: η⁻(9) = 0 (δ⁺(2) = 10 > 9), η⁻(10) = 1 (δ⁺(2) = 10 is not
        // > 10, δ⁺(3) = 20 is), η⁻(19) = 1, η⁻(20) = 2.
        assert_eq!(eta_minus_from_delta_plus(&d, Time::ZERO), 0);
        assert_eq!(eta_minus_from_delta_plus(&d, Time::new(9)), 0);
        assert_eq!(eta_minus_from_delta_plus(&d, Time::new(10)), 1);
        assert_eq!(eta_minus_from_delta_plus(&d, Time::new(19)), 1);
        assert_eq!(eta_minus_from_delta_plus(&d, Time::new(20)), 2);
    }

    #[test]
    fn eta_minus_unbounded_delta_plus_is_zero() {
        let d = |n: u64| {
            if n <= 1 {
                TimeBound::ZERO
            } else {
                TimeBound::Infinite
            }
        };
        assert_eq!(eta_minus_from_delta_plus(&d, Time::new(1_000_000)), 0);
    }

    #[test]
    fn delta_min_roundtrip() {
        let d = periodic_delta_min(10);
        let eta = |dt: Time| eta_plus_from_delta_min(&d, dt);
        for n in 2..=20u64 {
            let recovered = delta_min_from_eta_plus(&eta, n, Time::new(1000));
            assert_eq!(recovered, d(n), "n = {n}");
        }
        assert_eq!(delta_min_from_eta_plus(&eta, 0, Time::new(10)), Time::ZERO);
        assert_eq!(delta_min_from_eta_plus(&eta, 1, Time::new(10)), Time::ZERO);
    }

    #[test]
    fn delta_plus_roundtrip() {
        let d = periodic_delta_plus(10);
        let eta = |dt: Time| eta_minus_from_delta_plus(&d, dt);
        for n in 2..=20u64 {
            let recovered = delta_plus_from_eta_minus(&eta, n);
            assert_eq!(recovered, d(n), "n = {n}");
        }
    }

    #[test]
    fn delta_plus_inverse_detects_infinity() {
        let eta = |_dt: Time| 0u64; // no minimum arrivals ever
        assert_eq!(delta_plus_from_eta_minus(&eta, 2), TimeBound::Infinite);
    }

    #[test]
    fn max_simultaneous_bursts() {
        // Bursts of 3 simultaneous events every 100 ticks.
        let d = |n: u64| {
            if n <= 3 {
                Time::ZERO
            } else {
                Time::new(100) * ((n as i64 - 1) / 3)
            }
        };
        assert_eq!(max_simultaneous_from_delta_min(&d), 3);
        let single = periodic_delta_min(10);
        assert_eq!(max_simultaneous_from_delta_min(&single), 1);
    }

    #[test]
    #[should_panic(expected = "no positive rate")]
    fn eta_plus_panics_on_rateless_model() {
        let d = |_n: u64| Time::ZERO;
        let _ = eta_plus_from_delta_min(&d, Time::new(5));
    }
}
