//! The standard event model `(P, J, d_min)` and the sporadic model.

use hem_time::{div_ceil, div_floor, Time, TimeBound};

use crate::{AnalyticCurve, EventModel, ModelError};

/// The classic *standard event model* (SEM) of SymTA/S-style CPA.
///
/// Parameterized by a period `P`, a jitter `J` and a minimum distance
/// `d_min`, the SEM describes every event sequence whose `i`-th event
/// arrives within `[i·P − J, i·P + J]` of a nominal periodic grid while
/// keeping at least `d_min` between consecutive events. Its distance
/// functions are
///
/// ```text
/// δ⁻(n) = max( (n−1)·d_min, (n−1)·P − J )
/// δ⁺(n) = (n−1)·P + J
/// ```
///
/// and the arrival functions have exact closed forms (overridden below),
/// which is what makes SEMs "very efficient" for the analysis (paper §2).
///
/// # Examples
///
/// ```
/// use hem_event_models::{EventModel, StandardEventModel};
/// use hem_time::{Time, TimeBound};
///
/// let m = StandardEventModel::new(Time::new(100), Time::new(250), Time::new(10))?;
/// // Heavy jitter (J > P) produces bursts limited by d_min.
/// assert_eq!(m.delta_min(2), Time::new(10));
/// assert_eq!(m.delta_plus(2), TimeBound::finite(350));
/// assert_eq!(m.eta_plus(Time::new(1)), 1);
/// # Ok::<(), hem_event_models::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StandardEventModel {
    period: Time,
    jitter: Time,
    dmin: Time,
}

impl StandardEventModel {
    /// Creates a standard event model.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] unless `period ≥ 1`,
    /// `jitter ≥ 0` and `0 ≤ dmin ≤ period`. A minimum distance above
    /// the period would make `δ⁻(n)` outgrow `δ⁺(n)` — no event sequence
    /// can sustain a spacing wider than its long-run period.
    pub fn new(period: Time, jitter: Time, dmin: Time) -> Result<Self, ModelError> {
        if period < Time::ONE {
            return Err(ModelError::invalid(format!(
                "period must be at least one tick, got {period}"
            )));
        }
        if jitter.is_negative() {
            return Err(ModelError::invalid(format!(
                "jitter must be non-negative, got {jitter}"
            )));
        }
        if dmin.is_negative() {
            return Err(ModelError::invalid(format!(
                "dmin must be non-negative, got {dmin}"
            )));
        }
        if dmin > period {
            return Err(ModelError::invalid(format!(
                "dmin ({dmin}) must not exceed the period ({period})"
            )));
        }
        Ok(StandardEventModel {
            period,
            jitter,
            dmin,
        })
    }

    /// A strictly periodic stream: `J = 0`, `d_min = 0`.
    ///
    /// # Errors
    ///
    /// Returns an error if `period < 1`.
    pub fn periodic(period: Time) -> Result<Self, ModelError> {
        Self::new(period, Time::ZERO, Time::ZERO)
    }

    /// A periodic stream with jitter: `d_min = 0`.
    ///
    /// # Errors
    ///
    /// Returns an error if `period < 1` or `jitter < 0`.
    pub fn periodic_with_jitter(period: Time, jitter: Time) -> Result<Self, ModelError> {
        Self::new(period, jitter, Time::ZERO)
    }

    /// The period `P`.
    #[must_use]
    pub fn period(&self) -> Time {
        self.period
    }

    /// The jitter `J`.
    #[must_use]
    pub fn jitter(&self) -> Time {
        self.jitter
    }

    /// The minimum distance `d_min`.
    #[must_use]
    pub fn dmin(&self) -> Time {
        self.dmin
    }

    /// The SEM closed form of the output-model calculation `Θ_τ`:
    /// processing by a task with response times `[r⁻, r⁺]` yields
    /// `P' = P`, `J' = J + (r⁺ − r⁻)`,
    /// `d' = max(r⁻, d_min − (r⁺ − r⁻))`.
    ///
    /// The `d'` term is the conservative SEM approximation: consecutive
    /// outputs are separated at least by the back-to-back completion gap
    /// `r⁻`, and an input separation of `d_min` can shrink by at most the
    /// response jitter. (Using `max(d_min, r⁻)` instead would be unsound
    /// for jittery tasks processing sparse streams.)
    ///
    /// The generic δ-recursion ([`crate::ops::OutputModel`]) applied to a
    /// SEM produces curves at least as tight as this closed form and
    /// coincides with it at `n = 2`.
    ///
    /// # Errors
    ///
    /// Returns an error if `r_minus < 0` or `r_minus > r_plus`.
    pub fn propagated(&self, r_minus: Time, r_plus: Time) -> Result<Self, ModelError> {
        if r_minus.is_negative() || r_minus > r_plus {
            return Err(ModelError::invalid(format!(
                "response interval must satisfy 0 ≤ r⁻ ≤ r⁺, got [{r_minus}, {r_plus}]"
            )));
        }
        let response_jitter = r_plus - r_minus;
        Self::new(
            self.period,
            self.jitter + response_jitter,
            r_minus.max((self.dmin - response_jitter).clamp_non_negative()),
        )
    }
}

impl EventModel for StandardEventModel {
    fn delta_min(&self, n: u64) -> Time {
        if n <= 1 {
            return Time::ZERO;
        }
        let n1 = n as i64 - 1;
        let spaced = self.dmin * n1;
        let periodic = self.period * n1 - self.jitter;
        spaced.max(periodic).clamp_non_negative()
    }

    fn delta_plus(&self, n: u64) -> TimeBound {
        if n <= 1 {
            return TimeBound::ZERO;
        }
        let n1 = n as i64 - 1;
        TimeBound::Finite(self.period * n1 + self.jitter)
    }

    fn eta_plus(&self, dt: Time) -> u64 {
        if dt <= Time::ZERO {
            return 0;
        }
        // max { n : (n−1)·P − J < Δt } = ⌊(Δt − 1 + J) / P⌋ + 1
        let from_period =
            div_floor((dt - Time::ONE + self.jitter).ticks(), self.period.ticks()) as u64 + 1;
        if self.dmin >= Time::ONE {
            // max { n : (n−1)·d_min < Δt } = ⌊(Δt − 1) / d_min⌋ + 1
            let from_dmin = div_floor((dt - Time::ONE).ticks(), self.dmin.ticks()) as u64 + 1;
            from_period.min(from_dmin)
        } else {
            from_period
        }
    }

    fn eta_minus(&self, dt: Time) -> u64 {
        if dt <= Time::ZERO {
            return 0;
        }
        // min { n : (n+1)·P + J > Δt } = max(0, ⌈(Δt + 1 − J) / P⌉ − 1)
        let x = (dt + Time::ONE - self.jitter).ticks();
        if x <= 0 {
            return 0;
        }
        (div_ceil(x, self.period.ticks()) - 1).max(0) as u64
    }

    fn max_simultaneous(&self) -> u64 {
        if self.dmin >= Time::ONE {
            1
        } else {
            // Events may coincide while (n−1)·P − J ≤ 0.
            div_floor(self.jitter.ticks(), self.period.ticks()) as u64 + 1
        }
    }

    fn analytic(&self) -> Option<AnalyticCurve> {
        AnalyticCurve::periodic_jitter(self.period, self.jitter, self.dmin)
    }
}

/// A sporadic stream: a minimum inter-arrival distance and no arrival
/// guarantee (`δ⁺ = ∞` for `n ≥ 2`).
///
/// # Examples
///
/// ```
/// use hem_event_models::{EventModel, SporadicModel};
/// use hem_time::{Time, TimeBound};
///
/// let m = SporadicModel::new(Time::new(50))?;
/// assert_eq!(m.delta_min(3), Time::new(100));
/// assert_eq!(m.delta_plus(3), TimeBound::INFINITE);
/// assert_eq!(m.eta_minus(Time::new(1_000)), 0); // nothing is guaranteed
/// # Ok::<(), hem_event_models::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SporadicModel {
    dmin: Time,
}

impl SporadicModel {
    /// Creates a sporadic model with the given minimum inter-arrival time.
    ///
    /// # Errors
    ///
    /// Returns an error if `dmin < 1` (a rate-less sporadic stream would
    /// allow unbounded bursts, violating the `EventModel` contract).
    pub fn new(dmin: Time) -> Result<Self, ModelError> {
        if dmin < Time::ONE {
            return Err(ModelError::invalid(format!(
                "sporadic dmin must be at least one tick, got {dmin}"
            )));
        }
        Ok(SporadicModel { dmin })
    }

    /// The minimum inter-arrival distance.
    #[must_use]
    pub fn dmin(&self) -> Time {
        self.dmin
    }
}

impl EventModel for SporadicModel {
    fn delta_min(&self, n: u64) -> Time {
        if n <= 1 {
            Time::ZERO
        } else {
            self.dmin * (n as i64 - 1)
        }
    }

    fn delta_plus(&self, n: u64) -> TimeBound {
        if n <= 1 {
            TimeBound::ZERO
        } else {
            TimeBound::Infinite
        }
    }

    fn eta_plus(&self, dt: Time) -> u64 {
        if dt <= Time::ZERO {
            0
        } else {
            div_floor((dt - Time::ONE).ticks(), self.dmin.ticks()) as u64 + 1
        }
    }

    fn eta_minus(&self, _dt: Time) -> u64 {
        0
    }

    fn max_simultaneous(&self) -> u64 {
        1
    }

    fn analytic(&self) -> Option<AnalyticCurve> {
        AnalyticCurve::sporadic(self.dmin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert;

    #[test]
    fn rejects_bad_parameters() {
        assert!(StandardEventModel::new(Time::ZERO, Time::ZERO, Time::ZERO).is_err());
        assert!(StandardEventModel::new(Time::new(10), Time::new(-1), Time::ZERO).is_err());
        assert!(StandardEventModel::new(Time::new(10), Time::ZERO, Time::new(-1)).is_err());
        assert!(SporadicModel::new(Time::ZERO).is_err());
    }

    #[test]
    fn periodic_distances() {
        let m = StandardEventModel::periodic(Time::new(250)).unwrap();
        assert_eq!(m.delta_min(1), Time::ZERO);
        assert_eq!(m.delta_min(2), Time::new(250));
        assert_eq!(m.delta_min(5), Time::new(1000));
        assert_eq!(m.delta_plus(5), TimeBound::finite(1000));
    }

    #[test]
    fn jitter_distances() {
        let m = StandardEventModel::periodic_with_jitter(Time::new(100), Time::new(30)).unwrap();
        assert_eq!(m.delta_min(2), Time::new(70));
        assert_eq!(m.delta_plus(2), TimeBound::finite(130));
        // Large jitter clamps δ⁻ at zero.
        let b = StandardEventModel::periodic_with_jitter(Time::new(100), Time::new(250)).unwrap();
        assert_eq!(b.delta_min(2), Time::ZERO);
        assert_eq!(b.delta_min(3), Time::ZERO);
        assert_eq!(b.delta_min(4), Time::new(50));
    }

    #[test]
    fn closed_form_eta_matches_generic_conversion() {
        for (p, j, d) in [
            (250, 0, 0),
            (100, 30, 0),
            (100, 250, 10),
            (7, 13, 3),
            (1, 0, 0),
            (400, 399, 1),
        ] {
            let m = StandardEventModel::new(Time::new(p), Time::new(j), Time::new(d)).unwrap();
            for dt in 0..=1200i64 {
                let dt = Time::new(dt);
                assert_eq!(
                    m.eta_plus(dt),
                    convert::eta_plus_from_delta_min(&|n| m.delta_min(n), dt),
                    "η⁺ mismatch for P={p} J={j} d={d} Δt={dt}"
                );
                assert_eq!(
                    m.eta_minus(dt),
                    convert::eta_minus_from_delta_plus(&|n| m.delta_plus(n), dt),
                    "η⁻ mismatch for P={p} J={j} d={d} Δt={dt}"
                );
            }
        }
    }

    #[test]
    fn max_simultaneous_with_jitter_bursts() {
        // J = 250, P = 100: up to ⌊250/100⌋ + 1 = 3 simultaneous events.
        let m = StandardEventModel::periodic_with_jitter(Time::new(100), Time::new(250)).unwrap();
        assert_eq!(m.max_simultaneous(), 3);
        assert_eq!(
            m.max_simultaneous(),
            convert::max_simultaneous_from_delta_min(&|n| m.delta_min(n))
        );
        // d_min ≥ 1 separates events again.
        let s = StandardEventModel::new(Time::new(100), Time::new(250), Time::new(1)).unwrap();
        assert_eq!(s.max_simultaneous(), 1);
    }

    #[test]
    fn propagation_closed_form() {
        let m = StandardEventModel::periodic(Time::new(250)).unwrap();
        let out = m.propagated(Time::new(10), Time::new(60)).unwrap();
        assert_eq!(out.period(), Time::new(250));
        assert_eq!(out.jitter(), Time::new(50));
        assert_eq!(out.dmin(), Time::new(10));
        assert!(m.propagated(Time::new(20), Time::new(10)).is_err());
        assert!(m.propagated(Time::new(-1), Time::new(10)).is_err());
    }

    #[test]
    fn sporadic_behaviour() {
        let m = SporadicModel::new(Time::new(50)).unwrap();
        assert_eq!(m.dmin(), Time::new(50));
        assert_eq!(m.eta_plus(Time::new(101)), 3);
        assert_eq!(m.eta_plus(Time::new(100)), 2);
        assert_eq!(m.eta_minus(Time::new(10_000)), 0);
        assert_eq!(m.max_simultaneous(), 1);
        assert_eq!(m.delta_plus(2), TimeBound::Infinite);
    }

    #[test]
    fn getters() {
        let m = StandardEventModel::new(Time::new(10), Time::new(2), Time::new(1)).unwrap();
        assert_eq!(m.period(), Time::new(10));
        assert_eq!(m.jitter(), Time::new(2));
        assert_eq!(m.dmin(), Time::new(1));
    }
}
