//! Explicit δ-curve models with periodic extension.

use hem_time::{Time, TimeBound};

use crate::{AnalyticCurve, EventModel, ModelError};

/// An event model given by explicit δ-curve prefixes plus a periodic
/// extension.
///
/// `CurveModel` is the general-purpose representation for streams that no
/// parameterized model captures: OR-combinations, packed frame streams,
/// streams extracted from traces. It stores
///
/// * `δ⁻(n)` for `n ∈ [2, 1 + len(δ⁻ prefix)]`,
/// * `δ⁺(n)` for `n ∈ [2, 1 + len(δ⁺ prefix)]`,
/// * an extension rule `(e, Π)`: beyond its prefix, each curve repeats
///   with `e` additional events costing `Π` additional ticks,
///   `δ(n) = δ(n − k·e) + k·Π`.
///
/// The extension preserves monotonicity and super-additivity as long as
/// the prefix itself is consistent with the long-run rate `Π / e`, which
/// the builder verifies.
///
/// # Examples
///
/// ```
/// use hem_event_models::{CurveBuilder, EventModel};
/// use hem_time::{Time, TimeBound};
///
/// // Bursts of 2 events (1 tick apart) every 100 ticks.
/// let m = CurveBuilder::new()
///     .delta_min_ticks([1, 100, 101])
///     .delta_plus_ticks([99, 100, 199])
///     .extension(2, Time::new(100))
///     .build()?;
/// assert_eq!(m.delta_min(2), Time::new(1));
/// assert_eq!(m.delta_min(6), Time::new(201));   // 101 + 100
/// assert_eq!(m.delta_plus(6), TimeBound::finite(299));
/// assert_eq!(m.eta_plus(Time::new(102)), 4);
/// # Ok::<(), hem_event_models::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CurveModel {
    /// `dmin_prefix[i]` is `δ⁻(i + 2)`.
    dmin_prefix: Vec<Time>,
    /// `dplus_prefix[i]` is `δ⁺(i + 2)`.
    dplus_prefix: Vec<TimeBound>,
    /// Smallest `n` for which `δ⁺(n)` is infinite (monotonicity then makes
    /// every larger `n` infinite too), if any.
    first_infinite_plus: Option<u64>,
    /// Events per extension period.
    events_per_period: u64,
    /// Ticks per extension period.
    period: Time,
}

impl CurveModel {
    /// Snapshot another model into an explicit curve.
    ///
    /// Materializes `δ±(n)` for `n ∈ [2, prefix_events + 1]` and extends
    /// with the given `(events_per_period, period)` rate. Useful to freeze
    /// a lazily-evaluated combination (e.g. an OR-join) so later queries
    /// are O(1).
    ///
    /// The extension is verified against the source model on two full
    /// extension strides past the prefix: the curve's `δ⁻` must not
    /// exceed and its `δ⁺` must not undercut the model's there. This
    /// catches the common mistake of ending the prefix inside a model's
    /// irregular head (e.g. the jitter-clamped region of a standard
    /// event model), where a periodic extension would silently
    /// over-promise separation. For eventually-periodic models whose
    /// tail matches `(events_per_period, period)`, passing this check
    /// makes the snapshot exact everywhere.
    ///
    /// # Errors
    ///
    /// Returns an error if the sampled prefix combined with the extension
    /// violates curve consistency, or if the extension disagrees with the
    /// model within the verified strides (sample with a longer prefix).
    pub fn sample(
        model: &dyn EventModel,
        prefix_events: u64,
        events_per_period: u64,
        period: Time,
    ) -> Result<Self, ModelError> {
        let mut b = CurveBuilder::new().extension(events_per_period, period);
        let prefix_end = prefix_events.max(2) + 1;
        for n in 2..=prefix_end {
            b = b
                .push_delta_min(model.delta_min(n))
                .push_delta_plus(model.delta_plus(n));
        }
        let curve = b.build()?;
        for n in (prefix_end + 1)..=(prefix_end + 2 * events_per_period + 2) {
            if curve.delta_min(n) > model.delta_min(n) {
                return Err(ModelError::inconsistent(format!(
                    "extension over-estimates δ⁻({n}): prefix ends inside the model's \
                     irregular head — sample with a longer prefix"
                )));
            }
            if curve.delta_plus(n) < model.delta_plus(n) {
                return Err(ModelError::inconsistent(format!(
                    "extension under-estimates δ⁺({n}): sample with a longer prefix"
                )));
            }
        }
        Ok(curve)
    }

    /// The stored `δ⁻` prefix (values for `n = 2, 3, …`).
    #[must_use]
    pub fn delta_min_prefix(&self) -> &[Time] {
        &self.dmin_prefix
    }

    /// The stored `δ⁺` prefix (values for `n = 2, 3, …`).
    #[must_use]
    pub fn delta_plus_prefix(&self) -> &[TimeBound] {
        &self.dplus_prefix
    }

    /// The extension rate as `(events, ticks)`.
    #[must_use]
    pub fn extension(&self) -> (u64, Time) {
        (self.events_per_period, self.period)
    }
}

/// Looks up a prefix value with periodic extension.
///
/// `prefix[i]` holds the value for `n = i + 2`; for `n` beyond the prefix
/// the value is `value(n − k·e) + k·Π` for the smallest `k` that lands in
/// the prefix.
fn extended<T, A>(prefix: &[T], e: u64, period: Time, n: u64, add: A) -> T
where
    T: Copy,
    A: Fn(T, Time) -> T,
{
    let last_n = prefix.len() as u64 + 1; // prefix covers n ∈ [2, last_n]
    if n <= last_n {
        return prefix[(n - 2) as usize];
    }
    // Smallest k with n − k·e ≤ last_n  ⇒  k = ⌈(n − last_n) / e⌉.
    let k = (n - last_n).div_ceil(e);
    let idx = n - k * e; // ∈ [last_n − e + 1, last_n], ≥ 2 by construction
    add(prefix[(idx - 2) as usize], period.saturating_mul(k as i64))
}

impl EventModel for CurveModel {
    fn delta_min(&self, n: u64) -> Time {
        if n <= 1 {
            return Time::ZERO;
        }
        extended(
            &self.dmin_prefix,
            self.events_per_period,
            self.period,
            n,
            Time::saturating_add,
        )
    }

    fn delta_plus(&self, n: u64) -> TimeBound {
        if n <= 1 {
            return TimeBound::ZERO;
        }
        if matches!(self.first_infinite_plus, Some(fi) if n >= fi) {
            return TimeBound::Infinite;
        }
        extended(
            &self.dplus_prefix,
            self.events_per_period,
            self.period,
            n,
            TimeBound::saturating_add,
        )
    }

    fn analytic(&self) -> Option<AnalyticCurve> {
        AnalyticCurve::from_curve_model(self)
    }
}

/// Incremental builder for [`CurveModel`].
///
/// Values are appended per `n` starting at `n = 2`; [`CurveBuilder::build`]
/// validates the result.
#[derive(Debug, Clone, Default)]
pub struct CurveBuilder {
    dmin: Vec<Time>,
    dplus: Vec<TimeBound>,
    events_per_period: Option<u64>,
    period: Option<Time>,
}

impl CurveBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one `δ⁻` value (for the next `n`).
    #[must_use]
    pub fn push_delta_min(mut self, v: Time) -> Self {
        self.dmin.push(v);
        self
    }

    /// Appends one `δ⁺` value (for the next `n`).
    #[must_use]
    pub fn push_delta_plus(mut self, v: TimeBound) -> Self {
        self.dplus.push(v);
        self
    }

    /// Sets the whole `δ⁻` prefix from raw tick values (`n = 2, 3, …`).
    #[must_use]
    pub fn delta_min_ticks(mut self, ticks: impl IntoIterator<Item = i64>) -> Self {
        self.dmin = ticks.into_iter().map(Time::new).collect();
        self
    }

    /// Sets the whole `δ⁺` prefix from raw tick values (`n = 2, 3, …`).
    #[must_use]
    pub fn delta_plus_ticks(mut self, ticks: impl IntoIterator<Item = i64>) -> Self {
        self.dplus = ticks.into_iter().map(TimeBound::finite).collect();
        self
    }

    /// Sets the whole `δ⁺` prefix from bounds (`n = 2, 3, …`).
    #[must_use]
    pub fn delta_plus_bounds(mut self, bounds: impl IntoIterator<Item = TimeBound>) -> Self {
        self.dplus = bounds.into_iter().collect();
        self
    }

    /// Sets the periodic extension: `events` extra events per `period`
    /// extra ticks.
    #[must_use]
    pub fn extension(mut self, events: u64, period: Time) -> Self {
        self.events_per_period = Some(events);
        self.period = Some(period);
        self
    }

    /// Validates and builds the [`CurveModel`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if
    ///
    /// * either prefix is empty, or the extension is missing / has
    ///   `events = 0` or `period < 1`,
    /// * a prefix is shorter than the extension stride (the extension
    ///   would index before `n = 2`),
    /// * a curve is non-monotone, negative, or `δ⁻ > δ⁺` on the shared
    ///   prefix,
    /// * the first extended value falls below the last prefix value
    ///   (the extension rate contradicts the prefix tail).
    pub fn build(self) -> Result<CurveModel, ModelError> {
        let e = self
            .events_per_period
            .ok_or_else(|| ModelError::invalid("curve extension not set"))?;
        let period = self
            .period
            .ok_or_else(|| ModelError::invalid("curve extension not set"))?;
        if e == 0 {
            return Err(ModelError::invalid("extension events must be positive"));
        }
        if period < Time::ONE {
            return Err(ModelError::invalid("extension period must be positive"));
        }
        if self.dmin.is_empty() || self.dplus.is_empty() {
            return Err(ModelError::invalid("curve prefixes must be non-empty"));
        }
        if (self.dmin.len() as u64) < e || (self.dplus.len() as u64) < e {
            return Err(ModelError::invalid(format!(
                "curve prefixes must cover at least one extension stride ({e} events)"
            )));
        }
        // Monotone, non-negative.
        let mut prev = Time::ZERO;
        for (i, &v) in self.dmin.iter().enumerate() {
            if v < prev {
                return Err(ModelError::inconsistent(format!(
                    "δ⁻ decreases at n = {}",
                    i + 2
                )));
            }
            if v.is_negative() {
                return Err(ModelError::inconsistent("δ⁻ has a negative value"));
            }
            prev = v;
        }
        let mut prev = TimeBound::ZERO;
        for (i, &v) in self.dplus.iter().enumerate() {
            if v < prev {
                return Err(ModelError::inconsistent(format!(
                    "δ⁺ decreases at n = {}",
                    i + 2
                )));
            }
            prev = v;
        }
        // δ⁻ ≤ δ⁺ on the shared prefix.
        for (i, (&lo, &hi)) in self.dmin.iter().zip(self.dplus.iter()).enumerate() {
            if TimeBound::from(lo) > hi {
                return Err(ModelError::inconsistent(format!(
                    "δ⁻ exceeds δ⁺ at n = {}",
                    i + 2
                )));
            }
        }
        let first_infinite_plus = self
            .dplus
            .iter()
            .position(|v| v.is_infinite())
            .map(|i| i as u64 + 2);
        let model = CurveModel {
            dmin_prefix: self.dmin,
            dplus_prefix: self.dplus,
            first_infinite_plus,
            events_per_period: e,
            period,
        };
        // Extension continues monotonically past each prefix. For δ⁺ the
        // check is skipped when the prefix tail is already infinite — the
        // extension is then never consulted.
        let first_ext_min = model.delta_min(model.dmin_prefix.len() as u64 + 2);
        if first_ext_min < *model.dmin_prefix.last().expect("non-empty") {
            return Err(ModelError::inconsistent(
                "δ⁻ extension falls below the prefix tail",
            ));
        }
        if model.first_infinite_plus.is_none() {
            let first_ext_plus = model.delta_plus(model.dplus_prefix.len() as u64 + 2);
            if first_ext_plus < *model.dplus_prefix.last().expect("non-empty") {
                return Err(ModelError::inconsistent(
                    "δ⁺ extension falls below the prefix tail",
                ));
            }
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StandardEventModel;

    fn burst_model() -> CurveModel {
        // Bursts of 2 events 1 tick apart, burst starts every 100 ticks.
        CurveBuilder::new()
            .delta_min_ticks([1, 100, 101])
            .delta_plus_ticks([99, 100, 199])
            .extension(2, Time::new(100))
            .build()
            .unwrap()
    }

    #[test]
    fn prefix_and_extension_values() {
        let m = burst_model();
        assert_eq!(m.delta_min(0), Time::ZERO);
        assert_eq!(m.delta_min(1), Time::ZERO);
        assert_eq!(m.delta_min(2), Time::new(1));
        assert_eq!(m.delta_min(3), Time::new(100));
        assert_eq!(m.delta_min(4), Time::new(101));
        assert_eq!(m.delta_min(5), Time::new(200)); // 100 + 100
        assert_eq!(m.delta_min(6), Time::new(201)); // 101 + 100
        assert_eq!(m.delta_min(8), Time::new(301)); // 101 + 2·100
        assert_eq!(m.delta_plus(5), TimeBound::finite(200));
        assert_eq!(m.delta_plus(6), TimeBound::finite(299));
    }

    #[test]
    fn eta_from_curve() {
        let m = burst_model();
        assert_eq!(m.eta_plus(Time::new(2)), 2); // one burst
        assert_eq!(m.eta_plus(Time::new(101)), 3);
        assert_eq!(m.eta_plus(Time::new(102)), 4); // two full bursts
        assert_eq!(m.max_simultaneous(), 1);
    }

    #[test]
    fn infinite_delta_plus_extends_infinite() {
        let m = CurveBuilder::new()
            .delta_min_ticks([10, 20])
            .delta_plus_bounds([TimeBound::finite(30), TimeBound::Infinite])
            .extension(1, Time::new(10))
            .build()
            .unwrap();
        assert_eq!(m.delta_plus(3), TimeBound::Infinite);
        assert_eq!(m.delta_plus(10), TimeBound::Infinite);
        assert_eq!(m.eta_minus(Time::new(31)), 1);
        assert_eq!(m.eta_minus(Time::new(1_000_000)), 1);
    }

    #[test]
    fn builder_rejects_inconsistency() {
        // Decreasing δ⁻.
        assert!(CurveBuilder::new()
            .delta_min_ticks([10, 5])
            .delta_plus_ticks([20, 30])
            .extension(1, Time::new(10))
            .build()
            .is_err());
        // δ⁻ above δ⁺.
        assert!(CurveBuilder::new()
            .delta_min_ticks([10])
            .delta_plus_ticks([5])
            .extension(1, Time::new(10))
            .build()
            .is_err());
        // Missing extension.
        assert!(CurveBuilder::new()
            .delta_min_ticks([10])
            .delta_plus_ticks([20])
            .build()
            .is_err());
        // Extension stride longer than prefix.
        assert!(CurveBuilder::new()
            .delta_min_ticks([10])
            .delta_plus_ticks([20])
            .extension(2, Time::new(10))
            .build()
            .is_err());
        // Extension rate contradicting the prefix tail.
        assert!(CurveBuilder::new()
            .delta_min_ticks([0, 1000])
            .delta_plus_ticks([1000, 2000])
            .extension(2, Time::new(10))
            .build()
            .is_err());
        // Zero-event extension.
        assert!(CurveBuilder::new()
            .delta_min_ticks([10])
            .delta_plus_ticks([20])
            .extension(0, Time::new(10))
            .build()
            .is_err());
    }

    #[test]
    fn sample_reproduces_standard_model() {
        let sem = StandardEventModel::periodic_with_jitter(Time::new(100), Time::new(30)).unwrap();
        let curve = CurveModel::sample(&sem, 20, 1, Time::new(100)).unwrap();
        for n in 0..=60u64 {
            assert_eq!(curve.delta_min(n), sem.delta_min(n), "δ⁻({n})");
            assert_eq!(curve.delta_plus(n), sem.delta_plus(n), "δ⁺({n})");
        }
        for dt in 0..=2000i64 {
            assert_eq!(
                curve.eta_plus(Time::new(dt)),
                sem.eta_plus(Time::new(dt)),
                "η⁺({dt})"
            );
        }
    }

    #[test]
    fn accessors() {
        let m = burst_model();
        assert_eq!(m.delta_min_prefix().len(), 3);
        assert_eq!(m.delta_plus_prefix().len(), 3);
        assert_eq!(m.extension(), (2, Time::new(100)));
    }
}
