//! Golden-file tests for the serde-free exporters.
//!
//! Each test builds a deterministic value, serializes it, and compares
//! the byte-exact output against a checked-in golden file. Regenerate
//! the files after an intentional format change with
//! `GOLDEN_REGEN=1 cargo test -p hem-obs --test golden_exports`.

use std::path::PathBuf;

use hem_obs::{
    json, ChromeTrace, ConvergenceTrace, Counter, HistogramData, IterationSnapshot,
    MetricsSnapshot, RtBound, TraceEvent,
};

fn golden(name: &str, actual: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&path, actual).expect("write golden file");
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file; if the change is intentional run \
         `GOLDEN_REGEN=1 cargo test -p hem-obs --test golden_exports`"
    );
}

fn sample_snapshot() -> MetricsSnapshot {
    let mut s = MetricsSnapshot::default();
    for c in Counter::ALL {
        s.counters.insert(c.name(), 0);
    }
    s.counters.insert(Counter::GlobalIterations.name(), 3);
    s.counters.insert(Counter::BusyWindowIterations.name(), 46);
    s.counters.insert(Counter::CacheHits.name(), 10);
    s.counters.insert(Counter::CacheMisses.name(), 54);
    s.counters.insert(Counter::CurveEvaluations.name(), 64);
    s.labeled
        .insert((Counter::BusyWindowIterations.name(), "T1".into()), 7);
    s.labeled.insert(
        (Counter::BusyWindowIterations.name(), "frame \"F1\"".into()),
        39,
    );
    let mut h = HistogramData::default();
    for v in [1, 2, 2, 3, 7, 31] {
        h.record(v);
    }
    s.histograms.insert(hem_obs::HIST_BUSY_WINDOW_ITERATIONS, h);
    s
}

fn sample_chrome_trace() -> ChromeTrace {
    ChromeTrace::new(vec![
        TraceEvent::thread_name(1, "bus"),
        TraceEvent::thread_name(3, "faults"),
        TraceEvent::complete("F1", "bus", 100, 95, 1)
            .arg("instance", 0i64)
            .arg("queued_at", 42u64),
        TraceEvent::complete("F1", "bus", 1_100, 126, 1)
            .arg("instance", 1i64)
            .arg("corrupted", 1i64),
        TraceEvent::instant("perturbed write \"s1\"", "fault", 250, 3).arg("written_at", 250u64),
    ])
}

fn sample_convergence_trace() -> ConvergenceTrace {
    let mut trace = ConvergenceTrace::new();
    for (i, upper) in [(1u64, 95i64), (2, 95)] {
        let mut snap = IterationSnapshot {
            iteration: i,
            response_times: Default::default(),
        };
        snap.response_times
            .insert("frame:F".into(), RtBound::new(79, upper));
        snap.response_times
            .insert("task:rx".into(), RtBound::new(30, 30));
        trace.push(snap);
    }
    trace
}

#[test]
fn metrics_snapshot_json_matches_golden() {
    let out = sample_snapshot().to_json();
    json::validate(&out).expect("valid JSON");
    golden("metrics_snapshot.json", &out);
}

#[test]
fn metrics_snapshot_jsonl_matches_golden() {
    let out = sample_snapshot().to_jsonl();
    json::validate_jsonl(&out).expect("valid JSONL");
    golden("metrics_snapshot.jsonl", &out);
}

#[test]
fn chrome_trace_matches_golden() {
    let out = sample_chrome_trace().to_json();
    json::validate(&out).expect("valid JSON");
    golden("chrome_trace.json", &out);
}

#[test]
fn convergence_trace_jsonl_matches_golden() {
    let out = sample_convergence_trace().to_jsonl();
    json::validate_jsonl(&out).expect("valid JSONL");
    golden("convergence_trace.jsonl", &out);
}

#[test]
fn golden_files_are_loadable_by_downstream_tools() {
    // The chrome trace golden must carry the envelope Perfetto expects.
    let trace = sample_chrome_trace().to_json();
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.ends_with("],\"displayTimeUnit\":\"ms\"}"));
    assert!(trace.contains("\"ph\":\"M\""), "thread metadata present");
    assert!(trace.contains("\"ph\":\"X\""), "complete slices present");
    assert!(trace.contains("\"ph\":\"i\""), "instant markers present");
}
