//! Typed counters, histograms, and their snapshot/export types.

use std::collections::BTreeMap;

use crate::json::write_escaped;

/// The typed counters of the analysis engine and simulator.
///
/// Counters are cheap monotone sums; each has a stable snake_case name
/// used by the JSONL exporter so downstream tooling can rely on keys
/// not changing between runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    /// Completed global fixed-point iterations of the system engine.
    GlobalIterations,
    /// Busy-window fixed-point iterations across all local analyses.
    BusyWindowIterations,
    /// δ±/η± curve evaluations answered by instrumented models.
    CurveEvaluations,
    /// Memoized curve queries answered from a [`CachedModel`] cache.
    ///
    /// [`CachedModel`]: https://docs.rs/hem-event-models
    CacheHits,
    /// Curve queries that missed the cache and recursed into the
    /// wrapped model.
    CacheMisses,
    /// Invocations of the COM packing operator (frame HEM assembly).
    PackingOps,
    /// Events processed by the simulator (transmissions, jobs,
    /// deliveries).
    SimEvents,
    /// Fault-plan perturbations that actually fired during a simulated
    /// run (corrupted instances, rogue transmissions, perturbed
    /// activations).
    FaultInjections,
    /// Per-entity busy-window analyses the incremental engine replayed
    /// from a warm-start snapshot instead of recomputing (one per clean
    /// entity per global iteration).
    WarmStartHits,
    /// Resources inside the damage cone of a warm-started run (recorded
    /// once per incremental analysis; equals the total resource count
    /// on a cold run or full fallback).
    ConeSize,
    /// Incremental analyses that fell back to a full from-scratch run
    /// (no usable snapshot, structural change, config change, or
    /// dependency cycles).
    FullFallbacks,
    /// Sessions opened on the analysis server (monotone count of
    /// `open` requests that created or recovered a session).
    SessionsOpen,
    /// Sessions rebuilt from their write-ahead log — at server startup,
    /// after a crash, or when a poisoned session was quarantined.
    WalRecoveries,
    /// Requests rejected with an explicit load-shedding response
    /// because the server's bounded work queue was full.
    RequestsShed,
    /// Requests answered with the last materialized (stale) result
    /// because recomputation exceeded the request deadline.
    StaleServed,
    /// WAL `sync_all` calls that failed before a mutation could be
    /// acknowledged (the append is rolled back and the client sees an
    /// explicit error instead of a silent durability hole).
    FsyncFailures,
    /// Session checkpoints written: snapshot of the event log fsynced
    /// to a temp file, atomically renamed under a generation number,
    /// and the WAL tail truncated.
    Checkpoints,
    /// Bytes of WAL reclaimed by checkpoint compaction (sum of
    /// truncated tail lengths).
    CompactedBytes,
    /// Storage faults injected by the deterministic chaos layer (torn
    /// writes, short reads, dropped fsyncs, ENOSPC). Always zero on
    /// real storage.
    InjectedFaults,
    /// TCP connections accepted by the serving layer (connections that
    /// were greeted with a shed notice still count — they were
    /// accepted before being turned away).
    ConnectionsAccepted,
    /// Resolved event models the engine replaced with a closed-form
    /// analytic curve (one per model per sequential resolution; see
    /// `docs/CURVES.md`).
    AnalyticLifts,
    /// Resolved event models with no exact analytic lift that stayed on
    /// the generic memoized path while the fast path was enabled.
    AnalyticFallbacks,
    /// Candidate configurations enumerated by the exploration engine
    /// (every candidate counts, including pruned and invalid ones; see
    /// `docs/EXPLORATION.md`).
    CandidatesVisited,
    /// Candidates rejected by a cheap necessary test before any fixed
    /// point ran.
    CandidatesPruned,
    /// Analyzed candidates whose fixed point reused the warm-start
    /// snapshot of the previous candidate in the visit order.
    ExploreWarmHits,
}

impl Counter {
    /// Every counter, in export order.
    pub const ALL: [Counter; 25] = [
        Counter::GlobalIterations,
        Counter::BusyWindowIterations,
        Counter::CurveEvaluations,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::PackingOps,
        Counter::SimEvents,
        Counter::FaultInjections,
        Counter::WarmStartHits,
        Counter::ConeSize,
        Counter::FullFallbacks,
        Counter::SessionsOpen,
        Counter::WalRecoveries,
        Counter::RequestsShed,
        Counter::StaleServed,
        Counter::FsyncFailures,
        Counter::Checkpoints,
        Counter::CompactedBytes,
        Counter::InjectedFaults,
        Counter::ConnectionsAccepted,
        Counter::AnalyticLifts,
        Counter::AnalyticFallbacks,
        Counter::CandidatesVisited,
        Counter::CandidatesPruned,
        Counter::ExploreWarmHits,
    ];

    /// The stable snake_case export name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::GlobalIterations => "global_iterations",
            Counter::BusyWindowIterations => "busy_window_iterations",
            Counter::CurveEvaluations => "curve_evaluations",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::PackingOps => "packing_ops",
            Counter::SimEvents => "sim_events",
            Counter::FaultInjections => "fault_injections",
            Counter::WarmStartHits => "warm_start_hits",
            Counter::ConeSize => "cone_size",
            Counter::FullFallbacks => "full_fallbacks",
            Counter::SessionsOpen => "sessions_open",
            Counter::WalRecoveries => "wal_recoveries",
            Counter::RequestsShed => "requests_shed",
            Counter::StaleServed => "stale_served",
            Counter::FsyncFailures => "fsync_failures",
            Counter::Checkpoints => "checkpoints",
            Counter::CompactedBytes => "compacted_bytes",
            Counter::InjectedFaults => "injected_faults",
            Counter::ConnectionsAccepted => "connections_accepted",
            Counter::AnalyticLifts => "analytic_lifts",
            Counter::AnalyticFallbacks => "analytic_fallbacks",
            Counter::CandidatesVisited => "candidates_visited",
            Counter::CandidatesPruned => "candidates_pruned",
            Counter::ExploreWarmHits => "explore_warm_hits",
        }
    }

    pub(crate) fn index(self) -> usize {
        Counter::ALL
            .iter()
            .position(|c| *c == self)
            .expect("listed")
    }
}

/// The typed gauges of the serving layer.
///
/// Unlike [`Counter`]s, gauges are point-in-time levels that can go
/// down as well as up (queue depth) or are overwritten wholesale on
/// each refresh (WAL bytes). Each has a stable snake_case export name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Gauge {
    /// Sessions currently open on the analysis server.
    SessionsLive,
    /// Requests currently waiting in the server's bounded work queue.
    QueueDepth,
    /// Total bytes across all live session write-ahead logs.
    WalBytes,
    /// Highest checkpoint generation written by any live session (0
    /// before the first checkpoint).
    CheckpointGeneration,
    /// Requests handled since the server core was constructed — a
    /// logical uptime clock that advances once per request, so it is
    /// deterministic where a wall clock would not be.
    UptimeTicks,
}

impl Gauge {
    /// Every gauge, in export order.
    pub const ALL: [Gauge; 5] = [
        Gauge::SessionsLive,
        Gauge::QueueDepth,
        Gauge::WalBytes,
        Gauge::CheckpointGeneration,
        Gauge::UptimeTicks,
    ];

    /// The stable snake_case export name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Gauge::SessionsLive => "sessions_live",
            Gauge::QueueDepth => "queue_depth",
            Gauge::WalBytes => "wal_bytes",
            Gauge::CheckpointGeneration => "checkpoint_generation",
            Gauge::UptimeTicks => "uptime_ticks",
        }
    }

    pub(crate) fn index(self) -> usize {
        Gauge::ALL.iter().position(|g| *g == self).expect("listed")
    }
}

/// A fixed-bucket power-of-two histogram of `u64` samples.
///
/// Bucket `i` counts samples whose value needs `i` bits (bucket 0 is
/// the value 0, bucket 1 is 1, bucket 2 is 2–3, bucket 3 is 4–7, …).
/// Log-spaced buckets keep recording O(1) and allocation-free while
/// still answering "are busy windows converging in 3 iterations or
/// 300?".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramData {
    /// Per-bucket sample counts (`buckets[i]` ⇔ values in `[2^(i-1), 2^i)`).
    pub buckets: [u64; 65],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl Default for HistogramData {
    fn default() -> Self {
        HistogramData {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl HistogramData {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = 64 - value.leading_zeros() as usize;
        self.buckets[bucket] += 1;
        self.sum += value;
        self.min = if self.count == 0 {
            value
        } else {
            self.min.min(value)
        };
        self.max = self.max.max(value);
        self.count += 1;
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper estimate of the `q`-quantile sample (`0.0 < q <= 1.0`).
    ///
    /// Exact for the edge cases tooling hits constantly: an empty
    /// histogram reports 0, a single sample reports that sample, and a
    /// histogram whose samples are all equal reports that value. For
    /// the general case the estimate is the lower bound of the bucket
    /// holding the rank-`ceil(q * count)` sample, clamped to
    /// `[min, max]` — always a real, finite `u64`, never NaN.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if self.count == 1 || self.min == self.max {
            return self.min;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                return lower.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The median sample (see [`HistogramData::percentile`]).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// The 99th-percentile sample (see [`HistogramData::percentile`]).
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Folds another histogram into this one.
    ///
    /// Bucket counts, totals, and extrema combine commutatively, so
    /// merging per-worker histograms yields the same data regardless of
    /// worker scheduling — the property the parallel engine's
    /// determinism guarantee rests on.
    pub fn merge(&mut self, other: &HistogramData) {
        if other.count == 0 {
            return;
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
    }
}

/// A point-in-time copy of all recorded metrics.
///
/// Produced by [`MemoryRecorder::snapshot`](crate::MemoryRecorder::snapshot);
/// exported with [`MetricsSnapshot::to_jsonl`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Totals of each typed counter (export name → value), zero
    /// counters included so consumers see a stable key set.
    pub counters: BTreeMap<&'static str, u64>,
    /// Current levels of each typed gauge (export name → value).
    pub gauges: BTreeMap<&'static str, u64>,
    /// Labeled counter breakdowns: (export name, label) → value, e.g.
    /// busy-window iterations per task.
    pub labeled: BTreeMap<(&'static str, String), u64>,
    /// Named histograms (e.g. span durations in microseconds,
    /// busy-window iterations per fixed point).
    pub histograms: BTreeMap<&'static str, HistogramData>,
}

impl MetricsSnapshot {
    /// The total of a typed counter (0 when never incremented).
    #[must_use]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c.name()).copied().unwrap_or(0)
    }

    /// The current level of a typed gauge (0 when never set).
    #[must_use]
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges.get(g.name()).copied().unwrap_or(0)
    }

    /// The labeled sub-total of a typed counter.
    #[must_use]
    pub fn labeled_counter(&self, c: Counter, label: &str) -> u64 {
        self.labeled
            .get(&(c.name(), label.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Folds another snapshot into this one (counters and labeled
    /// breakdowns add, histograms merge bucket-wise, gauges take the
    /// other snapshot's value — it is the more recent level).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name, *value);
        }
        for (key, value) in &other.labeled {
            *self.labeled.entry(key.clone()).or_insert(0) += value;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
    }

    /// Serializes the snapshot as JSONL: one self-describing JSON
    /// object per line.
    ///
    /// Line shapes:
    ///
    /// ```json
    /// {"type":"counter","name":"cache_hits","value":123}
    /// {"type":"gauge","name":"queue_depth","value":3}
    /// {"type":"counter","name":"busy_window_iterations","label":"T1","value":7}
    /// {"type":"histogram","name":"span_us/global_iteration","count":4,"sum":912,"min":101,"max":458,"mean":228.0,"p50":128,"p99":458}
    /// ```
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            write_escaped(&mut out, name);
            out.push_str(&format!(",\"value\":{value}}}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            write_escaped(&mut out, name);
            out.push_str(&format!(",\"value\":{value}}}\n"));
        }
        for ((name, label), value) in &self.labeled {
            out.push_str("{\"type\":\"counter\",\"name\":");
            write_escaped(&mut out, name);
            out.push_str(",\"label\":");
            write_escaped(&mut out, label);
            out.push_str(&format!(",\"value\":{value}}}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            write_escaped(&mut out, name);
            out.push_str(&format!(
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p99\":{}}}\n",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.p50(),
                h.p99()
            ));
        }
        out
    }

    /// Serializes the snapshot as one JSON object (counters nested
    /// under `"counters"`, gauges under `"gauges"`, labeled breakdowns
    /// under `"labeled"`, histogram summaries under `"histograms"`).
    /// Used by the `BENCH_analysis.json` profile format.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            out.push_str(&format!(":{value}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            out.push_str(&format!(":{value}"));
        }
        out.push_str("},\"labeled\":{");
        let mut first = true;
        for ((name, label), value) in &self.labeled {
            if !first {
                out.push(',');
            }
            first = false;
            write_escaped(&mut out, &format!("{name}/{label}"));
            out.push_str(&format!(":{value}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p99\":{}}}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.p50(),
                h.p99()
            ));
        }
        out.push_str("}}");
        out
    }

    /// Serializes the snapshot in the Prometheus text exposition
    /// format (version 0.0.4): counters and gauges as single samples
    /// with `# TYPE` headers, labeled counter breakdowns as extra
    /// samples of the parent family, and histograms as summaries with
    /// `quantile` samples plus `_sum`/`_count`.
    ///
    /// Metric names are sanitized to `[a-zA-Z0-9_:]` (every other byte
    /// becomes `_`), label values are escaped per the exposition
    /// format. Output order follows the snapshot's sorted maps, so the
    /// text is deterministic.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        }
        fn escape_label(value: &str) -> String {
            let mut out = String::with_capacity(value.len());
            for c in value.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    other => out.push(other),
                }
            }
            out
        }
        let mut out = String::new();
        for (name, value) in &self.counters {
            let metric = sanitize(name);
            out.push_str(&format!("# TYPE {metric} counter\n{metric} {value}\n"));
            for ((labeled_name, label), labeled_value) in &self.labeled {
                if labeled_name == name {
                    out.push_str(&format!(
                        "{metric}{{label=\"{}\"}} {labeled_value}\n",
                        escape_label(label)
                    ));
                }
            }
        }
        for (name, value) in &self.gauges {
            let metric = sanitize(name);
            out.push_str(&format!("# TYPE {metric} gauge\n{metric} {value}\n"));
        }
        for (name, h) in &self.histograms {
            let metric = sanitize(name);
            out.push_str(&format!(
                "# TYPE {metric} summary\n\
                 {metric}{{quantile=\"0.5\"}} {}\n\
                 {metric}{{quantile=\"0.99\"}} {}\n\
                 {metric}_sum {}\n\
                 {metric}_count {}\n",
                h.p50(),
                h.p99(),
                h.sum,
                h.count
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn counter_names_are_unique_and_stable() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
        assert_eq!(Counter::CacheHits.name(), "cache_hits");
        assert_eq!(Counter::CacheHits.index(), 3);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = HistogramData::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 8);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.sum, 1049);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 2); // 4, 7
        assert_eq!(h.buckets[4], 1); // 8..16
        assert_eq!(h.buckets[11], 1); // 1024..2048
        assert!((h.mean() - 1049.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert_eq!(HistogramData::default().mean(), 0.0);
    }

    #[test]
    fn gauge_names_are_unique_and_stable() {
        let mut names: Vec<&str> = Gauge::ALL.iter().map(|g| g.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Gauge::ALL.len());
        assert_eq!(Gauge::QueueDepth.name(), "queue_depth");
        assert_eq!(Gauge::QueueDepth.index(), 1);
    }

    #[test]
    fn percentiles_are_exact_on_empty_and_single_sample() {
        let empty = HistogramData::default();
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p99(), 0);
        let mut one = HistogramData::default();
        one.record(37);
        assert_eq!(one.p50(), 37);
        assert_eq!(one.p99(), 37);
        let mut same = HistogramData::default();
        same.record(9);
        same.record(9);
        same.record(9);
        assert_eq!(same.p50(), 9);
        assert_eq!(same.p99(), 9);
    }

    #[test]
    fn percentiles_walk_buckets_and_stay_in_range() {
        let mut h = HistogramData::default();
        for v in [1u64, 2, 2, 3, 7, 31] {
            h.record(v);
        }
        // rank ceil(0.5*6)=3 lands in bucket [2,4) → lower bound 2.
        assert_eq!(h.p50(), 2);
        // rank 6 lands in bucket [16,32) → lower bound 16, within [1,31].
        assert_eq!(h.p99(), 16);
        // Estimates never escape the observed range, even for q=1.0.
        assert!(h.percentile(1.0) <= h.max);
        assert!(h.percentile(0.01) >= h.min);
        // Large samples do not overflow the bucket lower-bound shift.
        let mut big = HistogramData::default();
        big.record(0);
        big.record(u64::MAX);
        assert!(big.p99() <= u64::MAX);
    }

    #[test]
    fn percentile_fields_in_exports_are_finite_json() {
        // Empty histograms must not smuggle NaN into the JSON output.
        let mut s = MetricsSnapshot::default();
        s.histograms
            .insert("span_us/empty", HistogramData::default());
        let json_out = s.to_json();
        json::validate(&json_out).expect("valid JSON");
        assert!(!json_out.contains("NaN"));
        assert!(json_out.contains("\"p50\":0,\"p99\":0"));
        json::validate_jsonl(&s.to_jsonl()).expect("valid JSONL");
    }

    #[test]
    fn prometheus_exposition_is_deterministic_and_escaped() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert(Counter::CacheHits.name(), 12);
        s.gauges.insert(Gauge::QueueDepth.name(), 3);
        s.labeled
            .insert((Counter::CacheHits.name(), "frame \"F1\"".into()), 5);
        let mut h = HistogramData::default();
        h.record(4);
        s.histograms.insert("service_us/analyze", h);
        let text = s.to_prometheus();
        assert_eq!(text, s.to_prometheus());
        assert!(text.contains("# TYPE cache_hits counter\ncache_hits 12\n"));
        assert!(text.contains("cache_hits{label=\"frame \\\"F1\\\"\"} 5\n"));
        assert!(text.contains("# TYPE queue_depth gauge\nqueue_depth 3\n"));
        // The histogram name's '/' is sanitized for Prometheus.
        assert!(text.contains("# TYPE service_us_analyze summary\n"));
        assert!(text.contains("service_us_analyze{quantile=\"0.5\"} 4\n"));
        assert!(text.contains("service_us_analyze_sum 4\nservice_us_analyze_count 1\n"));
    }

    #[test]
    fn histogram_merge_equals_interleaved_recording() {
        let mut a = HistogramData::default();
        let mut b = HistogramData::default();
        let mut whole = HistogramData::default();
        for v in [3, 0, 17, 255] {
            a.record(v);
            whole.record(v);
        }
        for v in [1, 9, 1024] {
            b.record(v);
            whole.record(v);
        }
        let mut merged = HistogramData::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, whole);
        // Merging an empty histogram is a no-op; merging into an empty
        // one copies.
        merged.merge(&HistogramData::default());
        assert_eq!(merged, whole);
        let mut fresh = HistogramData::default();
        fresh.merge(&whole);
        assert_eq!(fresh, whole);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_histograms() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert(Counter::CacheHits.name(), 2);
        a.labeled
            .insert((Counter::BusyWindowIterations.name(), "T1".into()), 5);
        let mut b = MetricsSnapshot::default();
        b.counters.insert(Counter::CacheHits.name(), 3);
        b.counters.insert(Counter::CacheMisses.name(), 1);
        b.labeled
            .insert((Counter::BusyWindowIterations.name(), "T1".into()), 2);
        let mut h = HistogramData::default();
        h.record(4);
        b.histograms.insert("span_us/test", h.clone());
        a.merge(&b);
        assert_eq!(a.counter(Counter::CacheHits), 5);
        assert_eq!(a.counter(Counter::CacheMisses), 1);
        assert_eq!(a.labeled_counter(Counter::BusyWindowIterations, "T1"), 7);
        assert_eq!(a.histograms["span_us/test"], h);
    }

    #[test]
    fn snapshot_exports_valid_json() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert(Counter::CacheHits.name(), 12);
        s.labeled
            .insert((Counter::BusyWindowIterations.name(), "T1\"x".into()), 3);
        let mut h = HistogramData::default();
        h.record(5);
        s.histograms.insert("span_us/test", h);
        json::validate_jsonl(&s.to_jsonl()).expect("valid JSONL");
        json::validate(&s.to_json()).expect("valid JSON");
        assert_eq!(s.counter(Counter::CacheHits), 12);
        assert_eq!(s.labeled_counter(Counter::BusyWindowIterations, "T1\"x"), 3);
        assert_eq!(s.counter(Counter::SimEvents), 0);
    }
}
