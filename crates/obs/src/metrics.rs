//! Typed counters, histograms, and their snapshot/export types.

use std::collections::BTreeMap;

use crate::json::write_escaped;

/// The typed counters of the analysis engine and simulator.
///
/// Counters are cheap monotone sums; each has a stable snake_case name
/// used by the JSONL exporter so downstream tooling can rely on keys
/// not changing between runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    /// Completed global fixed-point iterations of the system engine.
    GlobalIterations,
    /// Busy-window fixed-point iterations across all local analyses.
    BusyWindowIterations,
    /// δ±/η± curve evaluations answered by instrumented models.
    CurveEvaluations,
    /// Memoized curve queries answered from a [`CachedModel`] cache.
    ///
    /// [`CachedModel`]: https://docs.rs/hem-event-models
    CacheHits,
    /// Curve queries that missed the cache and recursed into the
    /// wrapped model.
    CacheMisses,
    /// Invocations of the COM packing operator (frame HEM assembly).
    PackingOps,
    /// Events processed by the simulator (transmissions, jobs,
    /// deliveries).
    SimEvents,
    /// Fault-plan perturbations that actually fired during a simulated
    /// run (corrupted instances, rogue transmissions, perturbed
    /// activations).
    FaultInjections,
    /// Per-entity busy-window analyses the incremental engine replayed
    /// from a warm-start snapshot instead of recomputing (one per clean
    /// entity per global iteration).
    WarmStartHits,
    /// Resources inside the damage cone of a warm-started run (recorded
    /// once per incremental analysis; equals the total resource count
    /// on a cold run or full fallback).
    ConeSize,
    /// Incremental analyses that fell back to a full from-scratch run
    /// (no usable snapshot, structural change, config change, or
    /// dependency cycles).
    FullFallbacks,
    /// Sessions opened on the analysis server (monotone count of
    /// `open` requests that created or recovered a session).
    SessionsOpen,
    /// Sessions rebuilt from their write-ahead log — at server startup,
    /// after a crash, or when a poisoned session was quarantined.
    WalRecoveries,
    /// Requests rejected with an explicit load-shedding response
    /// because the server's bounded work queue was full.
    RequestsShed,
    /// Requests answered with the last materialized (stale) result
    /// because recomputation exceeded the request deadline.
    StaleServed,
    /// WAL `sync_all` calls that failed before a mutation could be
    /// acknowledged (the append is rolled back and the client sees an
    /// explicit error instead of a silent durability hole).
    FsyncFailures,
    /// Session checkpoints written: snapshot of the event log fsynced
    /// to a temp file, atomically renamed under a generation number,
    /// and the WAL tail truncated.
    Checkpoints,
    /// Bytes of WAL reclaimed by checkpoint compaction (sum of
    /// truncated tail lengths).
    CompactedBytes,
    /// Storage faults injected by the deterministic chaos layer (torn
    /// writes, short reads, dropped fsyncs, ENOSPC). Always zero on
    /// real storage.
    InjectedFaults,
}

impl Counter {
    /// Every counter, in export order.
    pub const ALL: [Counter; 19] = [
        Counter::GlobalIterations,
        Counter::BusyWindowIterations,
        Counter::CurveEvaluations,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::PackingOps,
        Counter::SimEvents,
        Counter::FaultInjections,
        Counter::WarmStartHits,
        Counter::ConeSize,
        Counter::FullFallbacks,
        Counter::SessionsOpen,
        Counter::WalRecoveries,
        Counter::RequestsShed,
        Counter::StaleServed,
        Counter::FsyncFailures,
        Counter::Checkpoints,
        Counter::CompactedBytes,
        Counter::InjectedFaults,
    ];

    /// The stable snake_case export name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::GlobalIterations => "global_iterations",
            Counter::BusyWindowIterations => "busy_window_iterations",
            Counter::CurveEvaluations => "curve_evaluations",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::PackingOps => "packing_ops",
            Counter::SimEvents => "sim_events",
            Counter::FaultInjections => "fault_injections",
            Counter::WarmStartHits => "warm_start_hits",
            Counter::ConeSize => "cone_size",
            Counter::FullFallbacks => "full_fallbacks",
            Counter::SessionsOpen => "sessions_open",
            Counter::WalRecoveries => "wal_recoveries",
            Counter::RequestsShed => "requests_shed",
            Counter::StaleServed => "stale_served",
            Counter::FsyncFailures => "fsync_failures",
            Counter::Checkpoints => "checkpoints",
            Counter::CompactedBytes => "compacted_bytes",
            Counter::InjectedFaults => "injected_faults",
        }
    }

    pub(crate) fn index(self) -> usize {
        Counter::ALL
            .iter()
            .position(|c| *c == self)
            .expect("listed")
    }
}

/// A fixed-bucket power-of-two histogram of `u64` samples.
///
/// Bucket `i` counts samples whose value needs `i` bits (bucket 0 is
/// the value 0, bucket 1 is 1, bucket 2 is 2–3, bucket 3 is 4–7, …).
/// Log-spaced buckets keep recording O(1) and allocation-free while
/// still answering "are busy windows converging in 3 iterations or
/// 300?".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramData {
    /// Per-bucket sample counts (`buckets[i]` ⇔ values in `[2^(i-1), 2^i)`).
    pub buckets: [u64; 65],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl Default for HistogramData {
    fn default() -> Self {
        HistogramData {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl HistogramData {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = 64 - value.leading_zeros() as usize;
        self.buckets[bucket] += 1;
        self.sum += value;
        self.min = if self.count == 0 {
            value
        } else {
            self.min.min(value)
        };
        self.max = self.max.max(value);
        self.count += 1;
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram into this one.
    ///
    /// Bucket counts, totals, and extrema combine commutatively, so
    /// merging per-worker histograms yields the same data regardless of
    /// worker scheduling — the property the parallel engine's
    /// determinism guarantee rests on.
    pub fn merge(&mut self, other: &HistogramData) {
        if other.count == 0 {
            return;
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
    }
}

/// A point-in-time copy of all recorded metrics.
///
/// Produced by [`MemoryRecorder::snapshot`](crate::MemoryRecorder::snapshot);
/// exported with [`MetricsSnapshot::to_jsonl`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Totals of each typed counter (export name → value), zero
    /// counters included so consumers see a stable key set.
    pub counters: BTreeMap<&'static str, u64>,
    /// Labeled counter breakdowns: (export name, label) → value, e.g.
    /// busy-window iterations per task.
    pub labeled: BTreeMap<(&'static str, String), u64>,
    /// Named histograms (e.g. span durations in microseconds,
    /// busy-window iterations per fixed point).
    pub histograms: BTreeMap<&'static str, HistogramData>,
}

impl MetricsSnapshot {
    /// The total of a typed counter (0 when never incremented).
    #[must_use]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c.name()).copied().unwrap_or(0)
    }

    /// The labeled sub-total of a typed counter.
    #[must_use]
    pub fn labeled_counter(&self, c: Counter, label: &str) -> u64 {
        self.labeled
            .get(&(c.name(), label.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Folds another snapshot into this one (counters and labeled
    /// breakdowns add, histograms merge bucket-wise).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name).or_insert(0) += value;
        }
        for (key, value) in &other.labeled {
            *self.labeled.entry(key.clone()).or_insert(0) += value;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
    }

    /// Serializes the snapshot as JSONL: one self-describing JSON
    /// object per line.
    ///
    /// Line shapes:
    ///
    /// ```json
    /// {"type":"counter","name":"cache_hits","value":123}
    /// {"type":"counter","name":"busy_window_iterations","label":"T1","value":7}
    /// {"type":"histogram","name":"span_us/global_iteration","count":4,"sum":912,"min":101,"max":458,"mean":228.0}
    /// ```
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            write_escaped(&mut out, name);
            out.push_str(&format!(",\"value\":{value}}}\n"));
        }
        for ((name, label), value) in &self.labeled {
            out.push_str("{\"type\":\"counter\",\"name\":");
            write_escaped(&mut out, name);
            out.push_str(",\"label\":");
            write_escaped(&mut out, label);
            out.push_str(&format!(",\"value\":{value}}}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            write_escaped(&mut out, name);
            out.push_str(&format!(
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3}}}\n",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean()
            ));
        }
        out
    }

    /// Serializes the snapshot as one JSON object (counters nested
    /// under `"counters"`, labeled breakdowns under `"labeled"`,
    /// histogram summaries under `"histograms"`). Used by the
    /// `BENCH_analysis.json` profile format.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            out.push_str(&format!(":{value}"));
        }
        out.push_str("},\"labeled\":{");
        let mut first = true;
        for ((name, label), value) in &self.labeled {
            if !first {
                out.push(',');
            }
            first = false;
            write_escaped(&mut out, &format!("{name}/{label}"));
            out.push_str(&format!(":{value}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3}}}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean()
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn counter_names_are_unique_and_stable() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
        assert_eq!(Counter::CacheHits.name(), "cache_hits");
        assert_eq!(Counter::CacheHits.index(), 3);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = HistogramData::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 8);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.sum, 1049);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 2); // 4, 7
        assert_eq!(h.buckets[4], 1); // 8..16
        assert_eq!(h.buckets[11], 1); // 1024..2048
        assert!((h.mean() - 1049.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert_eq!(HistogramData::default().mean(), 0.0);
    }

    #[test]
    fn histogram_merge_equals_interleaved_recording() {
        let mut a = HistogramData::default();
        let mut b = HistogramData::default();
        let mut whole = HistogramData::default();
        for v in [3, 0, 17, 255] {
            a.record(v);
            whole.record(v);
        }
        for v in [1, 9, 1024] {
            b.record(v);
            whole.record(v);
        }
        let mut merged = HistogramData::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, whole);
        // Merging an empty histogram is a no-op; merging into an empty
        // one copies.
        merged.merge(&HistogramData::default());
        assert_eq!(merged, whole);
        let mut fresh = HistogramData::default();
        fresh.merge(&whole);
        assert_eq!(fresh, whole);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_histograms() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert(Counter::CacheHits.name(), 2);
        a.labeled
            .insert((Counter::BusyWindowIterations.name(), "T1".into()), 5);
        let mut b = MetricsSnapshot::default();
        b.counters.insert(Counter::CacheHits.name(), 3);
        b.counters.insert(Counter::CacheMisses.name(), 1);
        b.labeled
            .insert((Counter::BusyWindowIterations.name(), "T1".into()), 2);
        let mut h = HistogramData::default();
        h.record(4);
        b.histograms.insert("span_us/test", h.clone());
        a.merge(&b);
        assert_eq!(a.counter(Counter::CacheHits), 5);
        assert_eq!(a.counter(Counter::CacheMisses), 1);
        assert_eq!(a.labeled_counter(Counter::BusyWindowIterations, "T1"), 7);
        assert_eq!(a.histograms["span_us/test"], h);
    }

    #[test]
    fn snapshot_exports_valid_json() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert(Counter::CacheHits.name(), 12);
        s.labeled
            .insert((Counter::BusyWindowIterations.name(), "T1\"x".into()), 3);
        let mut h = HistogramData::default();
        h.record(5);
        s.histograms.insert("span_us/test", h);
        json::validate_jsonl(&s.to_jsonl()).expect("valid JSONL");
        json::validate(&s.to_json()).expect("valid JSON");
        assert_eq!(s.counter(Counter::CacheHits), 12);
        assert_eq!(s.labeled_counter(Counter::BusyWindowIterations, "T1\"x"), 3);
        assert_eq!(s.counter(Counter::SimEvents), 0);
    }
}
