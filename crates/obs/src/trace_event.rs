//! Chrome `trace_event` records and their JSON export.
//!
//! The simulator and analysis engine emit [`TraceEvent`]s; a collected
//! [`ChromeTrace`] serializes to the Trace Event Format understood by
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`. Only
//! the small subset the project needs is modeled: complete (`X`) slices,
//! instant (`i`) markers, and thread-name metadata (`M`).

use crate::json::write_escaped;

/// An argument value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An integer argument.
    Int(i64),
    /// A string argument.
    Str(String),
    /// A float argument.
    Float(f64),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}

/// The event phases the exporters emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete slice with a duration (`"ph":"X"`).
    Complete,
    /// An instant marker (`"ph":"i"`, thread scope).
    Instant,
    /// Metadata (`"ph":"M"`), e.g. `thread_name`.
    Metadata,
}

/// One Chrome trace event.
///
/// Timestamps and durations are in microseconds, per the Trace Event
/// Format. Simulator exports map one virtual tick to one microsecond so
/// traces are deterministic; analysis spans use real wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (slice label in the viewer).
    pub name: String,
    /// Comma-free category tag (used for filtering in the viewer).
    pub cat: &'static str,
    /// Event phase.
    pub ph: Phase,
    /// Timestamp in microseconds.
    pub ts_us: u64,
    /// Duration in microseconds (only serialized for
    /// [`Phase::Complete`]).
    pub dur_us: u64,
    /// Process id (the exporters use a single process, 1).
    pub pid: u32,
    /// Thread id — the horizontal lane in the viewer.
    pub tid: u32,
    /// Event arguments shown when a slice is selected.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// A complete slice.
    #[must_use]
    pub fn complete(
        name: impl Into<String>,
        cat: &'static str,
        ts_us: u64,
        dur_us: u64,
        tid: u32,
    ) -> Self {
        TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::Complete,
            ts_us,
            dur_us,
            pid: 1,
            tid,
            args: Vec::new(),
        }
    }

    /// An instant marker.
    #[must_use]
    pub fn instant(name: impl Into<String>, cat: &'static str, ts_us: u64, tid: u32) -> Self {
        TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::Instant,
            ts_us,
            dur_us: 0,
            pid: 1,
            tid,
            args: Vec::new(),
        }
    }

    /// A `thread_name` metadata event labeling lane `tid`.
    #[must_use]
    pub fn thread_name(tid: u32, name: impl Into<String>) -> Self {
        TraceEvent {
            name: "thread_name".into(),
            cat: "__metadata",
            ph: Phase::Metadata,
            ts_us: 0,
            dur_us: 0,
            pid: 1,
            tid,
            args: vec![("name", ArgValue::Str(name.into()))],
        }
    }

    /// This event with an extra argument attached.
    #[must_use]
    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        self.args.push((key, value.into()));
        self
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        write_escaped(out, &self.name);
        out.push_str(",\"cat\":");
        write_escaped(out, self.cat);
        let ph = match self.ph {
            Phase::Complete => "X",
            Phase::Instant => "i",
            Phase::Metadata => "M",
        };
        out.push_str(&format!(
            ",\"ph\":\"{ph}\",\"ts\":{},\"pid\":{},\"tid\":{}",
            self.ts_us, self.pid, self.tid
        ));
        if self.ph == Phase::Complete {
            out.push_str(&format!(",\"dur\":{}", self.dur_us));
        }
        if self.ph == Phase::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        if !self.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (key, value)) in self.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, key);
                out.push(':');
                match value {
                    ArgValue::Int(v) => out.push_str(&v.to_string()),
                    ArgValue::Float(v) => {
                        if v.is_finite() {
                            out.push_str(&format!("{v}"));
                        } else {
                            out.push_str("null");
                        }
                    }
                    ArgValue::Str(s) => write_escaped(out, s),
                }
            }
            out.push('}');
        }
        out.push('}');
    }
}

/// A collected set of trace events, exportable as a Chrome trace file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChromeTrace {
    /// The events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl ChromeTrace {
    /// A trace over the given events.
    #[must_use]
    pub fn new(events: Vec<TraceEvent>) -> Self {
        ChromeTrace { events }
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes to Trace Event Format JSON
    /// (`{"traceEvents":[...],"displayTimeUnit":"ms"}`) — load the
    /// string (saved as a `.json` file) in Perfetto or
    /// `chrome://tracing`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            ev.write_json(&mut out);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn export_is_valid_json_with_expected_fields() {
        let trace = ChromeTrace::new(vec![
            TraceEvent::thread_name(1, "bus"),
            TraceEvent::complete("tx F1", "bus", 100, 95, 1)
                .arg("instance", 0i64)
                .arg("frame", "F1"),
            TraceEvent::instant("fault", "fault", 250, 3).arg("p", 0.5),
        ]);
        let out = trace.to_json();
        json::validate(&out).expect("valid JSON");
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"dur\":95"));
        assert!(out.contains("\"ph\":\"i\""));
        assert!(out.contains("\"ph\":\"M\""));
        assert!(out.contains("\"thread_name\""));
        assert!(out.contains("traceEvents"));
    }

    #[test]
    fn instant_has_no_dur_and_complete_has_no_scope() {
        let complete = ChromeTrace::new(vec![TraceEvent::complete("a", "c", 0, 1, 0)]).to_json();
        assert!(!complete.contains("\"s\":"));
        let instant = ChromeTrace::new(vec![TraceEvent::instant("a", "c", 0, 0)]).to_json();
        assert!(!instant.contains("\"dur\":"));
        assert!(instant.contains("\"s\":\"t\""));
    }

    #[test]
    fn arg_values_convert() {
        let ev = TraceEvent::instant("a", "c", 0, 0)
            .arg("i", -3i64)
            .arg("u", 7u64)
            .arg("s", String::from("x"))
            .arg("f", 1.5);
        assert_eq!(ev.args.len(), 4);
        let out = ChromeTrace::new(vec![ev]).to_json();
        json::validate(&out).expect("valid");
        assert!(out.contains("\"i\":-3"));
        assert!(out.contains("\"f\":1.5"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let t = ChromeTrace::default();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        json::validate(&t.to_json()).expect("valid");
    }
}
