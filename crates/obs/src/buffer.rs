//! Per-worker signal buffering for the parallel analysis engine.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::{Counter, Gauge, HistogramData};
use crate::recorder::{Recorder, RecorderHandle};
use crate::trace_event::TraceEvent;

#[derive(Debug, Default)]
struct BufferState {
    /// Unlabeled `add` totals only — labeled adds are kept separately so
    /// a drain can replay both without double-counting (the target's
    /// `add_labeled` bumps its own unlabeled total again).
    counters: [u64; Counter::ALL.len()],
    /// Gauge writes in recording order; replay preserves the order so
    /// the target ends at the buffer's last-written level.
    gauges: Vec<(Gauge, u64)>,
    labeled: Vec<(Counter, String, u64)>,
    histograms: Vec<(&'static str, HistogramData)>,
    events: Vec<TraceEvent>,
    spans: Vec<(&'static str, &'static str, Instant, Duration)>,
}

/// A [`Recorder`] that buffers everything for a later, ordered replay.
///
/// The parallel engine hands each analysis job its own
/// `BufferedRecorder` instead of the shared sink: workers then record
/// without contending on the real recorder's lock, and — decisive for
/// the determinism guarantee — the engine drains the buffers **in
/// canonical job order** after the level completes, so the sequence of
/// signals reaching the real recorder is independent of how jobs were
/// interleaved across threads.
///
/// Buffered signals are replayed verbatim by
/// [`BufferedRecorder::drain_into`]; histogram samples are merged as
/// pre-aggregated [`HistogramData`] (order-invariant by construction).
///
/// # Examples
///
/// ```
/// use hem_obs::{BufferedRecorder, Counter, MemoryRecorder, RecorderHandle};
/// use std::sync::Arc;
///
/// let (sink, sink_handle) = MemoryRecorder::handle();
/// let buffer = Arc::new(BufferedRecorder::new());
/// let worker_handle = RecorderHandle::new(buffer.clone());
/// worker_handle.add(Counter::CacheHits, 2);
/// assert_eq!(sink.snapshot().counter(Counter::CacheHits), 0); // not yet
/// buffer.drain_into(&sink_handle);
/// assert_eq!(sink.snapshot().counter(Counter::CacheHits), 2);
/// ```
#[derive(Debug, Default)]
pub struct BufferedRecorder {
    state: Mutex<BufferState>,
}

impl BufferedRecorder {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BufferedRecorder::default()
    }

    /// A shared buffer plus a [`RecorderHandle`] dispatching into it —
    /// the pair a worker job needs (handle goes into the job's
    /// `AnalysisConfig`, the buffer stays with the engine for draining).
    #[must_use]
    pub fn handle() -> (Arc<BufferedRecorder>, RecorderHandle) {
        let buf = Arc::new(BufferedRecorder::new());
        let handle = RecorderHandle::new(buf.clone());
        (buf, handle)
    }

    /// Replays everything buffered so far into `target` and clears the
    /// buffer.
    ///
    /// Replay order is the buffer's recording order, so draining a set
    /// of buffers in canonical job order yields a deterministic signal
    /// sequence at the target regardless of worker interleaving.
    pub fn drain_into(&self, target: &RecorderHandle) {
        let state = {
            let mut state = self.state.lock().expect("buffer poisoned");
            std::mem::take(&mut *state)
        };
        if !target.enabled() {
            return;
        }
        let raw = target.raw();
        for c in Counter::ALL {
            let total = state.counters[counter_index(c)];
            if total > 0 {
                raw.add(c, total);
            }
        }
        for (g, value) in state.gauges {
            raw.set_gauge(g, value);
        }
        for (c, label, by) in state.labeled {
            raw.add_labeled(c, &label, by);
        }
        for (name, data) in state.histograms {
            raw.merge_histogram(name, &data);
        }
        for event in state.events {
            raw.emit(event);
        }
        for (name, cat, start, dur) in state.spans {
            raw.complete_span(name, cat, start, dur);
        }
    }
}

fn counter_index(c: Counter) -> usize {
    Counter::ALL.iter().position(|x| *x == c).expect("listed")
}

impl Recorder for BufferedRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, counter: Counter, by: u64) {
        let mut state = self.state.lock().expect("buffer poisoned");
        state.counters[counter_index(counter)] += by;
    }

    fn add_labeled(&self, counter: Counter, label: &str, by: u64) {
        let mut state = self.state.lock().expect("buffer poisoned");
        state.labeled.push((counter, label.to_string(), by));
    }

    fn set_gauge(&self, gauge: Gauge, value: u64) {
        let mut state = self.state.lock().expect("buffer poisoned");
        state.gauges.push((gauge, value));
    }

    fn observe(&self, histogram: &'static str, value: u64) {
        let mut state = self.state.lock().expect("buffer poisoned");
        match state.histograms.iter_mut().find(|(n, _)| *n == histogram) {
            Some((_, data)) => data.record(value),
            None => {
                let mut data = HistogramData::default();
                data.record(value);
                state.histograms.push((histogram, data));
            }
        }
    }

    fn emit(&self, event: TraceEvent) {
        let mut state = self.state.lock().expect("buffer poisoned");
        state.events.push(event);
    }

    fn complete_span(&self, name: &'static str, cat: &'static str, start: Instant, dur: Duration) {
        let mut state = self.state.lock().expect("buffer poisoned");
        state.spans.push((name, cat, start, dur));
    }

    fn merge_histogram(&self, histogram: &'static str, data: &HistogramData) {
        let mut state = self.state.lock().expect("buffer poisoned");
        match state.histograms.iter_mut().find(|(n, _)| *n == histogram) {
            Some((_, mine)) => mine.merge(data),
            None => state.histograms.push((histogram, data.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryRecorder;

    #[test]
    fn drained_buffer_matches_direct_recording() {
        let (direct, direct_handle) = MemoryRecorder::handle();
        let (buffered_sink, sink_handle) = MemoryRecorder::handle();
        let (buf, buf_handle) = BufferedRecorder::handle();

        let drive = |h: &RecorderHandle| {
            h.add(Counter::CacheHits, 3);
            h.add_labeled(Counter::BusyWindowIterations, "T1", 7);
            h.add_labeled(Counter::BusyWindowIterations, "T1", 2);
            h.observe("iters", 5);
            h.observe("iters", 9);
            h.emit(TraceEvent::instant("tick", "sim", 10, 0));
        };
        drive(&direct_handle);
        drive(&buf_handle);
        buf.drain_into(&sink_handle);

        assert_eq!(direct.snapshot(), buffered_sink.snapshot());
        assert_eq!(
            direct.chrome_trace().to_json(),
            buffered_sink.chrome_trace().to_json()
        );
    }

    #[test]
    fn buffered_gauges_replay_in_order() {
        let (sink, sink_handle) = MemoryRecorder::handle();
        let (buf, buf_handle) = BufferedRecorder::handle();
        buf_handle.set_gauge(Gauge::QueueDepth, 9);
        buf_handle.set_gauge(Gauge::QueueDepth, 4);
        buf.drain_into(&sink_handle);
        assert_eq!(sink.snapshot().gauge(Gauge::QueueDepth), 4);
    }

    #[test]
    fn drain_clears_the_buffer() {
        let (sink, sink_handle) = MemoryRecorder::handle();
        let (buf, buf_handle) = BufferedRecorder::handle();
        buf_handle.add(Counter::CacheHits, 1);
        buf.drain_into(&sink_handle);
        buf.drain_into(&sink_handle); // second drain must be a no-op
        assert_eq!(sink.snapshot().counter(Counter::CacheHits), 1);
    }

    #[test]
    fn spans_replay_into_target_histograms() {
        let (sink, sink_handle) = MemoryRecorder::handle();
        let (buf, buf_handle) = BufferedRecorder::handle();
        {
            let _span = buf_handle.span("local_analysis", "engine");
        }
        buf.drain_into(&sink_handle);
        let snap = sink.snapshot();
        assert_eq!(snap.histograms["span_us/local_analysis"].count, 1);
        assert_eq!(sink.chrome_trace().len(), 1);
    }

    #[test]
    fn drain_into_disabled_target_discards() {
        let (buf, buf_handle) = BufferedRecorder::handle();
        buf_handle.add(Counter::CacheHits, 1);
        buf.drain_into(&RecorderHandle::noop());
        let (sink, sink_handle) = MemoryRecorder::handle();
        buf.drain_into(&sink_handle);
        assert_eq!(sink.snapshot().counter(Counter::CacheHits), 0);
    }

    #[test]
    fn merged_histograms_forward() {
        let (sink, sink_handle) = MemoryRecorder::handle();
        let (buf, buf_handle) = BufferedRecorder::handle();
        let mut h = HistogramData::default();
        h.record(4);
        h.record(8);
        buf_handle.merge_histogram("iters", &h);
        buf.drain_into(&sink_handle);
        assert_eq!(sink.snapshot().histograms["iters"], h);
    }
}
