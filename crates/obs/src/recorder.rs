//! The [`Recorder`] trait and its two built-in implementations.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::{Counter, Gauge, HistogramData, MetricsSnapshot};
use crate::trace_event::{ChromeTrace, TraceEvent};

/// A sink for observability signals.
///
/// Instrumented code reports through a [`RecorderHandle`]; the handle
/// dispatches to a `Recorder`. All methods default to no-ops so the
/// zero-cost [`NoopRecorder`] is the trivial implementation, and
/// implementors override only what they collect.
///
/// Hot paths must gate per-query reporting on
/// [`Recorder::enabled`] (see [`RecorderHandle::enabled`]), which lets
/// the disabled case reduce to one predictable branch.
pub trait Recorder: Send + Sync + fmt::Debug {
    /// Whether this recorder collects anything. Hot paths skip
    /// reporting entirely when `false`.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `by` to a typed counter.
    fn add(&self, counter: Counter, by: u64) {
        let _ = (counter, by);
    }

    /// Adds `by` to the `label` breakdown of a typed counter (the
    /// unlabeled total is tracked separately — implementations count
    /// both).
    fn add_labeled(&self, counter: Counter, label: &str, by: u64) {
        let _ = (counter, label, by);
    }

    /// Sets a typed gauge to an absolute level (last write wins).
    fn set_gauge(&self, gauge: Gauge, value: u64) {
        let _ = (gauge, value);
    }

    /// Records one sample into the named histogram.
    fn observe(&self, histogram: &'static str, value: u64) {
        let _ = (histogram, value);
    }

    /// Emits a pre-built trace event (used by the simulator, whose
    /// timestamps are virtual time).
    fn emit(&self, event: TraceEvent) {
        let _ = event;
    }

    /// Closes a wall-clock span opened via [`RecorderHandle::span`].
    fn complete_span(&self, name: &'static str, cat: &'static str, start: Instant, dur: Duration) {
        let _ = (name, cat, start, dur);
    }

    /// Folds pre-aggregated histogram data into the named histogram.
    ///
    /// Used when draining a per-worker
    /// [`BufferedRecorder`](crate::BufferedRecorder): samples are
    /// recorded into worker-local [`HistogramData`] and merged here in
    /// one call instead of replayed one [`Recorder::observe`] at a time.
    fn merge_histogram(&self, histogram: &'static str, data: &HistogramData) {
        let _ = (histogram, data);
    }
}

/// A recorder that collects nothing.
///
/// [`RecorderHandle::noop`] wraps this; with it, instrumented hot paths
/// reduce to a single `enabled()` check.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// A shared, cloneable reference to a [`Recorder`].
///
/// This is the type threaded through configs
/// (`AnalysisConfig::recorder`). Cloning is an `Arc` clone; equality is
/// identity (two handles are equal when they point at the same
/// recorder), which keeps configs comparable.
#[derive(Clone)]
pub struct RecorderHandle(Arc<dyn Recorder>);

impl RecorderHandle {
    /// A handle to the shared no-op recorder.
    #[must_use]
    pub fn noop() -> Self {
        use std::sync::OnceLock;
        static SHARED: OnceLock<Arc<NoopRecorder>> = OnceLock::new();
        RecorderHandle(SHARED.get_or_init(|| Arc::new(NoopRecorder)).clone())
    }

    /// Wraps a recorder.
    #[must_use]
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        RecorderHandle(recorder)
    }

    /// Whether the underlying recorder collects anything.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.0.enabled()
    }

    /// Adds `by` to a typed counter.
    pub fn add(&self, counter: Counter, by: u64) {
        if self.0.enabled() {
            self.0.add(counter, by);
        }
    }

    /// Adds `by` to the `label` breakdown of a typed counter.
    pub fn add_labeled(&self, counter: Counter, label: &str, by: u64) {
        if self.0.enabled() {
            self.0.add_labeled(counter, label, by);
        }
    }

    /// Sets a typed gauge to an absolute level.
    pub fn set_gauge(&self, gauge: Gauge, value: u64) {
        if self.0.enabled() {
            self.0.set_gauge(gauge, value);
        }
    }

    /// Records one histogram sample.
    pub fn observe(&self, histogram: &'static str, value: u64) {
        if self.0.enabled() {
            self.0.observe(histogram, value);
        }
    }

    /// Emits a pre-built trace event.
    pub fn emit(&self, event: TraceEvent) {
        if self.0.enabled() {
            self.0.emit(event);
        }
    }

    /// Folds pre-aggregated histogram data into the named histogram.
    pub fn merge_histogram(&self, histogram: &'static str, data: &HistogramData) {
        if self.0.enabled() {
            self.0.merge_histogram(histogram, data);
        }
    }

    /// The wrapped recorder (for in-crate replay, e.g.
    /// [`BufferedRecorder::drain_into`](crate::BufferedRecorder::drain_into)).
    pub(crate) fn raw(&self) -> &Arc<dyn Recorder> {
        &self.0
    }

    /// Opens a wall-clock span; the returned guard reports a complete
    /// trace event (and a `span_us/<name>` histogram sample) when
    /// dropped. With a disabled recorder no clock is read.
    pub fn span(&self, name: &'static str, cat: &'static str) -> Span<'_> {
        Span {
            rec: self,
            name,
            cat,
            start: self.0.enabled().then(Instant::now),
        }
    }
}

impl fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RecorderHandle({:?})", self.0)
    }
}

impl Default for RecorderHandle {
    fn default() -> Self {
        RecorderHandle::noop()
    }
}

impl PartialEq for RecorderHandle {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || (!self.0.enabled() && !other.0.enabled())
    }
}

impl Eq for RecorderHandle {}

/// A scoped wall-clock timer; see [`RecorderHandle::span`].
#[must_use = "a span measures until dropped"]
#[derive(Debug)]
pub struct Span<'r> {
    rec: &'r RecorderHandle,
    name: &'static str,
    cat: &'static str,
    start: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let dur = start.elapsed();
            self.rec.0.complete_span(self.name, self.cat, start, dur);
        }
    }
}

#[derive(Debug, Default)]
struct MemoryState {
    counters: [u64; Counter::ALL.len()],
    gauges: [u64; Gauge::ALL.len()],
    labeled: std::collections::BTreeMap<(usize, String), u64>,
    histograms: std::collections::BTreeMap<&'static str, HistogramData>,
    // Span durations keyed by raw span name; folded into `histograms`
    // under `span_us/<name>` at snapshot time. Keeping the raw key
    // here means the hot complete_span path takes exactly one lock —
    // the name-interning registry is only consulted when exporting.
    span_durs: std::collections::BTreeMap<&'static str, HistogramData>,
    events: Vec<TraceEvent>,
}

/// An in-memory [`Recorder`] backing the exporters.
///
/// Collects counters, histograms, and trace events behind one mutex;
/// [`MemoryRecorder::snapshot`] and [`MemoryRecorder::chrome_trace`]
/// copy the collected state out for export. Wall-clock spans are
/// timestamped relative to the recorder's construction instant.
///
/// When no trace sink will ever export the events, construct with
/// [`MemoryRecorder::metrics_only`]: counters, gauges, and histograms
/// (including `span_us/*`) are still collected, but [`Recorder::emit`]
/// and the trace-event half of [`Recorder::complete_span`] become
/// no-ops — the event buffer neither grows nor allocates, which keeps
/// always-on telemetry cheap on long-running servers.
#[derive(Debug)]
pub struct MemoryRecorder {
    epoch: Instant,
    collect_events: bool,
    state: Mutex<MemoryState>,
}

impl MemoryRecorder {
    /// An empty recorder; its epoch (trace time zero) is now.
    #[must_use]
    pub fn new() -> Self {
        MemoryRecorder {
            epoch: Instant::now(),
            collect_events: true,
            state: Mutex::new(MemoryState::default()),
        }
    }

    /// An empty recorder that collects metrics but discards trace
    /// events (see the type docs).
    #[must_use]
    pub fn metrics_only() -> Self {
        MemoryRecorder {
            collect_events: false,
            ..MemoryRecorder::new()
        }
    }

    /// A shared handle to a fresh recorder, plus the recorder itself
    /// for later export.
    #[must_use]
    pub fn handle() -> (Arc<MemoryRecorder>, RecorderHandle) {
        let rec = Arc::new(MemoryRecorder::new());
        let handle = RecorderHandle::new(rec.clone());
        (rec, handle)
    }

    /// [`MemoryRecorder::handle`], but metrics-only (trace events are
    /// discarded).
    #[must_use]
    pub fn metrics_only_handle() -> (Arc<MemoryRecorder>, RecorderHandle) {
        let rec = Arc::new(MemoryRecorder::metrics_only());
        let handle = RecorderHandle::new(rec.clone());
        (rec, handle)
    }

    /// Copies out all counters and histograms.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let state = self.state.lock().expect("recorder poisoned");
        let mut snap = MetricsSnapshot::default();
        for c in Counter::ALL {
            snap.counters.insert(c.name(), state.counters[c.index()]);
        }
        for g in Gauge::ALL {
            snap.gauges.insert(g.name(), state.gauges[g.index()]);
        }
        for ((idx, label), value) in &state.labeled {
            snap.labeled
                .insert((Counter::ALL[*idx].name(), label.clone()), *value);
        }
        for (name, h) in &state.histograms {
            snap.histograms.insert(name, h.clone());
        }
        // Spans recorded directly land here; spans drained out of a
        // BufferedRecorder arrive pre-prefixed via merge_histogram, so
        // fold rather than overwrite.
        for (name, h) in &state.span_durs {
            snap.histograms
                .entry(span_histogram(name))
                .or_default()
                .merge(h);
        }
        snap
    }

    /// Copies out the collected trace events as a Chrome trace,
    /// prefixed with `thread_name` metadata for every span category
    /// lane seen.
    #[must_use]
    pub fn chrome_trace(&self) -> ChromeTrace {
        let state = self.state.lock().expect("recorder poisoned");
        let mut events = Vec::with_capacity(state.events.len());
        events.extend(state.events.iter().cloned());
        ChromeTrace::new(events)
    }
}

impl Default for MemoryRecorder {
    fn default() -> Self {
        MemoryRecorder::new()
    }
}

impl Recorder for MemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, counter: Counter, by: u64) {
        let mut state = self.state.lock().expect("recorder poisoned");
        state.counters[counter.index()] += by;
    }

    fn add_labeled(&self, counter: Counter, label: &str, by: u64) {
        let mut state = self.state.lock().expect("recorder poisoned");
        state.counters[counter.index()] += by;
        *state
            .labeled
            .entry((counter.index(), label.to_string()))
            .or_insert(0) += by;
    }

    fn set_gauge(&self, gauge: Gauge, value: u64) {
        let mut state = self.state.lock().expect("recorder poisoned");
        state.gauges[gauge.index()] = value;
    }

    fn observe(&self, histogram: &'static str, value: u64) {
        let mut state = self.state.lock().expect("recorder poisoned");
        state.histograms.entry(histogram).or_default().record(value);
    }

    fn emit(&self, event: TraceEvent) {
        if !self.collect_events {
            return;
        }
        let mut state = self.state.lock().expect("recorder poisoned");
        state.events.push(event);
    }

    fn complete_span(&self, name: &'static str, cat: &'static str, start: Instant, dur: Duration) {
        let ts_us = start.saturating_duration_since(self.epoch).as_micros() as u64;
        let dur_us = dur.as_micros() as u64;
        let mut state = self.state.lock().expect("recorder poisoned");
        state.span_durs.entry(name).or_default().record(dur_us);
        if self.collect_events {
            state
                .events
                .push(TraceEvent::complete(name, cat, ts_us, dur_us, 0));
        }
    }

    fn merge_histogram(&self, histogram: &'static str, data: &HistogramData) {
        let mut state = self.state.lock().expect("recorder poisoned");
        state.histograms.entry(histogram).or_default().merge(data);
    }
}

/// The histogram name spans of `name` record into. Leaks at most one
/// small string per distinct span name per process.
fn span_histogram(name: &'static str) -> &'static str {
    use std::collections::BTreeMap;
    use std::sync::OnceLock;
    static NAMES: OnceLock<Mutex<BTreeMap<&'static str, &'static str>>> = OnceLock::new();
    let map = NAMES.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut map = map.lock().expect("span name registry poisoned");
    map.entry(name)
        .or_insert_with(|| Box::leak(format!("span_us/{name}").into_boxed_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_is_disabled_and_cheap() {
        let h = RecorderHandle::noop();
        assert!(!h.enabled());
        h.add(Counter::CacheHits, 1);
        h.observe("x", 1);
        h.emit(TraceEvent::instant("a", "c", 0, 0));
        let span = h.span("s", "c");
        assert!(span.start.is_none());
        drop(span);
        assert_eq!(h, RecorderHandle::default());
    }

    #[test]
    fn memory_recorder_collects_counters_and_labels() {
        let (rec, h) = MemoryRecorder::handle();
        assert!(h.enabled());
        h.add(Counter::CacheHits, 2);
        h.add(Counter::CacheHits, 3);
        h.add_labeled(Counter::BusyWindowIterations, "T1", 7);
        h.add_labeled(Counter::BusyWindowIterations, "T2", 1);
        let snap = rec.snapshot();
        assert_eq!(snap.counter(Counter::CacheHits), 5);
        assert_eq!(snap.counter(Counter::BusyWindowIterations), 8);
        assert_eq!(snap.labeled_counter(Counter::BusyWindowIterations, "T1"), 7);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let (rec, h) = MemoryRecorder::handle();
        h.set_gauge(Gauge::QueueDepth, 7);
        h.set_gauge(Gauge::QueueDepth, 2);
        h.set_gauge(Gauge::SessionsLive, 4);
        let snap = rec.snapshot();
        assert_eq!(snap.gauge(Gauge::QueueDepth), 2);
        assert_eq!(snap.gauge(Gauge::SessionsLive), 4);
        // Unset gauges still export (stable key set), at zero.
        assert_eq!(snap.gauge(Gauge::WalBytes), 0);
        assert_eq!(snap.gauges.len(), Gauge::ALL.len());
    }

    #[test]
    fn spans_record_events_and_histograms() {
        let (rec, h) = MemoryRecorder::handle();
        {
            let _span = h.span("global_iteration", "engine");
            std::thread::sleep(Duration::from_millis(1));
        }
        let trace = rec.chrome_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.events[0].name, "global_iteration");
        assert!(trace.events[0].dur_us >= 1_000);
        let snap = rec.snapshot();
        let hist = &snap.histograms["span_us/global_iteration"];
        assert_eq!(hist.count, 1);
        assert!(hist.max >= 1_000);
    }

    #[test]
    fn metrics_only_keeps_histograms_but_drops_events() {
        let (rec, h) = MemoryRecorder::metrics_only_handle();
        assert!(h.enabled());
        h.add(Counter::CacheHits, 3);
        h.emit(TraceEvent::instant("dropped", "c", 1, 1));
        {
            let _span = h.span("global_iteration", "engine");
        }
        assert_eq!(rec.chrome_trace().len(), 0, "no trace events collected");
        let snap = rec.snapshot();
        assert_eq!(snap.counter(Counter::CacheHits), 3);
        assert_eq!(
            snap.histograms["span_us/global_iteration"].count, 1,
            "span histograms still recorded"
        );
    }

    #[test]
    fn emitted_events_pass_through() {
        let (rec, h) = MemoryRecorder::handle();
        h.emit(TraceEvent::instant("write s1", "com", 42, 2));
        let trace = rec.chrome_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.events[0].ts_us, 42);
    }

    #[test]
    fn handle_equality_is_identity() {
        let (_rec, h1) = MemoryRecorder::handle();
        let (_rec2, h2) = MemoryRecorder::handle();
        assert_eq!(h1.clone(), h1);
        assert_ne!(h1, h2);
        // All disabled handles compare equal (configs stay comparable).
        assert_eq!(RecorderHandle::noop(), RecorderHandle::noop());
    }
}
