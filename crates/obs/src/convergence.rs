//! Per-iteration trajectory of a global fixed-point analysis.

use std::collections::BTreeMap;

use crate::json::write_escaped;

/// A response-time interval snapshot, in ticks.
///
/// Mirrors the analysis `ResponseTime` (`[r⁻, r⁺]`) without depending
/// on the analysis crate — this crate sits below it in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtBound {
    /// Best-case response time `r⁻`.
    pub lower: i64,
    /// Worst-case response time `r⁺`.
    pub upper: i64,
}

impl RtBound {
    /// A bound from its endpoints.
    #[must_use]
    pub fn new(lower: i64, upper: i64) -> Self {
        RtBound { lower, upper }
    }

    /// The response jitter `r⁺ − r⁻`.
    #[must_use]
    pub fn jitter(&self) -> i64 {
        self.upper - self.lower
    }
}

/// The response-time vector after one completed global iteration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IterationSnapshot {
    /// 1-based global iteration index.
    pub iteration: u64,
    /// Per-entity response times, keyed `task:<name>` / `frame:<name>`.
    pub response_times: BTreeMap<String, RtBound>,
}

/// The full per-iteration trajectory of a global analysis run.
///
/// Where `Diagnostics` alone only keeps the last two response-time
/// vectors, the trace keeps all of them, so a diverging run shows *how*
/// an entity grew (linearly? with accelerating increments?) and a slow
/// converging run shows which entity kept the loop alive. Snapshots are
/// a few dozen integers per iteration, so recording is always on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConvergenceTrace {
    iterations: Vec<IterationSnapshot>,
}

impl ConvergenceTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        ConvergenceTrace::default()
    }

    /// Appends the snapshot of one completed global iteration.
    pub fn push(&mut self, snapshot: IterationSnapshot) {
        self.iterations.push(snapshot);
    }

    /// Number of recorded iterations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.iterations.len()
    }

    /// Whether no iteration completed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.iterations.is_empty()
    }

    /// The recorded snapshots, oldest first.
    #[must_use]
    pub fn iterations(&self) -> &[IterationSnapshot] {
        &self.iterations
    }

    /// The last recorded snapshot.
    #[must_use]
    pub fn last(&self) -> Option<&IterationSnapshot> {
        self.iterations.last()
    }

    /// The per-iteration series of one entity (`task:<name>` /
    /// `frame:<name>`); entries are `None` for iterations where the
    /// entity was not analysed.
    #[must_use]
    pub fn series(&self, entity: &str) -> Vec<Option<RtBound>> {
        self.iterations
            .iter()
            .map(|s| s.response_times.get(entity).copied())
            .collect()
    }

    /// Serializes the trajectory as JSONL: one line per iteration,
    /// `{"iteration":1,"response_times":{"frame:F1":{"lower":79,"upper":95},…}}`.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for snap in &self.iterations {
            out.push_str(&format!(
                "{{\"iteration\":{},\"response_times\":{{",
                snap.iteration
            ));
            for (i, (entity, rt)) in snap.response_times.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(&mut out, entity);
                out.push_str(&format!(
                    ":{{\"lower\":{},\"upper\":{}}}",
                    rt.lower, rt.upper
                ));
            }
            out.push_str("}}\n");
        }
        out
    }

    /// A compact per-entity convergence table (entity, then `r⁺` per
    /// iteration), for terminal diagnostics.
    #[must_use]
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.iterations.is_empty() {
            return out;
        }
        let mut entities: Vec<&String> = self
            .iterations
            .iter()
            .flat_map(|s| s.response_times.keys())
            .collect();
        entities.sort();
        entities.dedup();
        for entity in entities {
            let series: Vec<String> = self
                .iterations
                .iter()
                .map(|s| {
                    s.response_times
                        .get(entity)
                        .map_or_else(|| "-".to_string(), |rt| rt.upper.to_string())
                })
                .collect();
            let _ = writeln!(out, "  {entity:<24} r+ {}", series.join(" -> "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn snap(iteration: u64, entries: &[(&str, i64, i64)]) -> IterationSnapshot {
        IterationSnapshot {
            iteration,
            response_times: entries
                .iter()
                .map(|(k, lo, hi)| ((*k).to_string(), RtBound::new(*lo, *hi)))
                .collect(),
        }
    }

    #[test]
    fn records_and_queries_series() {
        let mut trace = ConvergenceTrace::new();
        assert!(trace.is_empty());
        trace.push(snap(1, &[("task:rx", 30, 30), ("frame:F", 79, 95)]));
        trace.push(snap(2, &[("task:rx", 30, 30), ("frame:F", 79, 95)]));
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.last().map(|s| s.iteration), Some(2));
        let series = trace.series("frame:F");
        assert_eq!(series, vec![Some(RtBound::new(79, 95)); 2]);
        assert_eq!(trace.series("task:ghost"), vec![None, None]);
        assert_eq!(RtBound::new(79, 95).jitter(), 16);
    }

    #[test]
    fn jsonl_export_is_valid_and_complete() {
        let mut trace = ConvergenceTrace::new();
        trace.push(snap(1, &[("task:rx", 30, 30)]));
        trace.push(snap(2, &[("task:rx", 30, 42)]));
        let out = trace.to_jsonl();
        json::validate_jsonl(&out).expect("valid");
        assert_eq!(out.lines().count(), 2);
        assert!(out.contains("\"upper\":42"));
    }

    #[test]
    fn table_renders_growth() {
        let mut trace = ConvergenceTrace::new();
        trace.push(snap(1, &[("task:gw", 10, 100)]));
        trace.push(snap(2, &[("task:gw", 10, 180)]));
        let table = trace.render_table();
        assert!(table.contains("task:gw"), "{table}");
        assert!(table.contains("100 -> 180"), "{table}");
        assert!(ConvergenceTrace::new().render_table().is_empty());
    }
}
