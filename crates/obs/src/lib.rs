//! `hem-obs` — a lightweight, dependency-free observability layer.
//!
//! The global compositional analysis is an opaque fixed-point loop;
//! the simulator is an opaque event loop. This crate gives both a way
//! to explain themselves without perturbing the hot path:
//!
//! * [`Recorder`] — the signal sink trait: typed [`Counter`]s, named
//!   histograms, wall-clock spans, and raw Chrome trace events.
//!   [`NoopRecorder`] (the default) reduces every hot-path report to a
//!   single branch; [`MemoryRecorder`] collects everything in memory.
//! * [`RecorderHandle`] — the cloneable reference threaded through
//!   `AnalysisConfig` and the simulator entry points.
//! * [`BufferedRecorder`] — a per-worker buffer for the parallel
//!   engine: workers record locally, the engine drains buffers in
//!   canonical job order so the merged signals are deterministic.
//! * [`ConvergenceTrace`] — the per-iteration response-time trajectory
//!   of a global analysis, so diagnostics can show *how* a run
//!   converged or diverged rather than just the last two vectors.
//! * Exporters — [`MetricsSnapshot::to_jsonl`] /
//!   [`MetricsSnapshot::to_json`] for metrics, and
//!   [`ChromeTrace::to_json`] emitting Chrome `trace_event` JSON that
//!   loads in Perfetto / `chrome://tracing`.
//! * [`json`] — the serde-free escaping and validation helpers behind
//!   the exporters.
//!
//! See `docs/OBSERVABILITY.md` for the end-to-end story.
//!
//! # Examples
//!
//! ```
//! use hem_obs::{Counter, MemoryRecorder, MetricsSnapshot};
//!
//! let (recorder, handle) = MemoryRecorder::handle();
//! handle.add(Counter::CacheHits, 3);
//! {
//!     let _span = handle.span("busy_window", "analysis");
//!     // ... timed work ...
//! }
//! let snapshot = recorder.snapshot();
//! assert_eq!(snapshot.counter(Counter::CacheHits), 3);
//! assert!(snapshot.to_jsonl().contains("cache_hits"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod convergence;
pub mod json;
mod metrics;
mod recorder;
mod trace_event;

pub use buffer::BufferedRecorder;
pub use convergence::{ConvergenceTrace, IterationSnapshot, RtBound};
pub use metrics::{Counter, Gauge, HistogramData, MetricsSnapshot};
pub use recorder::{MemoryRecorder, NoopRecorder, Recorder, RecorderHandle, Span};
pub use trace_event::{ArgValue, ChromeTrace, Phase, TraceEvent};

/// Histogram name for busy-window iteration counts per fixed point.
pub const HIST_BUSY_WINDOW_ITERATIONS: &str = "busy_window_iterations_per_fixed_point";
