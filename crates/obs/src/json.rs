//! Minimal, serde-free JSON helpers.
//!
//! The observability exporters emit JSON (JSONL metric dumps, Chrome
//! `trace_event` files) without pulling a serialization framework into
//! the dependency graph. This module provides the two halves they need:
//! string escaping for the writers, and a small validating parser so
//! tests can check round-trip well-formedness of everything exported.

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON string literal for `s` (convenience over [`write_escaped`]).
#[must_use]
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped(&mut out, s);
    out
}

/// A malformed-JSON report from [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON document node, produced by [`parse`].
///
/// Kept deliberately small: numbers are `f64` (every value the BENCH
/// exporters emit — wall-clock milliseconds, counters, ratios — is
/// exactly representable below 2^53), and objects preserve insertion
/// order so delta reports list fields in the order the profile wrote
/// them.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string literal, unescaped.
    String(String),
    /// An array of values.
    Array(Vec<JsonValue>),
    /// An object as an ordered key/value list.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object; `None` for other variants or
    /// missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this node is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this node is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object fields, if this node is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array elements, if this node is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses `input` into a [`JsonValue`] tree.
///
/// The building counterpart of [`validate`]: same grammar, same error
/// reporting, used where a consumer actually needs the document (e.g.
/// the `bench_compare` regression gate reading BENCH profiles).
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first violation.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let v = parse_value(input, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing content after value"));
    }
    Ok(v)
}

fn parse_value(input: &str, bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            skip_ws(bytes, pos);
            let mut fields = Vec::new();
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b'"') {
                    return Err(err(*pos, "expected object key"));
                }
                let key = parse_string(input, bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected ':' after key"));
                }
                *pos += 1;
                skip_ws(bytes, pos);
                let v = parse_value(input, bytes, pos)?;
                fields.push((key, v));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(fields));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(bytes, pos);
            let mut items = Vec::new();
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(input, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'"') => parse_string(input, bytes, pos).map(JsonValue::String),
        Some(b't') => literal(bytes, pos, b"true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => literal(bytes, pos, b"false").map(|()| JsonValue::Bool(false)),
        Some(b'n') => literal(bytes, pos, b"null").map(|()| JsonValue::Null),
        Some(b'-' | b'0'..=b'9') => {
            let start = *pos;
            number(bytes, pos)?;
            input[start..*pos]
                .parse::<f64>()
                .map(JsonValue::Number)
                .map_err(|_| err(start, "number out of range"))
        }
        Some(_) => Err(err(*pos, "expected a JSON value")),
        None => Err(err(*pos, "unexpected end of input")),
    }
}

fn parse_string(input: &str, bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    let start = *pos;
    string(bytes, pos)?;
    let raw = &input[start + 1..*pos - 1];
    if !raw.contains('\\') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('b') => out.push('\u{8}'),
            Some('f') => out.push('\u{c}'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16)
                    .map_err(|_| err(start, "malformed \\u escape"))?;
                // Surrogates are not paired here; exporters never emit
                // them, so map unpaired halves to the replacement char.
                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
            }
            _ => return Err(err(start, "invalid escape")),
        }
    }
    Ok(out)
}

/// Checks that `input` is one well-formed JSON value.
///
/// A recursive-descent validator covering the full grammar the
/// exporters use (objects, arrays, strings with escapes, numbers,
/// booleans, null). It does **not** build a document — it only accepts
/// or rejects — which keeps it dependency-free and O(n).
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first violation.
pub fn validate(input: &str) -> Result<(), JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing content after value"));
    }
    Ok(())
}

/// Checks that every non-empty line of `input` is well-formed JSON
/// (the JSONL framing used by the metrics exporter).
///
/// # Errors
///
/// Returns the first offending line's [`JsonError`] (offsets are
/// line-relative).
pub fn validate_jsonl(input: &str) -> Result<(), JsonError> {
    for line in input.lines() {
        if !line.trim().is_empty() {
            validate(line)?;
        }
    }
    Ok(())
}

fn err(at: usize, message: &str) -> JsonError {
    JsonError {
        at,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos),
        Some(b'[') => array(bytes, pos),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(bytes, pos),
        Some(_) => Err(err(*pos, "expected a JSON value")),
        None => Err(err(*pos, "unexpected end of input")),
    }
}

fn literal(bytes: &[u8], pos: &mut usize, expected: &[u8]) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(expected) {
        *pos += expected.len();
        Ok(())
    } else {
        Err(err(*pos, "malformed literal"))
    }
}

fn object(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key"));
        }
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':' after key"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    *pos += 1; // consume '"'
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !bytes.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(err(*pos, "malformed \\u escape"));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
            }
            0x00..=0x1f => return Err(err(*pos, "unescaped control character")),
            _ => *pos += 1,
        }
    }
    Err(err(*pos, "unterminated string"))
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(err(start, "expected digits"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(err(*pos, "expected fraction digits"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(err(*pos, "expected exponent digits"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escaped("a\"b"), r#""a\"b""#);
        assert_eq!(escaped("a\\b"), r#""a\\b""#);
        assert_eq!(escaped("a\nb"), r#""a\nb""#);
        assert_eq!(escaped("\u{1}"), "\"\\u0001\"");
        assert_eq!(escaped("plain"), r#""plain""#);
    }

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e3",
            r#"{"a": [1, 2, {"b": "c\n"}], "d": null}"#,
            r#"  [ "x" , -0.5 , false ]  "#,
            r#""é""#,
        ] {
            assert!(validate(doc).is_ok(), "{doc}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} extra",
            "01x",
            r#""bad \q escape""#,
        ] {
            assert!(validate(doc).is_err(), "{doc:?} should be rejected");
        }
    }

    #[test]
    fn jsonl_checks_each_line() {
        assert!(validate_jsonl("{\"a\":1}\n{\"b\":2}\n").is_ok());
        assert!(validate_jsonl("{\"a\":1}\nnot json\n").is_err());
        assert!(validate_jsonl("\n\n").is_ok());
    }

    #[test]
    fn parses_documents() {
        let doc = r#"{"a": [1, -2.5, true], "b": {"c": "x\ny"}, "d": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap(),
            &[
                JsonValue::Number(1.0),
                JsonValue::Number(-2.5),
                JsonValue::Bool(true)
            ]
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
    }

    #[test]
    fn parse_object_preserves_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn parse_unescapes_strings() {
        let v = parse(r#""q\" s\\ uA""#).unwrap();
        assert_eq!(v.as_str(), Some("q\" s\\ uA"));
    }

    #[test]
    fn roundtrip_escaped_strings_validate() {
        for s in ["quote\" slash\\ newline\n tab\t ctrl\u{2} unicode é"] {
            assert!(validate(&escaped(s)).is_ok());
        }
    }
}
